"""Hierarchical span tracing with a no-op-level disabled path.

A *span* is one timed region of work — ``session.run`` dispatching a
request, the parallel engine staging shared memory, one eigensolve of
the compiled kernel.  Spans nest: entering a span while another is
open on the same thread records the open one as its parent, so a
trace reconstructs the call tree of a request across every
instrumented layer.

The instrumentation style everywhere in the package is::

    from ..obs.trace import span

    with span("engine.parallel.run", direction=direction) as s:
        ...
        s.set(rows=rows)          # attach data learned mid-flight

and costs one module-level check when tracing is **off** (the
returned object is a shared no-op context manager — nothing is
allocated, nothing recorded; ``tests/obs`` asserts the zero-span
guarantee and ``benchmarks/bench_obs.py`` tracks the per-call
overhead).

Activation mirrors :mod:`repro.cache`:

* ``REPRO_TRACE=jsonl:<path>`` in the environment — every finished
  span is appended to *path* as one JSON line (inherited by parallel
  workers, whose spans land in the same file tagged with their own
  pid);
* ``REPRO_TRACE=mem`` — record into the bounded in-memory buffer
  only;
* :func:`configure` — what ``Session(trace=...)`` and the CLI's
  ``--trace PATH`` call; explicit configuration wins over the
  environment.

Span ids are unique across threads *and* processes: ``"<pid>-<thread
id>-<sequence>"``.  Every finished span is kept in a bounded
per-process ring (:attr:`Tracer.records`) and, when a JSONL sink is
configured, durably appended as it finishes.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import threading
import time
from collections import deque

__all__ = [
    "ENV_VAR",
    "Span",
    "Tracer",
    "active_tracer",
    "configure",
    "enabled",
    "span",
    "unconfigure",
]

#: Environment variable activating process-wide tracing
#: (``jsonl:<path>`` or ``mem``).
ENV_VAR = "REPRO_TRACE"

#: Default bound on the in-memory ring of finished spans.
DEFAULT_BUFFER = 65536


class Span:
    """One timed, attributed region of work (a context manager).

    Created by :meth:`Tracer.span` (or the module-level :func:`span`
    shortcut); entering starts the clock and links the span under the
    thread's currently open span, exiting records it.

    Parameters
    ----------
    tracer : Tracer
        The tracer that records the span when it closes.
    name : str
        Dotted span name (``"engine.parallel.run"``); the
        aggregation key of per-request timing breakdowns.
    attrs : dict
        Initial attributes (JSON-safe values).
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id",
                 "start_ts", "duration_s", "_tracer", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent_id: "str | None" = None
        self.start_ts = 0.0
        self.duration_s = 0.0
        self._tracer = tracer
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on the open span.

        Parameters
        ----------
        **attrs
            JSON-safe attribute values.

        Returns
        -------
        Span
            ``self``, for chaining.
        """
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        """Start the clock and push the span on the thread's stack."""
        self._tracer._enter(self)
        self.start_ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Stop the clock and hand the finished span to the tracer."""
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._exit(self)

    def to_record(self) -> dict:
        """The span as a plain JSON-safe dict (one JSONL line)."""
        return {"name": self.name, "id": self.span_id,
                "parent": self.parent_id, "ts": self.start_ts,
                "dur_s": self.duration_s, "attrs": self.attrs}


class _NoopSpan:
    """Shared do-nothing stand-in returned while tracing is off."""

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        """Ignore attributes (tracing is off)."""
        return self

    def __enter__(self) -> "_NoopSpan":
        """No-op."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """No-op."""


_NOOP = _NoopSpan()


class Tracer:
    """Thread-safe recorder of finished spans.

    Parameters
    ----------
    buffer : int, optional
        Bound on the in-memory ring of finished span records; older
        spans fall off (default 65536).
    sink : str or Path, optional
        JSONL file appended to as spans finish (``None``: in-memory
        only).  The file is opened lazily, in append mode, and
        re-opened after a ``fork`` so worker processes append their
        own lines instead of sharing the parent's buffer.

    Notes
    -----
    All methods are safe to call from multiple threads; the per-thread
    open-span stack and capture lists live in thread-local storage,
    so concurrent requests never see each other's parentage.
    """

    def __init__(self, buffer: int = DEFAULT_BUFFER,
                 sink: "str | None" = None):
        if buffer < 1:
            raise ValueError("buffer must be >= 1")
        self._records: "deque[dict]" = deque(maxlen=int(buffer))
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sequence = 0
        self.sink = str(sink) if sink is not None else None
        self._sink_file: "io.TextIOBase | None" = None
        self._sink_pid = os.getpid()

    # ------------------------------------------------------------------
    # span lifecycle (called by Span)
    # ------------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else None
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
        span.span_id = (f"{os.getpid():x}-"
                        f"{threading.get_ident():x}-{sequence:x}")
        stack.append(span)

    def _exit(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - misnested guard
            stack.remove(span)
        record = span.to_record()
        for captured in getattr(self._local, "captures", ()):
            captured.append(record)
        with self._lock:
            self._records.append(record)
            if self.sink is not None:
                self._sink_write(record)

    def _sink_write(self, record: dict) -> None:
        # Called under the lock.  After a fork the inherited file
        # object shares the parent's descriptor but not its buffer
        # discipline; re-open so every process appends whole lines.
        if (self._sink_file is None
                or self._sink_pid != os.getpid()):
            directory = os.path.dirname(self.sink)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._sink_file = open(self.sink, "a",
                                   encoding="utf-8")
            self._sink_pid = os.getpid()
        try:
            self._sink_file.write(
                json.dumps(record, sort_keys=True, default=str)
                + "\n")
            self._sink_file.flush()
        except (OSError, ValueError):  # closed/broken sink
            self._sink_file = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Create a span bound to this tracer (enter it with ``with``).

        Parameters
        ----------
        name : str
            Dotted span name.
        **attrs
            Initial JSON-safe attributes.

        Returns
        -------
        Span
            The unstarted span context manager.
        """
        return Span(self, name, attrs)

    def record(self, name: str, start_ts: float,
               duration_s: float, **attrs) -> dict:
        """Append an already-measured span as a root record.

        For phases that finished before any tracer existed — the
        CLI records package import time as a backdated
        ``cli.startup`` span this way, so traces cover the process
        wall time and not just post-import work.

        Parameters
        ----------
        name : str
            Dotted span name.
        start_ts : float
            Wall-clock start (``time.time()`` epoch seconds).
        duration_s : float
            Measured duration in seconds.
        **attrs
            JSON-safe attributes.

        Returns
        -------
        dict
            The appended span record (parentless).
        """
        span = Span(self, name, attrs)
        span.start_ts = float(start_ts)
        span.duration_s = float(duration_s)
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
        span.span_id = (f"{os.getpid():x}-"
                        f"{threading.get_ident():x}-{sequence:x}")
        record = span.to_record()
        with self._lock:
            self._records.append(record)
            if self.sink is not None:
                self._sink_write(record)
        return record

    def current_span(self) -> "Span | None":
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def records(self) -> "list[dict]":
        """A snapshot of the finished-span ring (oldest first)."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        """Drop every buffered record (the sink file is untouched)."""
        with self._lock:
            self._records.clear()

    @contextlib.contextmanager
    def capture(self):
        """Collect spans finished on this thread while the block runs.

        Yields
        ------
        list of dict
            Grows as spans finish; used by
            :meth:`repro.api.Session.run` to build per-request
            timing breakdowns.
        """
        captured: "list[dict]" = []
        captures = getattr(self._local, "captures", None)
        if captures is None:
            captures = self._local.captures = []
        captures.append(captured)
        try:
            yield captured
        finally:
            captures.remove(captured)

    def export_jsonl(self, path: "str | os.PathLike") -> int:
        """Write the buffered records to *path*, one JSON line each.

        Parameters
        ----------
        path : str or os.PathLike
            Destination file (overwritten).

        Returns
        -------
        int
            Number of records written.
        """
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True,
                                        default=str) + "\n")
        return len(records)

    def flush(self) -> None:
        """Flush the JSONL sink (no-op for in-memory tracers)."""
        with self._lock:
            if self._sink_file is not None:
                try:
                    self._sink_file.flush()
                except (OSError, ValueError):  # pragma: no cover
                    self._sink_file = None

    def __repr__(self) -> str:
        """Compact state summary."""
        return (f"Tracer(records={len(self._records)}, "
                f"sink={self.sink!r})")


def read_jsonl(path: "str | os.PathLike") -> "list[dict]":
    """Load an exported trace file back into span records.

    Parameters
    ----------
    path : str or os.PathLike
        A file written by :meth:`Tracer.export_jsonl` or a JSONL
        sink.

    Returns
    -------
    list of dict
        One record per line (a torn final line is discarded).
    """
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


# ----------------------------------------------------------------------
# process-wide activation (mirrors repro.cache)
# ----------------------------------------------------------------------

_UNSET = object()
_CONFIGURED: "Tracer | None | object" = _UNSET
#: Per-spec tracers resolved from the environment, so repeated env
#: lookups share one buffer/sink.
_ENV_TRACERS: "dict[str, Tracer]" = {}


def _tracer_for(spec: str) -> Tracer:
    if spec not in _ENV_TRACERS:
        _ENV_TRACERS[spec] = _build(spec)
    return _ENV_TRACERS[spec]


def _build(spec: str) -> Tracer:
    if spec.startswith("jsonl:"):
        return Tracer(sink=spec[len("jsonl:"):])
    if spec in ("mem", "1", "on"):
        return Tracer()
    # A bare path is treated as a JSONL sink.
    return Tracer(sink=spec)


def configure(trace: "str | Tracer | None") -> "Tracer | None":
    """Set (or clear) the process-wide tracer explicitly.

    Parameters
    ----------
    trace : str or Tracer or None
        ``"jsonl:<path>"`` (or a bare path) for a JSONL sink,
        ``"mem"`` for in-memory-only recording, an existing
        :class:`Tracer`, or ``None`` to disable tracing even if
        ``REPRO_TRACE`` is set.

    Returns
    -------
    Tracer or None
        The active tracer after reconfiguration.

    Notes
    -----
    Explicit configuration wins over the environment — it is what
    ``Session(trace=...)`` and ``repro ... --trace PATH`` call.  Use
    :func:`unconfigure` to fall back to ``REPRO_TRACE``.
    """
    global _CONFIGURED
    if trace is None:
        _CONFIGURED = None
    elif isinstance(trace, Tracer):
        _CONFIGURED = trace
    else:
        _CONFIGURED = _tracer_for(str(trace))
    return _CONFIGURED


def unconfigure() -> None:
    """Drop the explicit configuration (environment rules again)."""
    global _CONFIGURED
    _CONFIGURED = _UNSET


def active_tracer() -> "Tracer | None":
    """The process-wide tracer, or ``None`` when tracing is off.

    Explicit :func:`configure` wins; otherwise ``REPRO_TRACE`` is
    consulted on every call (so tests and forked workers may flip it
    at runtime).
    """
    if _CONFIGURED is not _UNSET:
        return _CONFIGURED  # type: ignore[return-value]
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    return _tracer_for(spec)


def enabled() -> bool:
    """Whether any tracer is currently active."""
    return active_tracer() is not None


def span(name: str, **attrs):
    """Open a span on the active tracer — or a shared no-op.

    The package-wide instrumentation entry point: when tracing is
    disabled this returns a singleton no-op context manager without
    allocating anything, so instrumented hot paths stay at their
    uninstrumented cost (guarded by ``benchmarks/bench_obs.py``).

    Parameters
    ----------
    name : str
        Dotted span name (``"cache.get"``, ``"kernel.eig"``, ...).
    **attrs
        Initial JSON-safe attributes.

    Returns
    -------
    Span or _NoopSpan
        A context manager; real spans support ``.set(**attrs)``.
    """
    tracer = active_tracer()
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attrs)
