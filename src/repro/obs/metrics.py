"""Process-global metrics registry with Prometheus text export.

Counters, gauges and fixed-bucket histograms, registered by name with
optional labels, lock-guarded, and rendered in the Prometheus text
exposition format (version 0.0.4).  One process-wide default registry
(:func:`registry`) holds the library-level instruments — engine call
counters, disk-cache read/write counters, session dispatch counters —
while components that exist many times per process (each
:class:`repro.server.ReproServer`) own a private
:class:`MetricsRegistry` and merge it into the scrape
(:func:`render_prometheus` accepts several registries).

Instrument naming follows the Prometheus conventions: ``*_total`` for
counters, base units (seconds) for histograms, labels for bounded
dimensions only (route patterns, engine names — never ids).  The full
catalog lives in ``docs/observability.md``.

Usage::

    from repro.obs import metrics

    calls = metrics.registry().counter(
        "repro_engine_calls_total", "delay-engine invocations",
        labels={"engine": "vectorized", "direction": "falling"})
    calls.inc()

    print(metrics.registry().render())    # exposition text
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "percentile",
    "registry",
    "render_prometheus",
    "validate_exposition",
]

#: Default histogram bucket upper bounds for request latencies,
#: seconds (sub-millisecond cache hits up to multi-second sweeps).
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def percentile(samples: "list[float]", q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list.

    The single percentile definition of the package (the server's
    p50/p99 report and the histogram sample windows both call it).
    Edge cases are pinned by direct unit tests: a single sample is
    every percentile of itself, ``q=0`` is the minimum, ``q=100`` the
    maximum, and fractional ranks round *up* (nearest-rank), so
    ``q=1.0`` of 200 samples is the 2nd smallest.

    Parameters
    ----------
    samples : list of float
        Observations (not necessarily sorted).
    q : float
        Percentile in ``[0, 100]``.

    Returns
    -------
    float
        The nearest-rank percentile value.

    Raises
    ------
    ValueError
        On an empty sample list or a percentile outside ``[0, 100]``
        (NaN included).
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(len(ordered) * q / 100.0)
    return ordered[min(max(rank, 1), len(ordered)) - 1]


class Counter:
    """A monotonically increasing count.

    Constructed through :meth:`MetricsRegistry.counter`, never
    directly.
    """

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: "int | float" = 1) -> None:
        """Add *amount* (must be >= 0) to the counter.

        Raises
        ------
        ValueError
            If *amount* is negative (counters only go up).
        """
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depths, pool sizes)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: "int | float") -> None:
        """Set the gauge to *value*."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: "int | float" = 1) -> None:
        """Add *amount* (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: "int | float" = 1) -> None:
        """Subtract *amount* from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution of observations.

    Tracks cumulative bucket counts, total sum and count (the
    Prometheus histogram triplet) plus — when *window* is nonzero — a
    bounded ring of the most recent raw samples from which
    :meth:`percentile` answers exactly (the server's p50/p99 report
    rides on this ring, so percentiles are not bucket-quantized).

    Constructed through :meth:`MetricsRegistry.histogram`.
    """

    kind = "histogram"

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS,
                 window: int = 0) -> None:
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = uppers
        self._lock = threading.Lock()
        self._counts = [0] * (len(uppers) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._window: "deque[float] | None" = (
            deque(maxlen=int(window)) if window else None)

    def observe(self, value: "int | float") -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.buckets)
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._window is not None:
                self._window.append(value)

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        with self._lock:
            return self._sum

    def samples(self) -> "list[float]":
        """The raw recent-sample window (empty without a window)."""
        with self._lock:
            return list(self._window) if self._window else []

    def percentile(self, q: float) -> "float | None":
        """Exact nearest-rank percentile of the recent-sample window.

        Parameters
        ----------
        q : float
            Percentile in ``[0, 100]``.

        Returns
        -------
        float or None
            ``None`` when the window is empty (or disabled) — the
            caller decides how to render "no data yet", it is never
            an exception here.
        """
        window = self.samples()
        if not window:
            return None
        return percentile(window, q)

    def snapshot(self) -> dict:
        """Cumulative bucket counts, sum and count as a plain dict."""
        with self._lock:
            counts = list(self._counts)
            total, cumulative = self._count, []
            running = 0
            for value in counts:
                running += value
                cumulative.append(running)
            return {"buckets": dict(zip(self.buckets, cumulative)),
                    "sum": self._sum, "count": total}


class _Family:
    """All children (label sets) of one metric name."""

    __slots__ = ("name", "kind", "help", "buckets", "window",
                 "children")

    def __init__(self, name, kind, help_text, buckets=None,
                 window=0):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.window = window
        self.children: "dict[tuple, object]" = {}

    def _child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS,
                         window=self.window)


class MetricsRegistry:
    """A named collection of instruments, rendered for Prometheus.

    The process-global instance (:func:`registry`) backs the
    library-level instruments; per-component registries (one per
    server) keep multi-instance counters separable.  All operations
    are thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "dict[str, _Family]" = {}

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str,
                buckets=None, window: int = 0) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name: {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets,
                                 window)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a "
                    f"{kind}")
            return family

    @staticmethod
    def _label_key(labels: "dict[str, str] | None") -> tuple:
        if not labels:
            return ()
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"bad label name: {key!r}")
        return tuple(sorted((str(k), str(v))
                            for k, v in labels.items()))

    def _instrument(self, name, kind, help_text, labels,
                    buckets=None, window=0):
        family = self._family(name, kind, help_text, buckets, window)
        key = self._label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = family._child()
            return child

    def counter(self, name: str, help_text: str = "",
                labels: "dict[str, str] | None" = None) -> Counter:
        """Get-or-create the counter *name* for one label set.

        Parameters
        ----------
        name : str
            Metric name (Prometheus conventions: ``*_total``).
        help_text : str, optional
            One-line description (first registration wins).
        labels : dict, optional
            Label name -> value; each distinct set is its own child.
        """
        return self._instrument(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: "dict[str, str] | None" = None) -> Gauge:
        """Get-or-create the gauge *name* for one label set."""
        return self._instrument(name, "gauge", help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: "dict[str, str] | None" = None,
                  buckets=DEFAULT_LATENCY_BUCKETS,
                  window: int = 0) -> Histogram:
        """Get-or-create the histogram *name* for one label set.

        Parameters
        ----------
        name : str
            Metric name (base units; seconds for latencies).
        help_text : str, optional
            One-line description.
        labels : dict, optional
            Label name -> value.
        buckets : sequence of float, optional
            Bucket upper bounds (default: the latency buckets).
        window : int, optional
            Bound of the raw recent-sample ring for exact
            percentiles; ``0`` disables it.
        """
        return self._instrument(name, "histogram", help_text, labels,
                                buckets=buckets, window=window)

    def describe(self, name: str, kind: str,
                 help_text: str = "") -> None:
        """Pre-register an (possibly childless) metric family.

        A described family renders its ``# HELP`` / ``# TYPE`` header
        even before the first increment, so scrapes advertise the
        full catalog from the start.

        Parameters
        ----------
        name : str
            Metric name.
        kind : {'counter', 'gauge', 'histogram'}
            Instrument kind.
        help_text : str, optional
            One-line description.
        """
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown instrument kind {kind!r}")
        self._family(name, kind, help_text)

    def get(self, name: str) -> "dict[tuple, object] | None":
        """The children of family *name* (label key -> instrument),
        or ``None`` for an unknown name."""
        with self._lock:
            family = self._families.get(name)
            return dict(family.children) if family else None

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    @staticmethod
    def _escape(value: str) -> str:
        return (value.replace("\\", r"\\").replace("\n", r"\n")
                .replace('"', r'\"'))

    @classmethod
    def _label_text(cls, key: tuple, extra: str = "") -> str:
        parts = [f'{name}="{cls._escape(value)}"'
                 for name, value in key]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    @staticmethod
    def _number(value: float) -> str:
        if value == math.inf:
            return "+Inf"
        if value == -math.inf:
            return "-Inf"
        if float(value).is_integer() and abs(value) < 1e15:
            return str(int(value))
        return repr(float(value))

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: "list[str]" = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            help_text = family.help or name
            lines.append(f"# HELP {name} "
                         + help_text.replace("\\", r"\\")
                         .replace("\n", r"\n"))
            lines.append(f"# TYPE {name} {family.kind}")
            children = sorted(family.children.items())
            for key, instrument in children:
                labels = self._label_text(key)
                if family.kind in ("counter", "gauge"):
                    lines.append(
                        f"{name}{labels} "
                        f"{self._number(instrument.value)}")
                    continue
                snap = instrument.snapshot()
                for upper, cumulative in snap["buckets"].items():
                    le = self._label_text(
                        key, f'le="{self._number(upper)}"')
                    lines.append(f"{name}_bucket{le} {cumulative}")
                inf = self._label_text(key, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {snap['count']}")
                lines.append(f"{name}_sum{labels} "
                             f"{self._number(snap['sum'])}")
                lines.append(f"{name}_count{labels} "
                             f"{snap['count']}")
        return "\n".join(lines) + "\n" if lines else ""


#: The process-global default registry.
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global default registry."""
    return REGISTRY


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Concatenate several registries into one exposition document.

    Parameters
    ----------
    *registries : MetricsRegistry
        Rendered in order (no default); the server passes the global
        registry plus its own.

    Returns
    -------
    str
        Valid Prometheus text exposition (0.0.4).
    """
    return "".join(reg.render() for reg in registries)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?\s+"
    r"(?P<value>[+-]?(?:Inf|NaN|[0-9.eE+-]+))\s*$")
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate_exposition(text: str) -> "dict[str, int]":
    """Validate Prometheus text exposition format, strictly.

    Used by the tests and the CI scrape smoke: every non-comment line
    must be a well-formed sample, every sample's metric name must
    follow a matching ``# TYPE`` header, and label pairs must parse.

    Parameters
    ----------
    text : str
        An exposition document (e.g. the ``GET /v1/metrics`` body).

    Returns
    -------
    dict of str to int
        Metric family name -> number of sample lines.

    Raises
    ------
    ValueError
        On the first malformed line, with its line number.
    """
    types: "dict[str, str]" = {}
    counts: "dict[str, int]" = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary",
                    "untyped"):
                raise ValueError(f"line {number}: bad TYPE: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            if not line.startswith("# HELP "):
                raise ValueError(
                    f"line {number}: unknown comment: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {number}: bad sample: {line!r}")
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if (name.endswith(suffix)
                    and name[:-len(suffix)] in types):
                family = name[:-len(suffix)]
                break
        if family not in types:
            raise ValueError(
                f"line {number}: sample {name!r} has no TYPE header")
        labels = match.group("labels")
        if labels:
            body = labels[1:-1]
            if body:
                for pair in re.split(r',(?=[a-zA-Z_])', body):
                    if not _LABEL_PAIR_RE.match(pair):
                        raise ValueError(
                            f"line {number}: bad label pair "
                            f"{pair!r}")
        counts[family] = counts.get(family, 0) + 1
    return counts
