"""Observability: span tracing, metrics, and profiling hooks.

``repro.obs`` is the stdlib-only observability layer that every other
subsystem reports into:

:mod:`repro.obs.trace`
    Hierarchical span tracer — ``with span("engine.delays_n", n=3):``
    context managers instrument the session dispatch, all engine
    backends (including parallel shard fan-out), the compiled-kernel
    phases, disk-cache reads/writes, and every server route.  Off by
    default with a no-op-level disabled path; enable with
    ``REPRO_TRACE=jsonl:<path>``, ``Session(trace=...)``, or
    ``repro ... --trace PATH``.

:mod:`repro.obs.metrics`
    Process-global metrics registry (counters, gauges, fixed-bucket
    histograms with label support) scraped at ``GET /v1/metrics`` in
    Prometheus text exposition format and printed by
    ``repro metrics``.

See ``docs/observability.md`` for the quickstart and the metrics
catalog.
"""

from __future__ import annotations

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
    registry,
    render_prometheus,
    validate_exposition,
)
from .trace import (
    Span,
    Tracer,
    active_tracer,
    configure,
    enabled,
    read_jsonl,
    span,
    unconfigure,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_tracer",
    "configure",
    "enabled",
    "percentile",
    "read_jsonl",
    "registry",
    "render_prometheus",
    "span",
    "unconfigure",
    "validate_exposition",
]
