"""repro — reproduction of "A Simple Hybrid Model for Accurate Delay
Modeling of a Multi-Input Gate" (Ferdowsi, Maier, Öhlinger, Schmid;
DATE 2022, arXiv:2111.11182).

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.api` — the unified session facade: a :class:`Session`
  binding technology, engine and parameters, typed JSON-round-trippable
  request/result objects, and one ``session.run(request)`` dispatch
  seam the CLI, experiments and benchmarks all route through.
* :mod:`repro.core` — the hybrid four-mode ODE model of a CMOS NOR gate,
  its closed-form solutions, MIS delay functions, the analytic
  characteristic-delay formulas (paper eqs. 8–12) and the δ_min-based
  parametrization (Table I).
* :mod:`repro.engine` — pluggable array-native evaluation backends for
  MIS delay sweeps: a scalar ``reference`` backend, a NumPy
  ``vectorized`` backend (the default) and a sharded multi-process
  ``parallel`` backend, selected with the ``engine=`` keyword of every
  sweep API or the CLI's ``--engine`` flag.
* :mod:`repro.library` — batch timing-library characterization:
  sweeps gate/parameter grids through an engine into serializable
  per-gate MIS delay tables (JSON) with bilinear interpolated lookup,
  consumed by :class:`repro.timing.TableDelayChannel`.
* :mod:`repro.sta` — MIS-aware static timing analysis: circuits
  lowered into pin-to-pin timing arcs (engine / table / fixed delay
  models), arrival propagation with sibling-Δ conditioning, slack,
  ranked critical paths, and vectorized corner sweeps.
* :mod:`repro.spice` — an MNA-based analog transient simulator with a
  square-law MOSFET model and synthetic 15 nm / 65 nm technology cards;
  the golden reference replacing the paper's Spectre setup.
* :mod:`repro.timing` — digital traces, delay channels (pure, inertial,
  IDM involution, hybrid NOR), deviation-area metrics, random trace
  generation and a timing simulator; the Involution Tool replacement.
* :mod:`repro.models` — literature curve-fitting MIS baselines.
* :mod:`repro.analysis` — experiment pipelines regenerating every
  figure and table of the paper.

Quickstart::

    from repro import Session
    from repro.api import DelayRequest
    session = Session()
    result = session.run(DelayRequest(deltas=((10e-12,),)))
    print(result.delays[0])              # MIS delay at Δ = 10 ps

or, one layer down, directly against the model::

    from repro import HybridNorModel, PAPER_TABLE_I
    model = HybridNorModel(PAPER_TABLE_I)
    print(model.delay_falling(10e-12))   # MIS delay at Δ = 10 ps
"""

import time as _time

#: Wall-clock / monotonic stamps taken before any heavy import; the
#: CLI's ``--trace`` mode uses them to record a ``cli.startup`` span
#: covering interpreter bootstrap and package import time, so traces
#: account for (nearly) the whole process wall time.
_BOOT_TS = _time.time()
_BOOT_T0 = _time.perf_counter()

from ._version import __version__
from .core import (
    PAPER_DELTA_MIN,
    PAPER_TABLE_I,
    CharacteristicDelays,
    CharacteristicTargets,
    HybridNorModel,
    MisCurve,
    Mode,
    NorGateParameters,
    PiecewiseTrajectory,
    fit_nor_parameters,
    infer_delta_min,
    solve_mode,
)
from .engine import (
    DEFAULT_ENGINE,
    DelayEngine,
    ParallelEngine,
    available_engines,
    get_engine,
    register_engine,
)
from .library import (
    CharacterizationJob,
    GateDelayTable,
    GateLibrary,
    characterize_gate,
    characterize_library,
    paper_jobs,
)
from .sta import (
    StaResult,
    TimingGraph,
    analyze,
    build_timing_graph,
    sta_circuit,
    sweep_corners,
)
from .errors import (
    ConvergenceError,
    FittingError,
    NetlistError,
    NoCrossingError,
    ParameterError,
    ReproError,
    SimulationError,
    TraceError,
)
from .api import Session

__all__ = [
    "CharacterizationJob",
    "CharacteristicDelays",
    "CharacteristicTargets",
    "ConvergenceError",
    "DEFAULT_ENGINE",
    "DelayEngine",
    "FittingError",
    "GateDelayTable",
    "GateLibrary",
    "HybridNorModel",
    "MisCurve",
    "Mode",
    "NetlistError",
    "NoCrossingError",
    "NorGateParameters",
    "PAPER_DELTA_MIN",
    "PAPER_TABLE_I",
    "ParallelEngine",
    "ParameterError",
    "PiecewiseTrajectory",
    "ReproError",
    "Session",
    "SimulationError",
    "StaResult",
    "TimingGraph",
    "TraceError",
    "analyze",
    "available_engines",
    "build_timing_graph",
    "characterize_gate",
    "characterize_library",
    "fit_nor_parameters",
    "get_engine",
    "infer_delta_min",
    "paper_jobs",
    "register_engine",
    "solve_mode",
    "sta_circuit",
    "sweep_corners",
    "__version__",
]
