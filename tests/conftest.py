"""Shared fixtures and hypothesis configuration for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.parameters import PAPER_TABLE_I, NorGateParameters
from repro.spice.transient import TransientOptions

# Keep property-based tests snappy; the strategies exercise wide
# parameter ranges, not huge example counts.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def paper_params() -> NorGateParameters:
    """The paper's Table I parameters (with delta_min = 18 ps)."""
    return PAPER_TABLE_I


@pytest.fixture(scope="session")
def bare_params() -> NorGateParameters:
    """Table I parameters without the pure delay."""
    return PAPER_TABLE_I.without_delta_min()


@pytest.fixture(scope="session")
def fast_transient_options() -> TransientOptions:
    """Looser transient tolerances for spice-heavy tests."""
    return TransientOptions(v_scale=0.8, reltol=5e-4,
                            dt_initial=0.1e-12, dt_max=100e-12)


@pytest.fixture(scope="session")
def characterization_cache(fast_transient_options):
    """One shared (coarse) analog characterization of the 15 nm NOR.

    Several analysis tests need a characterization; running it once per
    session keeps the suite fast.  The grid is deliberately small.
    """
    from repro.analysis.characterization import characterize_nor
    from repro.spice.technology import FINFET15
    from repro.units import PS

    deltas = tuple(float(d) * PS for d in (-60, -30, -12, 0, 12, 30, 60))
    return characterize_nor(FINFET15, deltas=deltas,
                            options=fast_transient_options)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)
