"""n-input vector delay surfaces, tables, and the format-v2 JSON."""

import math

import numpy as np
import pytest

from repro.core.charlie import MisCurve
from repro.core.multi_input import paper_generalized
from repro.errors import ParameterError
from repro.library import (CharacterizationJob, GateLibrary,
                           VectorDelaySurface, characterize_gate,
                           characterize_library, generalized_jobs,
                           mis_gate_inputs, verify_table)
from repro.library.tables import (LIBRARY_FORMAT_VERSION,
                                  DelaySurface, GateDelayTable)
from repro.units import PS


@pytest.fixture(scope="module")
def p3():
    return paper_generalized(3)


@pytest.fixture(scope="module")
def nor3_table(p3):
    axis = tuple(np.linspace(-60 * PS, 60 * PS, 17))
    return characterize_gate(
        CharacterizationJob("nor3_t", p3, "nor3", deltas=axis))


def _simple_surface():
    axes = ((0.0, 1.0, 2.0), (0.0, 2.0))
    delays = tuple(tuple(float(10 * i + j) for j in (0, 2))
                   for i in (0, 1, 2))
    return VectorDelaySurface("falling", axes, delays)


class TestMisGateInputs:
    def test_known_types(self):
        assert mis_gate_inputs("nor2") == 2
        assert mis_gate_inputs("nand2") == 2
        assert mis_gate_inputs("nor3") == 3
        assert mis_gate_inputs("nor12") == 12

    @pytest.mark.parametrize("bad", ["xor2", "nand3", "nor", "nor1",
                                     "nor03"])
    def test_unknown_types_rejected(self, bad):
        with pytest.raises(ParameterError):
            mis_gate_inputs(bad)


class TestVectorDelaySurface:
    def test_exact_at_grid_nodes(self):
        surface = _simple_surface()
        assert surface.delay_at([1.0, 2.0]) == 12.0
        assert surface.delay_at([2.0, 0.0]) == 20.0

    def test_multilinear_between_nodes(self):
        surface = _simple_surface()
        # The sampled function is itself multilinear (10*x + y), so
        # interpolation must reproduce it everywhere.
        assert surface.delay_at([0.5, 1.0]) == pytest.approx(6.0)
        assert surface.delay_at([1.5, 0.5]) == pytest.approx(15.5)

    def test_batch_shape(self):
        surface = _simple_surface()
        probes = np.zeros((4, 5, 2))
        assert surface.delays_at(probes).shape == (4, 5)

    def test_infinite_reads_edges(self):
        surface = _simple_surface()
        assert surface.delay_at([math.inf, -math.inf]) == 20.0

    def test_finite_out_of_range_raises(self):
        surface = _simple_surface()
        with pytest.raises(ParameterError):
            surface.delay_at([3.0, 0.0])
        assert surface.delay_at([3.0, 0.0], clamp=True) == 20.0

    def test_nan_rejected(self):
        surface = _simple_surface()
        with pytest.raises(ParameterError):
            surface.delay_at([math.nan, 0.0])
        with pytest.raises(ParameterError):
            surface.delays_at(np.full((1, 2), math.nan), clamp=True)

    def test_wrong_width_rejected(self):
        surface = _simple_surface()
        with pytest.raises(ParameterError):
            surface.delays_at(np.zeros((2, 3)))

    def test_validation(self):
        with pytest.raises(ParameterError):
            VectorDelaySurface("sideways", ((0.0, 1.0),), (0.0, 1.0))
        with pytest.raises(ParameterError):
            VectorDelaySurface("falling", (), ())
        with pytest.raises(ParameterError):  # shape mismatch
            VectorDelaySurface("falling", ((0.0, 1.0), (0.0, 1.0)),
                               ((1.0, 2.0),))
        with pytest.raises(ParameterError):  # non-increasing axis
            VectorDelaySurface("falling", ((1.0, 0.0),), (1.0, 2.0))

    def test_round_trip(self):
        surface = _simple_surface()
        again = VectorDelaySurface.from_dict(surface.to_dict())
        assert again == surface


class TestNInputTables:
    def test_table_structure(self, nor3_table, p3):
        assert nor3_table.gate == "nor3"
        assert nor3_table.num_inputs == 3
        assert nor3_table.params == p3
        assert isinstance(nor3_table.falling, VectorDelaySurface)
        assert nor3_table.falling.num_siblings == 2

    def test_lookup_matches_engine_at_nodes(self, nor3_table, p3):
        from repro.engine import get_engine
        probe = np.array([15 * PS, -30 * PS])
        direct = get_engine().delays_falling_n(p3, probe[None, :])[0]
        assert nor3_table.delay_falling(probe) == pytest.approx(
            float(direct), abs=1e-18)

    def test_describe_mentions_grid(self, nor3_table):
        assert "nor3" in nor3_table.describe()
        assert "17x17" in nor3_table.describe()

    def test_gate_surface_kind_mismatch_rejected(self, nor3_table,
                                                 p3):
        with pytest.raises(ParameterError):
            GateDelayTable(cell="bad", gate="nor2", params=p3,
                           falling=nor3_table.falling,
                           rising=nor3_table.rising)

    def test_json_round_trip(self, nor3_table, tmp_path):
        library = characterize_library(
            [CharacterizationJob("nor3_t", nor3_table.params, "nor3",
                                 deltas=nor3_table.falling.axes[0])],
            name="vector-test")
        path = library.save(tmp_path / "lib.json")
        again = GateLibrary.load(path)
        table = again["nor3_t"]
        assert table == nor3_table
        probe = np.array([5 * PS, -3 * PS])
        assert table.delay_rising(probe) == pytest.approx(
            nor3_table.delay_rising(probe), abs=0.0)

    def test_version_1_payloads_still_load(self, tmp_path):
        from repro.core.parameters import PAPER_TABLE_I
        from repro.library import paper_jobs
        deltas = tuple(np.linspace(-50 * PS, 50 * PS, 9))
        job = paper_jobs(PAPER_TABLE_I)[0]
        import dataclasses
        table = characterize_gate(
            dataclasses.replace(job, deltas=deltas,
                                state_grid=(0.0, 0.8)))
        library = GateLibrary("v1", {table.cell: table})
        payload = library.to_dict()
        assert payload["format_version"] == LIBRARY_FORMAT_VERSION
        payload["format_version"] = 1
        again = GateLibrary.from_dict(payload)
        assert again[table.cell] == table

    def test_unsupported_version_rejected(self, nor3_table):
        library = GateLibrary("x", {"nor3_t": nor3_table})
        payload = library.to_dict()
        payload["format_version"] = 99
        with pytest.raises(ParameterError):
            GateLibrary.from_dict(payload)

    def test_generalized_jobs_defaults(self):
        jobs = generalized_jobs(3)
        assert len(jobs) == 1
        assert jobs[0].gate == "nor3"
        assert jobs[0].num_inputs == 3
        with pytest.raises(ParameterError):
            generalized_jobs(4, paper_generalized(3))


class TestVerifyVectorTable:
    def test_interpolation_error_bound(self, p3):
        # Dense grid on the MIS core: the ISSUE-4 acceptance bound.
        from repro.core.multi_input import generalized_model
        tau = generalized_model(p3).settle_time() / 60.0
        axis = tuple(np.linspace(-0.375 * tau, 0.375 * tau, 193))
        table = characterize_gate(
            CharacterizationJob("nor3_dense", p3, "nor3",
                                deltas=axis))
        accuracy = verify_table(table, oversample=1)
        assert accuracy.max_error <= 0.1 * PS

    def test_coarse_grid_reports_honestly(self, nor3_table):
        accuracy = verify_table(nor3_table, oversample=1)
        # The 17-point axis cannot be femtosecond-accurate; the
        # verifier must report that instead of masking it.
        assert accuracy.max_error > 0.1 * PS


class TestOutOfRangeRegression:
    """Satellite: DelaySurface raises like MisCurve (no silent
    edge-clamp)."""

    @pytest.fixture()
    def surface(self):
        return DelaySurface("falling", (-1.0 * PS, 0.0, 1.0 * PS),
                            (0.0,), ((10 * PS, 11 * PS, 12 * PS),))

    def test_finite_out_of_range_raises(self, surface):
        with pytest.raises(ParameterError):
            surface.delays_at(2.0 * PS)
        with pytest.raises(ParameterError):
            surface.delay_at(-2.0 * PS)

    def test_clamp_opt_in_restores_edges(self, surface):
        assert surface.delay_at(2.0 * PS, clamp=True) == 12 * PS

    def test_infinite_reads_sis_edges(self, surface):
        assert surface.delay_at(math.inf) == 12 * PS
        assert surface.delay_at(-math.inf) == 10 * PS

    def test_nan_rejected(self, surface):
        with pytest.raises(ParameterError):
            surface.delays_at(math.nan)

    def test_mis_curve_still_raises(self):
        curve = MisCurve((-1.0 * PS, 1.0 * PS), (10 * PS, 12 * PS),
                         "falling")
        with pytest.raises(ValueError):
            curve.delay_at(2.0 * PS)
        with pytest.raises(ValueError):
            curve.delay_at(math.inf)
