"""Characterization pipeline: accuracy, duality, engines, round trip.

The load-bearing assertion is the ISSUE acceptance bound: a
characterized table, saved to JSON and reloaded, must reproduce
direct ``vectorized`` engine evaluation to <= 0.1 ps at arbitrary
probe separations across the characterized Δ range.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hybrid_model import settle_time
from repro.core.parameters import PAPER_TABLE_I, NorGateParameters
from repro.engine import ParallelEngine, get_engine
from repro.errors import ParameterError
from repro.library import (CharacterizationJob, GateLibrary,
                           characterize_gate, characterize_library,
                           default_delta_grid, default_state_grid,
                           paper_jobs, verify_table)
from repro.units import PS

#: ISSUE acceptance: table lookup vs direct evaluation, seconds.
ACCURACY_TOL = 0.1 * PS

_resistance = st.floats(min_value=4e3, max_value=4e5)
_cn = st.floats(min_value=6e-18, max_value=6e-16)
_co = st.floats(min_value=6e-17, max_value=6e-15)


@st.composite
def gate_params(draw) -> NorGateParameters:
    return NorGateParameters(
        r1=draw(_resistance), r2=draw(_resistance),
        r3=draw(_resistance), r4=draw(_resistance),
        cn=draw(_cn), co=draw(_co), vdd=0.8,
        delta_min=draw(st.sampled_from([0.0, 18.0 * PS])))


@st.composite
def proportioned_gate_params(draw) -> NorGateParameters:
    """Gates with a physically proportioned ``C_N <= C_O / 2``.

    ``C_N`` is a parasitic stack-node capacitance — a fraction of the
    output load in any real cell (Table I: ~1/10).  The grid-scaling
    accuracy claim below is made for such gates; with ``C_N`` above
    ``C_O`` the rising-curve kinks sharpen beyond what the
    τ-proportional grid step resolves.
    """
    co = draw(_co)
    fraction = draw(st.floats(min_value=0.01, max_value=0.5))
    return NorGateParameters(
        r1=draw(_resistance), r2=draw(_resistance),
        r3=draw(_resistance), r4=draw(_resistance),
        cn=co * fraction, co=co, vdd=0.8,
        delta_min=draw(st.sampled_from([0.0, 18.0 * PS])))


class TestDefaultGrids:
    def test_delta_grid_shape(self):
        grid = default_delta_grid(PAPER_TABLE_I)
        assert np.all(np.diff(grid) > 0.0)
        assert grid[0] == -grid[-1]
        assert 0.0 in grid
        # Ends past the settling cutoff: clamped edges are SIS values.
        assert grid[-1] > settle_time(PAPER_TABLE_I)

    def test_state_grid_spans_rail_to_rail(self):
        grid = default_state_grid(PAPER_TABLE_I)
        assert grid[0] == 0.0
        assert grid[-1] == PAPER_TABLE_I.vdd

    def test_grid_validation(self):
        with pytest.raises(ParameterError):
            default_delta_grid(PAPER_TABLE_I, core_points=2)
        with pytest.raises(ParameterError):
            default_delta_grid(PAPER_TABLE_I, core_span=1.0)
        with pytest.raises(ParameterError):
            default_state_grid(PAPER_TABLE_I, points=1)


class TestAcceptanceRoundTrip:
    """characterize -> save -> load -> interpolate within tolerance."""

    @pytest.fixture(scope="class")
    def loaded(self, tmp_path_factory) -> GateLibrary:
        lib = characterize_library(paper_jobs(), engine="vectorized",
                                   name="acceptance")
        path = lib.save(tmp_path_factory.mktemp("lib") / "gates.json")
        return GateLibrary.load(path)

    def test_nor_random_probes_within_tolerance(self, loaded):
        table = loaded["nor2_paper"]
        engine = get_engine("vectorized")
        rng = np.random.default_rng(42)
        lo, hi = table.falling.delta_range
        probes = rng.uniform(lo, hi, 2048)
        assert np.max(np.abs(
            table.falling.delays_at(probes)
            - engine.delays_falling(PAPER_TABLE_I, probes)
        )) <= ACCURACY_TOL
        for vn in table.rising.state_grid:
            assert np.max(np.abs(
                table.rising.delays_at(probes, vn)
                - engine.delays_rising(PAPER_TABLE_I, probes, vn)
            )) <= ACCURACY_TOL

    def test_nand_duality_probes_within_tolerance(self, loaded):
        from repro.core.duality import HybridNandModel
        table = loaded["nand2_paper"]
        model = HybridNandModel(PAPER_TABLE_I)
        rng = np.random.default_rng(43)
        lo, hi = table.falling.delta_range
        for delta in rng.uniform(lo, hi, 32):
            assert table.delay_falling(delta, PAPER_TABLE_I.vdd) == \
                pytest.approx(model.delay_falling(delta),
                              abs=ACCURACY_TOL)
            assert table.delay_rising(delta) == pytest.approx(
                model.delay_rising(delta), abs=ACCURACY_TOL)

    def test_sis_edges_exact(self, loaded):
        """Clamped ±inf lookups equal the engine's SIS limits."""
        table = loaded["nor2_paper"]
        engine = get_engine("vectorized")
        fall = engine.delays_falling(PAPER_TABLE_I,
                                     [-math.inf, math.inf])
        assert table.delay_falling(-math.inf) == \
            pytest.approx(fall[0], abs=1e-15)
        assert table.delay_falling(math.inf) == \
            pytest.approx(fall[1], abs=1e-15)

    def test_verify_table_within_acceptance(self, loaded):
        for cell in loaded.cells:
            accuracy = verify_table(loaded[cell])
            assert accuracy.max_error <= ACCURACY_TOL, cell


class TestRandomizedAccuracy:
    """Interpolation error scales with the gate's slowest RC time.

    The default grid resolves the MIS region proportionally to
    ``τ_max``, so the kink-interpolation error is a fixed fraction of
    it for physically proportioned gates (``C_N <= C_O / 2``; see
    :func:`proportioned_gate_params`); assert that scaling rather
    than the absolute paper-scale bound.
    """

    @settings(max_examples=10, deadline=None)
    @given(params=proportioned_gate_params())
    def test_accuracy_tracks_time_constant(self, params):
        job = CharacterizationJob("random_cell", params)
        table = characterize_gate(job)
        accuracy = verify_table(table)
        # The kink-interpolation error is bounded by the grid step,
        # itself proportional to the slowest time constant; 1e-2 tau
        # holds with margin across the two-decade parameter ranges.
        tau_max = settle_time(params) / 60.0
        assert accuracy.max_error <= max(ACCURACY_TOL,
                                         1e-2 * tau_max)


class TestEngines:
    def test_parallel_backend_matches_vectorized(self):
        job = CharacterizationJob("nor2_paper", PAPER_TABLE_I)
        sharded = ParallelEngine(processes=2, min_shard_points=64)
        try:
            via_parallel = characterize_gate(job, sharded)
        finally:
            sharded.close()
        via_vectorized = characterize_gate(job, "vectorized")
        for direction in ("falling", "rising"):
            a = getattr(via_parallel, direction)
            b = getattr(via_vectorized, direction)
            assert np.max(np.abs(np.asarray(a.delays)
                                 - np.asarray(b.delays))) <= 1e-12

    def test_engine_name_recorded(self):
        job = CharacterizationJob("nor2_paper", PAPER_TABLE_I)
        table = characterize_gate(job, "reference")
        assert table.engine == "reference"


class TestJobs:
    def test_paper_jobs_cover_gates_and_variants(self):
        jobs = paper_jobs()
        cells = {job.cell for job in jobs}
        assert {"nor2_paper", "nor2_paper_no_dmin", "nand2_paper",
                "nand2_paper_no_dmin"} == cells
        bare = next(j for j in jobs if j.cell == "nor2_paper_no_dmin")
        assert bare.params.delta_min == 0.0

    def test_duplicate_cells_rejected(self):
        job = CharacterizationJob("dup", PAPER_TABLE_I)
        with pytest.raises(ParameterError, match="duplicate"):
            characterize_library([job, job])

    def test_explicit_grids_respected(self):
        deltas = tuple(float(d) * PS for d in range(-50, 51, 5))
        states = (0.0, 0.8)
        job = CharacterizationJob("custom", PAPER_TABLE_I,
                                  deltas=deltas, state_grid=states)
        table = characterize_gate(job)
        assert table.falling.deltas == deltas
        assert table.rising.state_grid == states

    def test_unsupported_gate_type(self):
        job = CharacterizationJob("bad", PAPER_TABLE_I, gate="xor2")
        with pytest.raises(ParameterError):
            characterize_gate(job)
