"""Contract tests for DelaySurface / GateDelayTable / GateLibrary."""

import json
import math

import numpy as np
import pytest

from repro.core.charlie import MisCurve
from repro.core.parameters import PAPER_TABLE_I
from repro.errors import ParameterError
from repro.library import (DelaySurface, GateDelayTable, GateLibrary,
                           LIBRARY_FORMAT, characterize_gate,
                           CharacterizationJob)
from repro.units import PS


@pytest.fixture(scope="module")
def nor_table() -> GateDelayTable:
    job = CharacterizationJob("nor2_test", PAPER_TABLE_I)
    return characterize_gate(job)


def _surface(direction="falling", states=(0.0,),
             deltas=(-10.0 * PS, 0.0, 10.0 * PS)) -> DelaySurface:
    rows = tuple(tuple(20.0 * PS + i * PS + j * PS
                       for j in range(len(deltas)))
                 for i in range(len(states)))
    return DelaySurface(direction, tuple(deltas), tuple(states), rows)


class TestDelaySurface:
    def test_rejects_bad_direction(self):
        with pytest.raises(ParameterError):
            _surface(direction="sideways")

    def test_rejects_non_monotone_deltas(self):
        with pytest.raises(ParameterError):
            _surface(deltas=(0.0, 0.0, 1.0 * PS))

    def test_rejects_ragged_rows(self):
        with pytest.raises(ParameterError):
            DelaySurface("falling", (0.0, 1.0 * PS), (0.0,),
                         ((1.0 * PS,),))

    def test_rejects_row_count_mismatch(self):
        with pytest.raises(ParameterError):
            DelaySurface("falling", (0.0, 1.0 * PS), (0.0, 0.4),
                         ((1.0 * PS, 2.0 * PS),))

    def test_clamped_lookup_at_edges(self):
        surface = _surface()
        assert surface.delay_at(-math.inf) == surface.delays[0][0]
        assert surface.delay_at(math.inf) == surface.delays[0][-1]

    def test_interpolates_between_samples(self):
        surface = _surface()
        mid = surface.delay_at(5.0 * PS)
        assert surface.delays[0][1] < mid < surface.delays[0][2]

    def test_bilinear_between_state_rows(self):
        surface = _surface(states=(0.0, 0.8))
        low = surface.delay_at(0.0, 0.0)
        high = surface.delay_at(0.0, 0.8)
        mid = surface.delay_at(0.0, 0.4)
        assert mid == pytest.approx(0.5 * (low + high))

    def test_state_clamps(self):
        surface = _surface(states=(0.0, 0.8))
        assert surface.delay_at(0.0, -5.0) == surface.delay_at(0.0, 0.0)
        assert surface.delay_at(0.0, 5.0) == surface.delay_at(0.0, 0.8)

    def test_curve_is_miscurve(self):
        curve = _surface().curve()
        assert isinstance(curve, MisCurve)
        assert curve.direction == "falling"

    def test_round_trip(self):
        surface = _surface(states=(0.0, 0.8))
        assert DelaySurface.from_dict(surface.to_dict()) == surface


class TestGateDelayTable:
    def test_direction_consistency_enforced(self, nor_table):
        with pytest.raises(ParameterError):
            GateDelayTable("x", "nor2", PAPER_TABLE_I,
                           falling=nor_table.rising,
                           rising=nor_table.rising)

    def test_unknown_gate_rejected(self, nor_table):
        with pytest.raises(ParameterError):
            GateDelayTable("x", "xor2", PAPER_TABLE_I,
                           falling=nor_table.falling,
                           rising=nor_table.rising)

    def test_round_trip(self, nor_table):
        clone = GateDelayTable.from_dict(nor_table.to_dict())
        assert clone == nor_table

    def test_describe_mentions_cell(self, nor_table):
        assert "nor2_test" in nor_table.describe()

    def test_missing_key_raises_parameter_error(self, nor_table):
        payload = nor_table.to_dict()
        del payload["falling"]
        with pytest.raises(ParameterError, match="missing"):
            GateDelayTable.from_dict(payload)


class TestGateLibrary:
    def test_key_must_match_cell(self, nor_table):
        with pytest.raises(ParameterError):
            GateLibrary("lib", {"other_name": nor_table})

    def test_save_load_round_trip(self, nor_table, tmp_path):
        lib = GateLibrary("lib", {nor_table.cell: nor_table},
                          description="test library")
        path = lib.save(tmp_path / "lib.json")
        loaded = GateLibrary.load(path)
        assert loaded == lib
        assert loaded["nor2_test"].delay_falling(0.0) == \
            nor_table.delay_falling(0.0)

    def test_getitem_error_lists_cells(self, nor_table):
        lib = GateLibrary("lib", {nor_table.cell: nor_table})
        with pytest.raises(KeyError, match="nor2_test"):
            lib["missing_cell"]

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ParameterError, match="format"):
            GateLibrary.load(path)

    def test_rejects_future_format_version(self, nor_table, tmp_path):
        lib = GateLibrary("lib", {nor_table.cell: nor_table})
        payload = lib.to_dict()
        payload["format_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ParameterError, match="version"):
            GateLibrary.load(path)

    def test_header_fields(self, nor_table):
        lib = GateLibrary("lib", {nor_table.cell: nor_table})
        payload = lib.to_dict()
        assert payload["format"] == LIBRARY_FORMAT
        assert list(payload["cells"]) == ["nor2_test"]

    def test_iteration_and_len(self, nor_table):
        lib = GateLibrary("lib", {nor_table.cell: nor_table})
        assert len(lib) == 1
        assert [t.cell for t in lib] == ["nor2_test"]
        assert lib.cells == ("nor2_test",)
