"""Smoke tests for the experiment registry (reduced workloads)."""

import pytest

from repro.analysis.experiments import (experiment_analytic,
                                        experiment_baseline_fits,
                                        experiment_faithfulness,
                                        experiment_fig4, experiment_fig5,
                                        experiment_fig6, experiment_fig8,
                                        experiment_table1)
from repro.api import experiment_names
from repro.core.parameters import PAPER_TABLE_I
from repro.units import PS


class TestRegistry:
    def test_all_figures_and_tables_present(self):
        assert {"fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
                "table1", "analytic", "runtime", "library",
                "faithfulness"} <= set(experiment_names())

    def test_legacy_registry_is_deprecation_shimmed(self):
        from repro.analysis import experiments
        with pytest.warns(DeprecationWarning,
                          match="repro.api"):
            registry = experiments.EXPERIMENTS
        assert set(experiment_names()) - {"multi_input"} \
            <= set(registry)


class TestLibraryExperiment:
    def test_accuracy_audit_under_acceptance(self):
        from repro.analysis.experiments import experiment_library
        from repro.library import CharacterizationJob

        jobs = (CharacterizationJob("nor2_paper", PAPER_TABLE_I),
                CharacterizationJob("nand2_paper", PAPER_TABLE_I,
                                    gate="nand2"))
        result = experiment_library(jobs=jobs)
        assert len(result.library) == 2
        assert all(a.max_error <= 0.1 * PS for a in result.accuracies)
        assert "Library characterization" in result.text
        assert result.cells_per_second > 0.0


class TestFig4:
    def test_trajectories(self):
        result = experiment_fig4(points=6)
        assert result.times.shape == (6,)
        assert len(result.trajectories) == 8  # VN and VO of 4 systems
        assert "Fig. 4" in result.text

    def test_initial_values_follow_paper(self):
        result = experiment_fig4(points=4)
        vdd = PAPER_TABLE_I.vdd
        assert result.trajectories["VN(0, 0)"][0] == pytest.approx(0.0)
        assert result.trajectories["VO(0, 1)"][0] == pytest.approx(vdd)
        assert result.trajectories["VN(1, 1)"][0] == pytest.approx(
            vdd / 2)

    def test_system_11_output_steepest(self):
        """Fig. 4's observation: (1,1) discharges much faster."""
        result = experiment_fig4(points=10, t_stop=60 * PS)
        vo_11 = result.trajectories["VO(1, 1)"]
        vo_01 = result.trajectories["VO(0, 1)"]
        assert vo_11[3] < vo_01[3]


class TestCurveExperiments:
    def test_fig5_model_only(self):
        result = experiment_fig5(deltas=[d * PS for d in (-30, 0, 30)])
        assert len(result.curves) == 1
        assert "Fig. 5" in result.text

    def test_fig5_with_characterization(self, characterization_cache):
        result = experiment_fig5(
            characterization=characterization_cache,
            deltas=[d * PS for d in (-30, 0, 30)])
        assert len(result.curves) == 2

    def test_fig6_three_vn_curves(self):
        result = experiment_fig6(deltas=[d * PS for d in (-40, 0, 40)])
        assert len(result.curves) == 3
        # X = GND curve is the slowest for Δ <= 0.
        ground, half, vdd = result.curves
        assert ground.delays[0] >= vdd.delays[0]

    def test_fig8_with_and_without(self):
        result = experiment_fig8(deltas=[d * PS for d in (-30, 0, 30)])
        with_dmin, without = result.curves
        # The pure delay shifts the whole curve up by 18 ps.
        for d1, d2 in zip(with_dmin.delays, without.delays):
            assert d1 - d2 == pytest.approx(18 * PS, rel=1e-9)


class TestTable1:
    def test_text_mentions_18ps(self):
        result = experiment_table1()
        assert "18.00 ps" in result.text
        assert result.fit.max_error < 0.25 * PS


class TestAnalytic:
    def test_all_rows_accurate(self):
        result = experiment_analytic()
        for _name, approx, exact in result.rows:
            assert approx == pytest.approx(exact, abs=0.05 * PS)


class TestAblations:
    def test_baseline_fits(self, characterization_cache):
        result = experiment_baseline_fits(characterization_cache)
        names = [tag for tag, _err in result.rows]
        assert any("hybrid" in name for name in names)
        assert any("finite-point" in name for name in names)
        errors = {tag: err for tag, err in result.rows}
        assert all(err >= 0.0 for err in errors.values())

    def test_faithfulness_experiment(self):
        result = experiment_faithfulness(
            widths=[w * PS for w in (100, 40, 25, 10)])
        assert len(result.rows) == 4
        widths = [w for _tag, w in result.rows]
        assert widths == sorted(widths, reverse=True)
