"""Tests for repro.analysis.characterization (uses the shared cache)."""

import pytest

from repro.analysis.characterization import (SIS_SEPARATION,
                                             nor_mis_delay,
                                             nor_mis_waveforms,
                                             toggle_sis_delays)
from repro.errors import ParameterError
from repro.spice.technology import FINFET15
from repro.units import PS


class TestSingleMisMeasurements:
    def test_direction_validation(self, fast_transient_options):
        with pytest.raises(ParameterError):
            nor_mis_delay(FINFET15, 0.0, "diagonal",
                          fast_transient_options)

    def test_waveforms_return_input_times(self, fast_transient_options):
        result, t_a, t_b = nor_mis_waveforms(FINFET15, 10 * PS,
                                             "falling",
                                             fast_transient_options)
        assert t_b - t_a == pytest.approx(10 * PS)
        assert result.value_at("a", 0.0) == pytest.approx(0.0,
                                                          abs=1e-3)

    def test_negative_delta_keeps_first_edge_late(
            self, fast_transient_options):
        _result, t_a, t_b = nor_mis_waveforms(FINFET15, -100 * PS,
                                              "rising",
                                              fast_transient_options)
        assert min(t_a, t_b) > 200 * PS

    def test_toggle_input_validation(self, fast_transient_options):
        with pytest.raises(ParameterError):
            toggle_sis_delays(FINFET15, "c", fast_transient_options)


class TestCharacterizationResults:
    """Structural properties of the shared coarse characterization."""

    def test_falling_is_speedup(self, characterization_cache):
        assert characterization_cache.sis_falling.is_speedup

    def test_falling_mis_magnitude_matches_paper(
            self, characterization_cache):
        mis_minus, mis_plus = \
            characterization_cache.falling_mis_percent
        # Paper: -28.01 % / -28.43 %; our substrate: about -30 %.
        assert -36.0 < mis_minus < -22.0
        assert -36.0 < mis_plus < -22.0

    def test_rising_peak_exists(self, characterization_cache):
        peak_minus, peak_plus = \
            characterization_cache.rising_peak_percent
        # Paper: +2.08 % / +7.26 %; shape requires both positive.
        assert peak_minus > 0.5
        assert peak_plus > 2.0

    def test_rising_order_dependence(self, characterization_cache):
        sis = characterization_cache.sis_rising
        assert sis.minus_inf > sis.plus_inf  # early A helps

    def test_falling_order_dependence(self, characterization_cache):
        sis = characterization_cache.sis_falling
        assert sis.plus_inf > sis.minus_inf  # T2 slows the A-first case

    def test_delay_magnitudes_in_paper_ballpark(
            self, characterization_cache):
        sis_fall = characterization_cache.sis_falling
        sis_rise = characterization_cache.sis_rising
        assert 20 * PS < sis_fall.zero < 35 * PS
        assert 30 * PS < sis_fall.minus_inf < 45 * PS
        assert 45 * PS < sis_rise.plus_inf < 65 * PS

    def test_curve_edges_close_to_sis_values(self,
                                             characterization_cache):
        ch = characterization_cache
        assert ch.falling.delays[0] == pytest.approx(
            ch.sis_falling.minus_inf, abs=1.0 * PS)
        assert ch.falling.delays[-1] == pytest.approx(
            ch.sis_falling.plus_inf, abs=1.0 * PS)

    def test_targets_use_model_consistent_rising_zero(
            self, characterization_cache):
        targets = characterization_cache.targets
        assert targets.rising.zero == targets.rising.minus_inf

    def test_toggle_targets_shape(self, characterization_cache):
        toggle = characterization_cache.targets_toggle
        # Toggle rising delays are within a few ps of each other and
        # lower than the Δ-protocol value (the parked-node effect).
        assert toggle.rising.minus_inf <= \
            characterization_cache.sis_rising.minus_inf
        assert toggle.falling.zero == \
            characterization_cache.sis_falling.zero

    def test_vdd_recorded(self, characterization_cache):
        assert characterization_cache.vdd == pytest.approx(0.8)
        assert characterization_cache.tech_name == "finfet15"


class TestModelCharacterization:
    """Engine-based characterization of the hybrid model itself."""

    @pytest.fixture(scope="class")
    def model_char(self):
        from repro.analysis.characterization import characterize_model
        from repro.core.parameters import PAPER_TABLE_I

        return characterize_model(PAPER_TABLE_I)

    def test_curves_and_triples(self, model_char):
        from repro.core.hybrid_model import HybridNorModel
        from repro.core.parameters import PAPER_TABLE_I

        model = HybridNorModel(PAPER_TABLE_I)
        assert model_char.falling.direction == "falling"
        assert model_char.sis_falling.zero == pytest.approx(
            model.delay_falling_zero(), abs=1e-12)
        assert model_char.sis_falling.minus_inf == pytest.approx(
            model.delay_falling_minus_inf(), abs=1e-12)
        assert model_char.sis_rising.plus_inf == pytest.approx(
            model.delay_rising_plus_inf(), abs=1e-12)

    def test_model_is_history_free(self, model_char):
        # Unlike the analog gate, toggle and Δ-protocol triples
        # coincide for the ideal-switch model.
        assert model_char.sis_falling_toggle == model_char.sis_falling
        assert model_char.sis_rising_toggle == model_char.sis_rising

    def test_engines_agree(self):
        from repro.analysis.characterization import characterize_model
        from repro.core.parameters import PAPER_TABLE_I

        fast = characterize_model(PAPER_TABLE_I, engine="vectorized")
        slow = characterize_model(PAPER_TABLE_I, engine="reference")
        assert fast.falling.max_abs_difference(slow.falling) <= 1e-12
        assert fast.rising.max_abs_difference(slow.rising) <= 1e-12

    def test_targets_are_fittable_containers(self, model_char):
        targets = model_char.targets
        assert targets.rising.zero == targets.rising.minus_inf
        assert targets.vdd == pytest.approx(0.8)
