"""Tests for repro.analysis.faithfulness and repro.analysis.reporting."""

import math

import pytest

from repro.analysis.faithfulness import (perturbation_sensitivity,
                                         short_pulse_filtration)
from repro.analysis.reporting import (ascii_table, format_bar_chart,
                                      format_curve, format_curves)
from repro.core import PAPER_TABLE_I
from repro.core.charlie import MisCurve
from repro.errors import ParameterError
from repro.timing.channels import (HybridNorChannel,
                                   InertialDelayChannel)
from repro.timing.gates import gate_function, zero_time_gate
from repro.timing.trace import DigitalTrace
from repro.units import PS


def inertial_nor_model(delay):
    channel = InertialDelayChannel(delay)
    nor = gate_function("nor")

    def run(a, b):
        return channel.apply(zero_time_gate(nor, [a, b]))

    return run


class TestShortPulseFiltration:
    def test_hybrid_output_shrinks_continuously(self):
        channel = HybridNorChannel(PAPER_TABLE_I)
        widths = [w * PS for w in (120, 60, 40, 30, 25, 22)]
        responses = short_pulse_filtration(channel.simulate, widths)
        out_widths = [r.output_width for r in responses]
        nonzero = [w for w in out_widths if w > 0.0]
        assert len(nonzero) >= 4
        assert nonzero == sorted(nonzero, reverse=True)
        # Continuity: the smallest surviving output pulse is small.
        assert nonzero[-1] < 25 * PS

    def test_inertial_is_discontinuous(self):
        model = inertial_nor_model(38 * PS)
        widths = [w * PS for w in (120, 60, 39, 37, 20)]
        responses = short_pulse_filtration(model, widths)
        out_widths = [r.output_width for r in responses]
        # Same width until the cutoff, then suddenly nothing.
        assert out_widths[2] == pytest.approx(39 * PS)
        assert out_widths[3] == 0.0

    def test_transitions_counted(self):
        channel = HybridNorChannel(PAPER_TABLE_I)
        responses = short_pulse_filtration(channel.simulate,
                                           [200 * PS, 2 * PS])
        assert responses[0].transitions == 2
        assert responses[1].transitions == 0

    def test_bad_width(self):
        channel = HybridNorChannel(PAPER_TABLE_I)
        with pytest.raises(ParameterError):
            short_pulse_filtration(channel.simulate, [0.0])


class TestPerturbationSensitivity:
    def test_hybrid_sensitivity_is_finite_and_modest(self):
        channel = HybridNorChannel(PAPER_TABLE_I)
        a = DigitalTrace.from_edges(0, [300 * PS, 800 * PS])
        b = DigitalTrace.constant(0)
        sensitivity = perturbation_sensitivity(channel.simulate, a, b,
                                               epsilon=0.05 * PS)
        assert math.isfinite(sensitivity)
        assert sensitivity < 3.0

    def test_inertial_discontinuity_detected(self):
        """Perturbing across the filter boundary changes the output
        transition count -> infinite sensitivity."""
        model = inertial_nor_model(38 * PS)
        a = DigitalTrace.from_edges(0, [300 * PS, 300 * PS + 38 * PS])
        b = DigitalTrace.constant(0)
        sensitivity = perturbation_sensitivity(model, a, b,
                                               epsilon=1.0 * PS,
                                               transition_index=1)
        assert math.isinf(sensitivity)

    def test_validation(self):
        channel = HybridNorChannel(PAPER_TABLE_I)
        empty = DigitalTrace.constant(0)
        with pytest.raises(ParameterError):
            perturbation_sensitivity(channel.simulate, empty, empty)

    def test_index_validation(self):
        channel = HybridNorChannel(PAPER_TABLE_I)
        a = DigitalTrace.from_edges(0, [300 * PS])
        with pytest.raises(ParameterError):
            perturbation_sensitivity(channel.simulate, a,
                                     DigitalTrace.constant(0),
                                     transition_index=5)


class TestReporting:
    def test_ascii_table_basic(self):
        text = ascii_table(["a", "b"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0]
        assert "333" in lines[3]  # header, separator, row1, row2

    def test_ascii_table_title(self):
        text = ascii_table(["x"], [["1"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_ascii_table_row_length_checked(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only one"]])

    def test_ascii_table_float_formatting(self):
        text = ascii_table(["v"], [[1.23456789]])
        assert "1.235" in text

    def test_format_curve(self):
        curve = MisCurve.from_arrays([-1e-12, 1e-12],
                                     [30e-12, 31e-12], "falling",
                                     label="test")
        text = format_curve(curve)
        assert "30.00" in text
        assert "delta [ps]" in text

    def test_format_curves_union_grid(self):
        c1 = MisCurve.from_arrays([-1e-12, 1e-12], [30e-12, 31e-12],
                                  "falling", label="one")
        c2 = MisCurve.from_arrays([0.0, 2e-12], [29e-12, 32e-12],
                                  "falling", label="two")
        text = format_curves([c1, c2])
        assert "one" in text and "two" in text
        assert "-" in text  # out-of-support marker

    def test_format_curves_empty(self):
        with pytest.raises(ValueError):
            format_curves([])

    def test_format_bar_chart(self):
        text = format_bar_chart(["alpha", "b"], [1.0, 0.5],
                                title="Chart")
        lines = text.splitlines()
        assert lines[0] == "Chart"
        assert lines[1].count("#") > lines[2].count("#")

    def test_format_bar_chart_mismatch(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])
