"""Tests for the fitting pipeline and the Fig. 7 accuracy machinery."""

import pytest

from repro.analysis.accuracy import (MODEL_LABELS, build_model_suite,
                                     evaluate_config, reference_output)
from repro.analysis.fitting import (PAPER_FIG2_TARGETS,
                                    fit_from_characterization,
                                    fit_from_paper_values)
from repro.core.parameters import PAPER_TABLE_I
from repro.errors import ParameterError
from repro.spice.technology import FINFET15
from repro.timing.trace import DigitalTrace
from repro.timing.tracegen import WaveformConfig
from repro.units import PS


class TestPaperValueFit:
    def test_delta_min_is_18ps(self):
        fit = fit_from_paper_values(co=PAPER_TABLE_I.co)
        assert fit.params.delta_min == pytest.approx(18 * PS)

    def test_targets_matched(self):
        fit = fit_from_paper_values(co=PAPER_TABLE_I.co)
        assert fit.max_error < 0.25 * PS

    def test_r3_r4_near_table1(self):
        fit = fit_from_paper_values(co=PAPER_TABLE_I.co)
        assert fit.params.r3 == pytest.approx(PAPER_TABLE_I.r3,
                                              rel=0.10)
        assert fit.params.r4 == pytest.approx(PAPER_TABLE_I.r4,
                                              rel=0.10)

    def test_paper_targets_sane(self):
        assert PAPER_FIG2_TARGETS.falling.zero == pytest.approx(28 * PS)
        assert PAPER_FIG2_TARGETS.rising.zero == \
            PAPER_FIG2_TARGETS.rising.minus_inf


class TestCharacterizationFit:
    def test_delta_protocol(self, characterization_cache):
        fit = fit_from_characterization(characterization_cache)
        assert fit.max_error < 0.6 * PS
        assert fit.params.delta_min > 5 * PS

    def test_toggle_protocol(self, characterization_cache):
        fit = fit_from_characterization(characterization_cache,
                                        protocol="toggle")
        assert fit.max_error < 0.6 * PS

    def test_unknown_protocol(self, characterization_cache):
        with pytest.raises(ValueError):
            fit_from_characterization(characterization_cache,
                                      protocol="sideways")

    def test_no_dmin_fit_worse(self, characterization_cache):
        with_dmin = fit_from_characterization(characterization_cache)
        without = fit_from_characterization(characterization_cache,
                                            delta_min=0.0)
        assert without.max_error > 2.0 * with_dmin.max_error


class TestModelSuite:
    def test_structure(self, characterization_cache):
        fit = fit_from_characterization(characterization_cache)
        suite = build_model_suite(characterization_cache.targets,
                                  fit.params)
        assert set(suite) == {"inertial", "exp", "hm_no_dmin", "hm"}
        assert set(MODEL_LABELS) == set(suite)

    def test_runners_produce_traces(self, characterization_cache):
        fit = fit_from_characterization(characterization_cache)
        suite = build_model_suite(characterization_cache.targets,
                                  fit.params)
        a = DigitalTrace.from_edges(0, [300 * PS])
        b = DigitalTrace.constant(0)
        for runner in suite.values():
            out = runner(a, b)
            assert out.initial == 1
            assert out.values == (0,)

    def test_hm_runner_matches_fit_delay(self, characterization_cache):
        from repro.core import HybridNorModel
        fit = fit_from_characterization(characterization_cache)
        suite = build_model_suite(characterization_cache.targets,
                                  fit.params)
        a = DigitalTrace.from_edges(0, [300 * PS])
        out = suite["hm"](a, DigitalTrace.constant(0))
        expected = HybridNorModel(fit.params).delay_falling_plus_inf()
        assert out.times[0] - 300 * PS == pytest.approx(expected,
                                                        rel=1e-9)


class TestAccuracyPipeline:
    @pytest.fixture(scope="class")
    def tiny_accuracy(self, characterization_cache,
                      fast_transient_options):
        fit = fit_from_characterization(characterization_cache,
                                        protocol="toggle")
        suite = build_model_suite(
            characterization_cache.targets_toggle, fit.params)
        config = WaveformConfig(mu=150 * PS, sigma=60 * PS,
                                mode="local", transitions=16)
        return evaluate_config(FINFET15, suite, config, repetitions=1,
                               seed=11,
                               options=fast_transient_options)

    def test_inertial_normalizes_to_one(self, tiny_accuracy):
        assert tiny_accuracy.normalized["inertial"] == pytest.approx(
            1.0)

    def test_areas_non_negative(self, tiny_accuracy):
        assert all(area >= 0.0 for area in tiny_accuracy.areas.values())

    def test_hybrid_beats_or_matches_inertial(self, tiny_accuracy):
        assert tiny_accuracy.normalized["hm"] < 1.3

    def test_rows_labelled(self, tiny_accuracy):
        labels = [row[0] for row in tiny_accuracy.rows()]
        assert "inertial delay" in labels
        assert "HM with dmin" in labels

    def test_repetitions_validated(self, characterization_cache):
        fit = fit_from_characterization(characterization_cache)
        suite = build_model_suite(characterization_cache.targets,
                                  fit.params)
        config = WaveformConfig(mu=150 * PS, sigma=60 * PS,
                                mode="local", transitions=4)
        with pytest.raises(ParameterError):
            evaluate_config(FINFET15, suite, config, repetitions=0)


class TestReferenceOutput:
    def test_single_pulse_reference(self, fast_transient_options):
        a = DigitalTrace.from_edges(0, [300 * PS, 1200 * PS])
        b = DigitalTrace.constant(0)
        out = reference_output(FINFET15, a, b, 2000 * PS,
                               fast_transient_options)
        assert out.initial == 1
        assert out.values == (0, 1)
        fall_delay = out.times[0] - 300 * PS
        assert 25 * PS < fall_delay < 50 * PS
