"""Tests for repro.models.fitted — literature curve-fit baselines."""

import numpy as np
import pytest

from repro.core.charlie import MisCurve
from repro.errors import FittingError, ParameterError
from repro.models.fitted import FinitePointMisModel, QuadraticMisModel
from repro.units import PS


@pytest.fixture()
def falling_curve():
    deltas = np.linspace(-60 * PS, 60 * PS, 25)
    delays = 38 * PS - 10 * PS * np.exp(-(deltas / (18 * PS)) ** 2)
    return MisCurve.from_arrays(deltas, delays, "falling")


class TestFinitePointModel:
    def test_fit_and_interpolate(self, falling_curve):
        model = FinitePointMisModel.fit(falling_curve, num_points=5)
        assert model.direction == "falling"
        assert len(model.knots) == 5
        # Exact at the support points.
        for knot, delay in zip(model.knots, model.delays):
            assert model.delay(knot) == pytest.approx(delay)

    def test_plateaus_outside_window(self, falling_curve):
        model = FinitePointMisModel.fit(falling_curve)
        assert model.delay(-1e-9) == pytest.approx(
            falling_curve.delays[0])
        assert model.delay(1e-9) == pytest.approx(
            falling_curve.delays[-1])

    def test_reasonable_accuracy_on_smooth_curve(self, falling_curve):
        model = FinitePointMisModel.fit(falling_curve, num_points=9)
        fitted = model.curve(falling_curve.deltas)
        assert fitted.mean_abs_difference(falling_curve) < 1.5 * PS

    def test_more_points_more_accurate(self, falling_curve):
        coarse = FinitePointMisModel.fit(falling_curve, num_points=3)
        fine = FinitePointMisModel.fit(falling_curve, num_points=13)
        err_coarse = coarse.curve(falling_curve.deltas) \
            .mean_abs_difference(falling_curve)
        err_fine = fine.curve(falling_curve.deltas) \
            .mean_abs_difference(falling_curve)
        assert err_fine < err_coarse

    def test_too_few_points(self, falling_curve):
        with pytest.raises(ParameterError):
            FinitePointMisModel.fit(falling_curve, num_points=1)

    def test_more_points_than_samples(self):
        curve = MisCurve.from_arrays([0.0, 1e-12], [1e-12, 1e-12],
                                     "falling")
        with pytest.raises(FittingError):
            FinitePointMisModel.fit(curve, num_points=5)


class TestQuadraticModel:
    def test_fit_basics(self, falling_curve):
        model = QuadraticMisModel.fit(falling_curve, window=30 * PS)
        assert model.window == pytest.approx(30 * PS)
        a, _b, _c = model.coefficients
        assert a > 0.0  # opens upward for a speed-up valley

    def test_plateaus(self, falling_curve):
        model = QuadraticMisModel.fit(falling_curve, window=30 * PS)
        assert model.delay(-50 * PS) == pytest.approx(
            falling_curve.delays[0])
        assert model.delay(50 * PS) == pytest.approx(
            falling_curve.delays[-1])

    def test_captures_valley(self, falling_curve):
        model = QuadraticMisModel.fit(falling_curve, window=25 * PS)
        assert model.delay(0.0) == pytest.approx(28 * PS, abs=1.5 * PS)

    def test_default_window(self, falling_curve):
        model = QuadraticMisModel.fit(falling_curve)
        assert model.window == pytest.approx(30 * PS)

    def test_bad_window(self, falling_curve):
        with pytest.raises(ParameterError):
            QuadraticMisModel.fit(falling_curve, window=-1.0)

    def test_window_without_samples(self, falling_curve):
        with pytest.raises(FittingError):
            QuadraticMisModel.fit(falling_curve, window=1e-15)

    def test_curve_evaluation(self, falling_curve):
        model = QuadraticMisModel.fit(falling_curve)
        fitted = model.curve(falling_curve.deltas)
        assert len(fitted) == len(falling_curve)
        assert fitted.direction == "falling"


class TestVectorizedEvaluation:
    """Array evaluation must agree with the scalar delay() methods."""

    def test_finite_point_evaluate(self, falling_curve):
        model = FinitePointMisModel.fit(falling_curve, num_points=5)
        grid = np.linspace(-70 * PS, 70 * PS, 57)
        batch = model.evaluate(grid)
        assert batch.shape == grid.shape
        for delta, value in zip(grid, batch):
            assert value == model.delay(float(delta))

    def test_quadratic_evaluate(self, falling_curve):
        model = QuadraticMisModel.fit(falling_curve, window=30 * PS)
        grid = np.linspace(-70 * PS, 70 * PS, 57)
        batch = model.evaluate(grid)
        for delta, value in zip(grid, batch):
            assert value == model.delay(float(delta))
