"""Persistent cross-process cache: store contract and wiring.

Covers the :mod:`repro.cache` store itself (content keys, atomic
round trips, miss tolerance), its activation precedence
(``configure`` > ``REPRO_CACHE_DIR``), the eigendecomposition
persistence of :class:`~repro.core.multi_input.CompiledNorKernel`,
characterization-table persistence, and the ISSUE 6 acceptance
criterion: a second *process* sharing the same cache root completes
a NOR4 characterization job measurably faster, via the asserted
cache-hit path.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import cache
from repro.api import Session, VersionRequest
from repro.core.multi_input import (GeneralizedNorParameters,
                                    compiled_nor_kernel,
                                    generalized_model,
                                    paper_generalized)
from repro.library.characterize import (CharacterizationJob,
                                        characterize_gate)

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(autouse=True)
def _clean_cache_state(monkeypatch):
    """Every test starts unconfigured and without the env override."""
    monkeypatch.delenv(cache.ENV_VAR, raising=False)
    cache.unconfigure()
    yield
    cache.unconfigure()


def _fresh_params(seed: float) -> GeneralizedNorParameters:
    """A parameter set no other test shares, so the process-local
    ``generalized_model`` memo cannot mask store interactions."""
    return GeneralizedNorParameters(
        r_pullup=(6.0e4 + seed, 6.1e4, 6.2e4),
        r_pulldown=(5.9e4, 6.0e4 + seed, 6.1e4),
        c_internal=(7.7e-17, 7.8e-17),
        co=3.0e-16, vdd=1.2)


class TestContentKey:
    def test_order_independent(self):
        a = cache.content_key({"x": 1, "y": [1.5, 2.5]})
        b = cache.content_key({"y": [1.5, 2.5], "x": 1})
        assert a == b and len(a) == 64

    def test_content_sensitive(self):
        a = cache.content_key({"kind": "t", "v": 1.0})
        b = cache.content_key({"kind": "t", "v": 1.0000001})
        assert a != b


class TestDiskCache:
    def test_json_round_trip(self, tmp_path):
        store = cache.DiskCache(tmp_path)
        key = cache.content_key({"k": 1})
        assert store.get_json(key) is None
        store.put_json(key, {"delays": [1.0, 2.0], "gate": "nor2"})
        assert store.get_json(key) == {"delays": [1.0, 2.0],
                                       "gate": "nor2"}
        assert store.hits == 1 and store.misses == 1
        assert store.writes == 1 and len(store) == 1

    def test_array_round_trip(self, tmp_path):
        store = cache.DiskCache(tmp_path)
        key = cache.content_key({"k": "arrays"})
        bundle = {"rates": np.linspace(-1.0, 0.0, 8),
                  "vectors": np.eye(3)}
        store.put_arrays(key, bundle)
        loaded = store.get_arrays(key)
        assert set(loaded) == {"rates", "vectors"}
        assert np.array_equal(loaded["rates"], bundle["rates"])
        assert np.array_equal(loaded["vectors"], bundle["vectors"])

    def test_corrupt_entry_is_a_miss_and_counted(self, tmp_path):
        store = cache.DiskCache(tmp_path)
        key = cache.content_key({"k": 2})
        store.put_json(key, {"fine": True})
        path = store._path(key, ".json")
        path.write_text("{ truncated")
        assert store.get_json(key) is None
        assert store.misses == 1
        assert store.corrupt == 1  # visible, not silent
        # And recoverable: the writer just overwrites it.
        store.put_json(key, {"fine": True})
        assert store.get_json(key) == {"fine": True}
        assert store.corrupt == 1

    def test_corrupt_array_entry_is_a_miss_and_counted(self,
                                                       tmp_path):
        store = cache.DiskCache(tmp_path)
        key = cache.content_key({"k": "bad-npz"})
        store.put_arrays(key, {"values": np.arange(4.0)})
        path = store._path(key, ".npz")
        # Truncate the zip container: zipfile.BadZipFile territory.
        path.write_bytes(path.read_bytes()[:20])
        assert store.get_arrays(key) is None
        assert store.misses == 1
        assert store.corrupt == 1
        # Not-a-zip-at-all is also a counted miss, not a crash.
        path.write_bytes(b"not an archive")
        assert store.get_arrays(key) is None
        assert store.corrupt == 2

    def test_plain_misses_are_not_corrupt(self, tmp_path):
        store = cache.DiskCache(tmp_path)
        assert store.get_json(cache.content_key({"k": 4})) is None
        assert store.get_arrays(cache.content_key({"k": 5})) is None
        assert store.misses == 2
        assert store.corrupt == 0

    def test_clear(self, tmp_path):
        store = cache.DiskCache(tmp_path)
        for index in range(3):
            store.put_json(cache.content_key({"i": index}),
                           {"i": index})
        assert len(store) == 3
        assert store.clear() == 3
        assert len(store) == 0

    def test_schema_versioned_layout(self, tmp_path):
        store = cache.DiskCache(tmp_path)
        key = cache.content_key({"k": 3})
        store.put_json(key, {})
        expected = (tmp_path / f"v{cache.SCHEMA_VERSION}" / key[:2]
                    / f"{key}.json")
        assert expected.is_file()

    def test_info(self, tmp_path):
        store = cache.DiskCache(tmp_path)
        info = store.info()
        assert info == {"dir": str(tmp_path), "hits": 0, "misses": 0,
                        "writes": 0, "corrupt": 0, "entries": 0}


class TestActivation:
    def test_off_by_default(self):
        assert cache.get_store() is None

    def test_env_activates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.ENV_VAR, str(tmp_path))
        store = cache.get_store()
        assert store is not None
        assert store.root == Path(tmp_path)
        # Same root -> same instance, so counters aggregate.
        assert cache.get_store() is store

    def test_configure_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.ENV_VAR, str(tmp_path / "env"))
        configured = cache.configure(tmp_path / "explicit")
        assert cache.get_store() is configured
        assert configured.root == tmp_path / "explicit"

    def test_configure_none_disables_despite_env(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv(cache.ENV_VAR, str(tmp_path))
        assert cache.configure(None) is None
        assert cache.get_store() is None
        cache.unconfigure()
        assert cache.get_store() is not None


class TestEigPersistence:
    def test_kernel_round_trips_eigendecomposition(self, tmp_path):
        store = cache.configure(tmp_path)
        params = _fresh_params(1.0)
        kernel = compiled_nor_kernel(params)
        assert store.writes == 1 and store.hits == 0
        # Drop the in-process model memo: the next build must come
        # from disk, not from recomputed eigensystems.
        generalized_model.cache_clear()
        reloaded = compiled_nor_kernel(params)
        assert store.hits == 1 and store.writes == 1
        assert np.array_equal(kernel._rates, reloaded._rates)
        assert np.array_equal(kernel._vectors, reloaded._vectors)
        # The loaded bundle also seeds the scalar solver's eig memo.
        assert len(reloaded._model._eig_cache) == (
            1 << params.num_inputs)

    def test_loaded_kernel_evaluates_identically(self, tmp_path):
        cache.configure(tmp_path)
        params = _fresh_params(2.0)
        rng = np.random.default_rng(9)
        deltas = rng.uniform(-3e-10, 3e-10, size=(40, 2))
        cold = compiled_nor_kernel(params).evaluate(deltas, "falling")
        generalized_model.cache_clear()
        warm = compiled_nor_kernel(params).evaluate(deltas, "falling")
        assert np.array_equal(cold, warm)


class TestCharacterizationPersistence:
    def _job(self) -> CharacterizationJob:
        deltas = tuple(np.linspace(-1.0e-10, 1.0e-10, 7))
        return CharacterizationJob("nor4_cached",
                                   paper_generalized(4), "nor4",
                                   deltas=deltas)

    def test_second_call_hits(self, tmp_path):
        store = cache.configure(tmp_path)
        table = characterize_gate(self._job())
        writes = store.writes
        assert writes >= 1
        again = characterize_gate(self._job())
        assert store.writes == writes  # nothing recomputed
        assert store.hits >= 1
        assert again.to_dict() == table.to_dict()

    def test_second_process_is_faster_via_cache_hit(self, tmp_path):
        """ISSUE 6 acceptance: cold vs warm across real processes."""
        script = (
            "import json, time\n"
            "import numpy as np\n"
            "from repro import cache\n"
            "from repro.core.multi_input import paper_generalized\n"
            "from repro.library.characterize import (\n"
            "    CharacterizationJob, characterize_gate)\n"
            "deltas = tuple(np.linspace(-1.0e-10, 1.0e-10, 7))\n"
            "job = CharacterizationJob('nor4_cached',\n"
            "                          paper_generalized(4), 'nor4',\n"
            "                          deltas=deltas)\n"
            "start = time.perf_counter()\n"
            "table = characterize_gate(job)\n"
            "elapsed = time.perf_counter() - start\n"
            "payload = dict(cache.get_store().info(),\n"
            "               elapsed=elapsed,\n"
            "               probe=table.falling.delays_at(\n"
            "                   np.zeros((1, 3)))[0])\n"
            "print(json.dumps(payload))\n")
        env = dict(os.environ, PYTHONPATH=SRC_DIR,
                   REPRO_CACHE_DIR=str(tmp_path))
        env.pop("REPRO_PARALLEL_PROCESSES", None)

        def run() -> dict:
            result = subprocess.run([sys.executable, "-c", script],
                                    capture_output=True, text=True,
                                    env=env, check=True, timeout=120)
            return json.loads(result.stdout.strip().splitlines()[-1])

        cold = run()
        warm = run()
        assert cold["hits"] == 0 and cold["writes"] >= 1
        assert warm["hits"] >= 1 and warm["writes"] == 0
        assert warm["probe"] == cold["probe"]
        assert warm["elapsed"] < cold["elapsed"]


class TestSessionWiring:
    def test_cache_dir_configures_store(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        store = cache.get_store()
        assert store is not None and store.root == Path(tmp_path)
        info = session.cache_info()
        assert info["disk"]["dir"] == str(tmp_path)
        assert set(info["disk"]) == {"dir", "hits", "misses",
                                     "writes", "corrupt", "entries"}

    def test_corrupt_counter_surfaces_in_cache_info(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        store = cache.get_store()
        key = cache.content_key({"k": "session-corrupt"})
        store.put_json(key, {"fine": True})
        store._path(key, ".json").write_text("{ nope")
        assert store.get_json(key) is None
        assert session.cache_info()["disk"]["corrupt"] == 1

    def test_cache_info_has_no_disk_entry_when_off(self):
        assert "disk" not in Session().cache_info()

    def test_version_reports_cache(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        report = session.run(VersionRequest()).cache
        assert report["enabled"] is True
        assert report["dir"] == str(tmp_path)
        assert {"hits", "misses", "writes",
                "entries"} <= set(report)

    def test_version_reports_disabled_without_root(self):
        report = Session().run(VersionRequest()).cache
        assert report == {"enabled": False}

    def test_version_json_envelope_carries_cache(self, tmp_path):
        session = Session(cache_dir=str(tmp_path))
        payload = json.loads(session.run(VersionRequest()).to_json())
        assert payload["data"]["cache"]["enabled"] is True
