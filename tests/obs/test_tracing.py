"""Behavior of the hierarchical span tracer (:mod:`repro.obs.trace`).

Parentage, thread isolation, JSONL round-trips, process-wide
activation precedence, and — load-bearing for the instrumented hot
paths — the zero-spans-while-disabled guarantee.
"""

import json
import threading

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_activation(monkeypatch):
    """Each test starts (and ends) with tracing fully disabled."""
    monkeypatch.delenv(trace.ENV_VAR, raising=False)
    trace.unconfigure()
    yield
    trace.unconfigure()


class TestSpans:
    def test_span_records_name_duration_and_attrs(self):
        tracer = trace.Tracer()
        with tracer.span("work", n=3) as live:
            live.set(rows=7)
        (record,) = tracer.records()
        assert record["name"] == "work"
        assert record["attrs"] == {"n": 3, "rows": 7}
        assert record["dur_s"] >= 0.0
        assert record["ts"] > 0.0

    def test_nested_spans_record_parentage(self):
        tracer = trace.Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        inner, middle, outer = tracer.records()
        assert [r["name"] for r in (inner, middle, outer)] \
            == ["inner", "middle", "outer"]
        assert outer["parent"] is None
        assert middle["parent"] == outer["id"]
        assert inner["parent"] == middle["id"]
        assert len({r["id"] for r in (inner, middle, outer)}) == 3

    def test_siblings_share_a_parent(self):
        tracer = trace.Tracer()
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        first, second, parent = tracer.records()
        assert first["parent"] == parent["id"]
        assert second["parent"] == parent["id"]

    def test_exception_is_recorded_and_propagates(self):
        tracer = trace.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (record,) = tracer.records()
        assert record["attrs"]["error"] == "RuntimeError"

    def test_buffer_is_bounded(self):
        tracer = trace.Tracer(buffer=4)
        for index in range(10):
            with tracer.span("s", index=index):
                pass
        records = tracer.records()
        assert len(records) == 4
        assert [r["attrs"]["index"] for r in records] == [6, 7, 8, 9]

    def test_record_appends_a_backdated_root_span(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        tracer = trace.Tracer(sink=sink)
        with tracer.span("live"):
            appended = tracer.record("cli.startup", 123.5, 0.75,
                                     phase="import")
        assert appended["parent"] is None
        assert appended["ts"] == 123.5
        assert appended["dur_s"] == 0.75
        assert appended["attrs"] == {"phase": "import"}
        startup, live = tracer.records()
        assert startup["name"] == "cli.startup"
        assert live["parent"] is None  # record() never nests
        assert len({startup["id"], live["id"]}) == 2
        names = {r["name"] for r in trace.read_jsonl(sink)}
        assert names == {"cli.startup", "live"}

    def test_capture_collects_only_the_block(self):
        tracer = trace.Tracer()
        with tracer.span("before"):
            pass
        with tracer.capture() as captured:
            with tracer.span("during"):
                pass
        with tracer.span("after"):
            pass
        assert [r["name"] for r in captured] == ["during"]


class TestThreadIsolation:
    def test_concurrent_threads_never_cross_parent(self):
        """Spans opened on different threads must not adopt each
        other as parents (the threaded-server case)."""
        tracer = trace.Tracer()
        barrier = threading.Barrier(4)

        def worker(tag):
            with tracer.span("outer", tag=tag):
                barrier.wait(timeout=10)
                with tracer.span("inner", tag=tag):
                    pass

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        records = tracer.records()
        assert len(records) == 8
        outers = {r["attrs"]["tag"]: r for r in records
                  if r["name"] == "outer"}
        for record in records:
            if record["name"] != "inner":
                continue
            # Each inner's parent is its own thread's outer.
            assert record["parent"] \
                == outers[record["attrs"]["tag"]]["id"]
        for record in outers.values():
            assert record["parent"] is None

    def test_parallel_engine_workers_append_to_the_same_sink(
            self, monkeypatch, tmp_path):
        """Forked shard workers inherit ``REPRO_TRACE`` and append
        their own spans (tagged with their own pid) to the sink —
        without corrupting the parent's lines."""
        import os

        import numpy as np

        from repro.core.parameters import PAPER_TABLE_I
        from repro.engine import ParallelEngine

        path = tmp_path / "parallel.jsonl"
        monkeypatch.setenv(trace.ENV_VAR, f"jsonl:{path}")
        engine = ParallelEngine(processes=2, min_shard_points=8)
        try:
            deltas = np.linspace(-4e-11, 4e-11, 64)
            engine.delays_falling(PAPER_TABLE_I, deltas)
        finally:
            engine.close()
        records = trace.read_jsonl(path)
        names = {record["name"] for record in records}
        assert "engine.delays" in names  # the parent's entry point
        shards = [record for record in records
                  if record["name"] == "engine.parallel.shard"]
        assert len(shards) >= 2
        # Span ids are "<pid>-<thread>-<seq>": shard spans come from
        # worker processes, not the parent, and never collide.
        pids = {record["id"].split("-")[0] for record in shards}
        assert pids and f"{os.getpid():x}" not in pids
        assert len({record["id"] for record in shards}) == len(shards)

    def test_capture_is_per_thread(self):
        tracer = trace.Tracer()
        done = threading.Event()

        def other():
            with tracer.span("other-thread"):
                pass
            done.set()

        with tracer.capture() as captured:
            thread = threading.Thread(target=other)
            thread.start()
            assert done.wait(10)
            thread.join(10)
            with tracer.span("mine"):
                pass
        assert [r["name"] for r in captured] == ["mine"]


class TestJsonl:
    def test_export_round_trip(self, tmp_path):
        tracer = trace.Tracer()
        with tracer.span("a", n=1):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        assert trace.read_jsonl(path) == tracer.records()

    def test_sink_appends_as_spans_finish(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        tracer = trace.Tracer(sink=str(path))
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        tracer.flush()
        names = [r["name"] for r in trace.read_jsonl(path)]
        assert names == ["first", "second"]

    def test_read_jsonl_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        record = {"name": "ok", "id": "1", "parent": None,
                  "ts": 0.0, "dur_s": 0.0, "attrs": {}}
        path.write_text(json.dumps(record) + "\n"
                        + '{"name": "torn", "i')
        assert trace.read_jsonl(path) == [record]


class TestActivation:
    def test_disabled_records_zero_spans(self):
        """The whole point of the no-op path: nothing anywhere."""
        assert trace.active_tracer() is None
        assert not trace.enabled()
        noop = trace.span("anything", n=1)
        with noop as live:
            live.set(more=2)
        assert noop is trace.span("something-else")  # shared singleton

    def test_configure_mem_enables_module_level_span(self):
        tracer = trace.configure("mem")
        assert trace.enabled()
        with trace.span("configured"):
            pass
        assert [r["name"] for r in tracer.records()] == ["configured"]

    def test_environment_activates_jsonl_sink(self, monkeypatch,
                                              tmp_path):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(trace.ENV_VAR, f"jsonl:{path}")
        tracer = trace.active_tracer()
        assert tracer is not None and tracer.sink == str(path)
        with trace.span("from-env"):
            pass
        assert [r["name"] for r in trace.read_jsonl(path)] \
            == ["from-env"]

    def test_configure_none_beats_environment(self, monkeypatch):
        monkeypatch.setenv(trace.ENV_VAR, "mem")
        assert trace.enabled()
        trace.configure(None)
        assert not trace.enabled()
        trace.unconfigure()  # environment rules again
        assert trace.enabled()

    def test_configure_accepts_tracer_instance(self):
        mine = trace.Tracer()
        assert trace.configure(mine) is mine
        assert trace.active_tracer() is mine
