"""Behavior of the metrics registry (:mod:`repro.obs.metrics`).

Instrument semantics, label handling, the nearest-rank percentile
edge cases the server's p50/p99 report depends on, and the Prometheus
text exposition (rendered and strictly re-validated).
"""

import math
import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (MetricsRegistry, percentile,
                               render_prometheus,
                               validate_exposition)


class TestPercentile:
    def test_empty_samples_raise(self):
        with pytest.raises(ValueError, match="no samples"):
            percentile([], 50.0)

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_q0_is_min_and_q100_is_max(self):
        samples = [5.0, 1.0, 9.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 100.0) == 9.0

    def test_nearest_rank_rounds_up(self):
        samples = list(range(1, 201))  # 1..200
        assert percentile(samples, 1.0) == 2  # ceil(200*0.01) = 2
        assert percentile(samples, 50.0) == 100
        assert percentile(samples, 99.0) == 198
        assert percentile(samples, 99.9) == 200

    def test_out_of_range_and_nan_raise(self):
        for q in (-1.0, 100.1, math.nan):
            with pytest.raises(ValueError, match=r"\[0, 100\]"):
                percentile([1.0], q)

    def test_does_not_mutate_input(self):
        samples = [3.0, 1.0, 2.0]
        percentile(samples, 50.0)
        assert samples == [3.0, 1.0, 2.0]


class TestInstruments:
    def test_counter_increments_and_rejects_decrease(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_buckets_sum_count(self):
        histogram = MetricsRegistry().histogram(
            "h_seconds", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.5, 10.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        # Cumulative counts per upper bound.
        assert snap["buckets"] == {1.0: 1, 2.0: 3, 5.0: 3}
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(13.5)

    def test_histogram_window_percentiles(self):
        histogram = MetricsRegistry().histogram(
            "h_seconds", window=3)
        assert histogram.percentile(50.0) is None  # empty: no data
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.samples() == [2.0, 3.0, 4.0]  # bounded ring
        assert histogram.percentile(50.0) == 3.0
        assert histogram.count == 4  # cumulative count keeps going

    def test_same_name_same_labels_is_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("c_total", labels={"x": "1", "y": "2"})
        b = reg.counter("c_total", labels={"y": "2", "x": "1"})
        c = reg.counter("c_total", labels={"x": "other"})
        assert a is b
        assert a is not c

    def test_kind_conflicts_and_bad_names_raise(self):
        reg = MetricsRegistry()
        reg.counter("taken_total")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("taken_total")
        with pytest.raises(ValueError, match="bad metric name"):
            reg.counter("0bad")
        with pytest.raises(ValueError, match="bad label name"):
            reg.counter("ok_total", labels={"0bad": "v"})

    def test_concurrent_increments_do_not_lose_counts(self):
        counter = MetricsRegistry().counter("c_total")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert counter.value == 8000


class TestRendering:
    def test_render_is_valid_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total", "a counter",
                    labels={"kind": "x"}).inc(3)
        reg.gauge("repro_g", "a gauge").set(1.5)
        reg.histogram("repro_h_seconds", "a histogram",
                      buckets=(0.1, 1.0)).observe(0.5)
        text = reg.render()
        counts = validate_exposition(text)
        assert counts["repro_c_total"] == 1
        assert counts["repro_g"] == 1
        # 2 finite buckets + +Inf + sum + count.
        assert counts["repro_h_seconds"] == 5
        assert '# TYPE repro_h_seconds histogram' in text
        assert 'le="+Inf"' in text
        assert 'kind="x"' in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels={"p": 'a"b\\c\nd'}).inc()
        text = reg.render()
        validate_exposition(text)
        assert r'p="a\"b\\c\nd"' in text

    def test_described_family_renders_before_first_increment(self):
        reg = MetricsRegistry()
        reg.describe("repro_future_total", "counter", "not yet used")
        text = reg.render()
        assert "# TYPE repro_future_total counter" in text
        validate_exposition(text)

    def test_render_prometheus_merges_registries(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("one_total").inc()
        second.counter("two_total").inc()
        counts = validate_exposition(render_prometheus(first, second))
        assert set(counts) == {"one_total", "two_total"}

    def test_validator_rejects_malformed_documents(self):
        with pytest.raises(ValueError, match="no TYPE header"):
            validate_exposition("untyped_metric 1\n")
        with pytest.raises(ValueError, match="bad sample"):
            validate_exposition("# TYPE x counter\nx one\n")
        with pytest.raises(ValueError, match="bad label pair"):
            validate_exposition('# TYPE x counter\nx{a=b} 1\n')

    def test_global_registry_is_shared(self):
        assert metrics.registry() is metrics.registry()
        assert metrics.registry() is metrics.REGISTRY
