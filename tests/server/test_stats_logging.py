"""Request counters, latency percentiles, structured logging."""

import io
import json

import pytest

from repro._version import __version__
from repro.api import DelayRequest, VersionRequest
from repro.server import ServerStats, percentile


class TestPercentile:
    def test_nearest_rank_values(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 50.0) == 50
        assert percentile(samples, 99.0) == 99
        assert percentile(samples, 100.0) == 100
        assert percentile([7.0], 50.0) == 7.0

    def test_unsorted_input_is_fine(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_zero_is_the_minimum(self):
        assert percentile([5.0, 1.0, 9.0], 0.0) == 1.0

    def test_empty_and_out_of_range_raise(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestServerStats:
    def test_snapshot_aggregates(self):
        stats = ServerStats()
        stats.record("/v1/run", 200, 0.010, timed_out=False)
        stats.record("/v1/run", 400, 0.020, timed_out=False)
        stats.record("/v1/stats", 200, 0.001, timed_out=False)
        snapshot = stats.snapshot()
        assert snapshot["requests"]["total"] == 3
        assert snapshot["requests"]["by_route"]["/v1/run"] == 2
        assert snapshot["requests"]["by_status_class"] == {"2xx": 2,
                                                           "4xx": 1}
        assert snapshot["requests"]["timeouts"] == 0
        latency = snapshot["latency_ms"]
        assert latency["count"] == 3
        assert latency["p50"] <= latency["p99"] <= latency["max"]

    def test_empty_stats_have_no_latency_block(self):
        snapshot = ServerStats().snapshot()
        assert snapshot["requests"]["total"] == 0
        assert snapshot["latency_ms"] is None
        assert snapshot["uptime_s"] >= 0.0


class TestStatsEndpoint:
    def test_stats_reflect_served_requests(self, client):
        client.run(DelayRequest(deltas=((1e-12,),)))
        client.run(VersionRequest())
        client.post("/v1/run", "{broken")
        status, stats = client.get("/v1/stats")
        assert status == 200
        assert stats["version"] == __version__
        assert stats["requests"]["by_route"]["/v1/run"] == 3
        assert stats["requests"]["by_status_class"]["2xx"] >= 2
        assert stats["requests"]["by_status_class"]["4xx"] == 1
        assert stats["latency_ms"]["count"] >= 3
        # The shared session's memo and counters are visible.
        assert stats["session_cache"]["misses"] >= 2

    def test_session_cache_hits_show_up(self, client):
        request = DelayRequest(deltas=((2e-12,),))
        client.run(request)
        client.run(request)
        _, stats = client.get("/v1/stats")
        assert stats["session_cache"]["hits"] >= 1


class TestRequestLog:
    def test_structured_lines_per_request(self, make_server,
                                          make_client):
        stream = io.StringIO()
        server = make_server(log_stream=stream)
        client = make_client(server)
        client.run(VersionRequest())
        client.get("/v1/health")
        client.post("/v1/run", "{broken")
        lines = [json.loads(line) for line in
                 stream.getvalue().splitlines()]
        assert len(lines) == 3
        for entry in lines:
            assert {"ts", "seq", "method", "path", "route", "status",
                    "ms"} <= set(entry)
        sequences = [entry["seq"] for entry in lines]
        assert sequences == sorted(sequences)
        assert [entry["status"] for entry in lines] == [200, 200, 400]
        assert lines[0]["method"] == "POST"
        assert lines[1]["route"] == "/v1/health"

    def test_no_stream_means_no_logging(self, client):
        # The default fixture server has log_stream=None; serving
        # must not fail on the disabled logger.
        status, _ = client.run(VersionRequest())
        assert status == 200
