"""Property: HTTP responses are byte-identical to direct dispatch.

For any sequence of valid (deterministic) request envelopes, the body
``POST /v1/run`` returns must equal — byte for byte — what an
identically-bound :class:`repro.api.Session` returns from
``run_json`` directly.  The HTTP layer is a transport, not a
transform.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import (DelayRequest, DescribeRequest, Session,
                       VersionRequest)

# Deterministic request kinds only: sweep/STA/experiment results
# embed wall-clock timings, which legitimately differ run to run.
_PS = 1e-12

_delays = st.builds(
    DelayRequest,
    direction=st.sampled_from(["falling", "rising"]),
    gate=st.just("nor2"),
    deltas=st.lists(
        st.tuples(st.floats(min_value=-80.0, max_value=80.0,
                            allow_nan=False)
                  .map(lambda ps: round(ps, 3) * _PS)),
        min_size=1, max_size=4).map(tuple),
    vn_init=st.sampled_from([0.0, 0.35, 0.8]))

_requests = st.one_of(
    st.just(VersionRequest()),
    st.just(DescribeRequest()),
    _delays)


@pytest.fixture(scope="module")
def running_server(tmp_path_factory):
    from repro.server import ReproServer
    server = ReproServer(
        port=0, job_dir=tmp_path_factory.mktemp("jobs"))
    server.start()
    yield server
    server.stop(drain=False, timeout=10.0)


@pytest.fixture(scope="module")
def twin_session(running_server):
    """A separate session with identical bindings.

    Version/describe results embed the process-wide persistent-cache
    counters at first-dispatch time; priming both memos back to back
    (before any delay evaluation can move those counters) keeps the
    two sessions byte-comparable for the whole module.
    """
    twin = Session()  # same default bindings as the server
    for request in (VersionRequest(), DescribeRequest()):
        envelope = request.to_json()
        running_server.session.run_json(envelope)
        twin.run_json(envelope)
    return twin


@given(sequence=st.lists(_requests, min_size=1, max_size=4))
def test_http_equals_run_json_byte_for_byte(running_server,
                                            twin_session, sequence):
    import http.client
    connection = http.client.HTTPConnection(
        running_server.host, running_server.port, timeout=30)
    try:
        for request in sequence:
            envelope = request.to_json()
            connection.request("POST", "/v1/run", body=envelope)
            response = connection.getresponse()
            body = response.read()
            assert response.status == 200
            assert body == twin_session.run_json(envelope).to_json() \
                .encode("utf-8")
    finally:
        connection.close()


@given(gate=st.sampled_from(["nor3", "nor4"]),
       offsets=st.lists(
           st.floats(min_value=-40.0, max_value=40.0,
                     allow_nan=False).map(lambda ps: round(ps, 2)),
           min_size=1, max_size=3))
def test_http_equals_run_json_for_n_input_gates(running_server,
                                                twin_session, gate,
                                                offsets):
    width = int(gate[len("nor"):])
    deltas = tuple(
        tuple(offset * _PS * (axis + 1)
              for axis in range(width - 1))
        for offset in offsets)
    request = DelayRequest(gate=gate, deltas=deltas)
    import http.client
    connection = http.client.HTTPConnection(
        running_server.host, running_server.port, timeout=30)
    try:
        connection.request("POST", "/v1/run", body=request.to_json())
        response = connection.getresponse()
        body = response.read()
    finally:
        connection.close()
    assert response.status == 200
    assert body == twin_session.run_json(
        request.to_json()).to_json().encode("utf-8")
