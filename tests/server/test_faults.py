"""Fault injection: bad inputs, handler bugs, timeouts, disconnects.

Every failure mode must come back as a clean JSON error envelope with
the right 4xx/5xx status — and, crucially, the server must keep
serving afterwards.  Each test therefore ends by proving the next
request still succeeds.
"""

import json
import socket
import time

import pytest

from repro.api import DelayRequest, VersionRequest
from repro.api.handlers import HANDLERS
from repro.server import JobStore


def _alive(client) -> None:
    """The server must still answer after whatever just happened."""
    status, payload = client.get("/v1/health")
    assert status == 200 and payload["status"] == "ok"


class TestBadBodies:
    def test_malformed_json_is_400(self, client):
        status, payload = client.post("/v1/run", "{not json")
        assert status == 400
        assert payload["kind"] == "error"
        assert payload["data"]["status"] == 400
        _alive(client)

    def test_non_envelope_json_is_400(self, client):
        status, payload = client.post("/v1/run", "[1, 2, 3]")
        assert status == 400
        assert payload["kind"] == "error"
        _alive(client)

    def test_unknown_kind_is_400_with_request_kind(self, client):
        body = json.dumps({"schema": "repro.api/1", "kind": "nope",
                           "data": {}})
        status, payload = client.post("/v1/run", body)
        assert status == 400
        assert payload["data"]["request_kind"] == "nope"
        _alive(client)

    def test_posting_a_result_envelope_is_400(self, client):
        from repro.api import VersionResult
        status, payload = client.post(
            "/v1/run", VersionResult(version="1").to_json())
        assert status == 400
        assert "is a result" in payload["data"]["error"]
        _alive(client)

    def test_invalid_utf8_is_400(self, client):
        status, _, body = client.request("POST", "/v1/run",
                                         body=b"\xff\xfe{}")
        assert status == 400
        assert json.loads(body)["kind"] == "error"
        _alive(client)

    def test_missing_content_length_is_411(self, server, make_client):
        with socket.create_connection(
                (server.host, server.port), timeout=10) as sock:
            sock.sendall(b"POST /v1/run HTTP/1.1\r\n"
                         b"Host: test\r\n\r\n")
            reply = sock.recv(4096).decode("utf-8", "replace")
        assert reply.startswith("HTTP/1.1 411")
        assert '"kind": "error"' in reply
        _alive(make_client(server))

    def test_oversized_body_is_413(self, make_server, make_client):
        server = make_server(max_body=1024)
        client = make_client(server)
        status, payload = client.post("/v1/run", "x" * 4096)
        assert status == 413
        assert "exceeds" in payload["data"]["error"]
        _alive(client)

    def test_unknown_endpoint_is_404(self, client):
        status, payload = client.get("/v1/nope")
        assert status == 404
        assert payload["kind"] == "error"
        _alive(client)


class TestHandlerBugs:
    def test_handler_bug_is_500_and_server_survives(self, client,
                                                    monkeypatch):
        def boom(session, request):
            raise RuntimeError("injected handler bug")

        monkeypatch.setitem(HANDLERS, VersionRequest, boom)
        status, payload = client.post("/v1/run",
                                      VersionRequest().to_json())
        assert status == 500
        assert payload["data"]["exception"] == "RuntimeError"
        assert payload["data"]["error"] == "injected handler bug"
        # An unaffected kind still works on the same server.
        status, _ = client.run(DelayRequest(deltas=((1e-12,),)))
        assert status == 200
        _alive(client)

    def test_handler_bug_mid_batch_is_per_line(self, client,
                                               monkeypatch):
        def boom(session, request):
            raise RuntimeError("injected handler bug")

        monkeypatch.setitem(HANDLERS, VersionRequest, boom)
        upload = "\n".join([
            DelayRequest(deltas=((2e-12,),)).to_json(),
            VersionRequest().to_json(),  # the poisoned line
            DelayRequest(deltas=((4e-12,),)).to_json(),
        ]) + "\n"
        _, meta = client.post("/v1/batches", upload)
        final = client.wait_job(meta["id"])
        assert final["status"] == "completed_with_errors"
        assert final["ok"] == 2 and final["errors"] == 1
        records = {record["line"]: record for record in
                   client.server.store.result_records(meta["id"])}
        assert records[1]["status"] == "ok"
        assert records[3]["status"] == "ok"
        assert records[2]["envelope"]["data"]["exception"] \
            == "RuntimeError"
        assert records[2]["envelope"]["data"]["request_kind"] \
            == "version"


class TestTimeouts:
    def test_slow_handler_times_out_with_504(self, make_server,
                                             make_client,
                                             monkeypatch):
        original = HANDLERS[VersionRequest]

        def stall(session, request):
            time.sleep(2.0)
            return original(session, request)

        monkeypatch.setitem(HANDLERS, VersionRequest, stall)
        server = make_server(request_timeout=0.3)
        client = make_client(server)
        start = time.monotonic()
        status, payload = client.post("/v1/run",
                                      VersionRequest().to_json())
        elapsed = time.monotonic() - start
        assert status == 504
        assert payload["data"]["exception"] == "TimeoutError"
        assert payload["data"]["request_kind"] == "version"
        assert elapsed < 1.5  # did not wait out the slow handler
        # The timeout is visible in the counters, and the server
        # still serves fast requests.
        status, _ = client.run(DelayRequest(deltas=((1e-12,),)))
        assert status == 200
        _, stats = client.get("/v1/stats")
        assert stats["requests"]["timeouts"] == 1
        _alive(client)


class TestDisconnects:
    def test_client_vanishing_mid_request_is_survived(
            self, client, server):
        # Claim a large body, send almost none of it, hang up: the
        # handler's read comes up short and its error response hits a
        # closed socket.
        with socket.create_connection(
                (server.host, server.port), timeout=10) as sock:
            sock.sendall(b"POST /v1/run HTTP/1.1\r\n"
                         b"Host: test\r\n"
                         b"Content-Length: 1000000\r\n\r\n{")
        time.sleep(0.1)
        _alive(client)

    def test_disconnect_mid_results_stream_is_survived(
            self, tmp_path, make_server, make_client):
        # A finished job with a multi-megabyte results file, built
        # directly on disk so the test needs no compute.
        job_dir = tmp_path / "jobs"
        store = JobStore(job_dir)
        meta = store.create(VersionRequest().to_json() + "\n")
        filler = "x" * 512
        with open(store.results_path(meta["id"]), "w") as handle:
            for line in range(1, 4097):
                handle.write(json.dumps(
                    {"line": line, "status": "ok",
                     "envelope": {"kind": "version_result",
                                  "filler": filler}}) + "\n")
        meta["status"] = "completed"
        meta["done"] = meta["ok"] = 4096
        store.write_meta(meta)

        server = make_server(job_dir=job_dir)
        client = make_client(server)
        with socket.create_connection(
                (server.host, server.port), timeout=10) as sock:
            sock.sendall(f"GET /v1/batches/{meta['id']}/results "
                         "HTTP/1.1\r\nHost: test\r\n\r\n"
                         .encode("utf-8"))
            sock.recv(1024)  # read a first chunk, then hang up
        # The streaming thread hits the broken pipe; the server
        # must shrug it off and keep serving.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            status, payload = client.get("/v1/health")
            if status == 200:
                break
            time.sleep(0.05)
        assert status == 200 and payload["status"] == "ok"
        status, _ = client.run(DelayRequest(deltas=((1e-12,),)))
        assert status == 200


class TestConstruction:
    def test_bad_server_parameters_are_rejected(self, tmp_path):
        from repro.server import ReproServer
        for kwargs in ({"run_workers": 0}, {"request_timeout": 0.0},
                       {"max_body": 0}):
            with pytest.raises(ValueError):
                ReproServer(job_dir=tmp_path / "jobs", **kwargs)
