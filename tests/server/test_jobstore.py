"""Unit tests for the crash-safe on-disk batch-job store."""

import json

import pytest

from repro.api import DelayRequest, VersionRequest
from repro.server import JOB_SCHEMA_VERSION, JobStore

UPLOAD = (VersionRequest().to_json() + "\n"
          + DelayRequest(deltas=((5e-12,),)).to_json() + "\n")


@pytest.fixture()
def store(tmp_path) -> JobStore:
    return JobStore(tmp_path / "jobs")


class TestIdentity:
    def test_job_id_is_a_content_hash(self):
        first = JobStore.job_id_for(UPLOAD)
        assert first == JobStore.job_id_for(UPLOAD)
        assert first != JobStore.job_id_for(UPLOAD + "{}\n")
        # content_key hex digests double as path components
        assert len(first) == 64 and first.isalnum()

    def test_layout_is_schema_versioned(self, store):
        meta = store.create(UPLOAD)
        directory = store.job_dir(meta["id"])
        assert directory.parts[-3] == f"v{JOB_SCHEMA_VERSION}"
        assert directory.parts[-2] == meta["id"][:2]
        assert (directory / "input.jsonl").read_text() == UPLOAD
        assert (directory / "meta.json").is_file()


class TestCreate:
    def test_create_registers_a_queued_job(self, store):
        meta = store.create(UPLOAD)
        assert meta["status"] == "queued"
        assert meta["total"] == 2
        assert meta["done"] == meta["ok"] == meta["errors"] == 0
        assert meta["created"] <= meta["updated"]

    def test_create_is_idempotent_on_content(self, store):
        first = store.create(UPLOAD)
        # Mutate the stored state; resubmission must return it as-is
        # instead of resetting the job.
        first["status"] = "completed"
        first["done"] = first["ok"] = 2
        store.write_meta(first)
        again = store.create(UPLOAD)
        assert again["id"] == first["id"]
        assert again["status"] == "completed"
        assert again["done"] == 2

    def test_create_rejects_blank_uploads(self, store):
        with pytest.raises(ValueError, match="no request lines"):
            store.create("\n  \n\t\n")

    def test_blank_lines_are_skipped_but_numbering_is_kept(
            self, store):
        text = "\n" + UPLOAD.replace("\n", "\n\n", 1)
        meta = store.create(text)
        assert meta["total"] == 2
        numbers = [number for number, _ in
                   store.input_lines(meta["id"])]
        assert numbers == [2, 4]  # 1-based positions in the file


class TestResults:
    def test_append_and_read_back_round_trip(self, store):
        meta = store.create(UPLOAD)
        records = [{"line": 1, "status": "ok", "envelope": {"a": 1}},
                   {"line": 2, "status": "error",
                    "envelope": {"b": 2}}]
        for record in records:
            store.append_result(meta["id"], record)
        assert store.result_records(meta["id"]) == records
        assert store.completed_lines(meta["id"]) == {
            1: records[0], 2: records[1]}

    def test_no_results_file_reads_as_empty(self, store):
        meta = store.create(UPLOAD)
        assert store.completed_lines(meta["id"]) == {}
        assert store.result_records(meta["id"]) == []

    def test_torn_final_line_is_discarded(self, store):
        meta = store.create(UPLOAD)
        good = {"line": 1, "status": "ok", "envelope": {}}
        store.append_result(meta["id"], good)
        with open(store.results_path(meta["id"]), "a") as handle:
            handle.write('{"line": 2, "status": "o')  # crash torn
        assert store.completed_lines(meta["id"]) == {1: good}

    def test_append_after_torn_line_repairs_the_newline(self, store):
        """A torn fragment must not swallow the next append."""
        meta = store.create(UPLOAD)
        good = {"line": 1, "status": "ok", "envelope": {}}
        store.append_result(meta["id"], good)
        with open(store.results_path(meta["id"]), "a") as handle:
            handle.write('{"line": 2, "status')  # no newline: torn
        replacement = {"line": 2, "status": "ok", "envelope": {}}
        store.append_result(meta["id"], replacement)
        assert store.completed_lines(meta["id"]) == {
            1: good, 2: replacement}

    def test_duplicate_line_records_first_wins(self, store):
        meta = store.create(UPLOAD)
        first = {"line": 1, "status": "ok", "envelope": {"v": 1}}
        duplicate = {"line": 1, "status": "ok", "envelope": {"v": 2}}
        store.append_result(meta["id"], first)
        store.append_result(meta["id"], duplicate)
        assert store.completed_lines(meta["id"])[1] == first


class TestListings:
    def test_jobs_sorted_and_incomplete_filtered(self, store):
        first = store.create(UPLOAD)
        second = store.create(UPLOAD + VersionRequest().to_json()
                              + "\n")
        first["status"] = "completed"
        store.write_meta(first)
        listed = store.jobs()
        assert [meta["id"] for meta in listed] \
            == [first["id"], second["id"]]
        assert [meta["id"] for meta in store.incomplete()] \
            == [second["id"]]

    def test_unknown_or_corrupt_meta_is_none(self, store):
        assert store.meta("0" * 64) is None
        meta = store.create(UPLOAD)
        (store.job_dir(meta["id"]) / "meta.json").write_text("{nope")
        assert store.meta(meta["id"]) is None
        assert store.jobs() == []  # broken entries are skipped

    def test_meta_writes_are_atomic_no_temp_residue(self, store):
        meta = store.create(UPLOAD)
        for _ in range(5):
            store.write_meta(meta)
        leftovers = [path for path in
                     store.job_dir(meta["id"]).iterdir()
                     if path.name.startswith(".tmp-")]
        assert leftovers == []
        stored = json.loads(
            (store.job_dir(meta["id"]) / "meta.json").read_text())
        assert stored["id"] == meta["id"]
