"""Shared fixtures for the HTTP-service tests.

The central fixture is an **in-process** :class:`repro.server.
ReproServer` bound to a random free port (``port=0``) with its job
store under the test's ``tmp_path``, torn down unconditionally after
the test.  A small :class:`Client` helper talks real HTTP to it
through :mod:`http.client` — one fresh connection per call, so tests
never depend on keep-alive state.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.server import ReproServer


class Client:
    """Minimal HTTP test client (fresh connection per request)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    def request(self, method: str, path: str, body=None,
                headers=None):
        """One request; returns ``(status, headers, body_bytes)``."""
        if isinstance(body, str):
            body = body.encode("utf-8")
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=30)
        try:
            connection.request(method, path, body=body,
                               headers=headers or {})
            response = connection.getresponse()
            return (response.status, dict(response.getheaders()),
                    response.read())
        finally:
            connection.close()

    def get(self, path: str):
        """GET; returns ``(status, decoded JSON body)``."""
        status, _, body = self.request("GET", path)
        return status, json.loads(body)

    def post(self, path: str, body):
        """POST; returns ``(status, decoded JSON body)``."""
        status, _, body = self.request("POST", path, body=body)
        return status, json.loads(body)

    def run(self, record):
        """POST a request object to ``/v1/run``; returns
        ``(status, raw bytes)``."""
        status, _, body = self.request("POST", "/v1/run",
                                       body=record.to_json())
        return status, body

    def wait_job(self, job_id: str, timeout: float = 30.0) -> dict:
        """Poll a job until it reaches a terminal status."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, meta = self.get(f"/v1/batches/{job_id}")
            assert status == 200, meta
            if meta["status"] in ("completed",
                                  "completed_with_errors"):
                return meta
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} did not finish: {meta}")


@pytest.fixture()
def make_server(tmp_path):
    """Factory for in-process servers (random port, auto-teardown)."""
    started = []

    def factory(**kwargs) -> ReproServer:
        kwargs.setdefault("job_dir", tmp_path / "jobs")
        kwargs.setdefault("port", 0)
        server = ReproServer(**kwargs)
        server.start()
        started.append(server)
        return server

    yield factory
    for server in started:
        server.stop(drain=False, timeout=10.0)


@pytest.fixture()
def server(make_server) -> ReproServer:
    """One running server with default bindings."""
    return make_server()


@pytest.fixture()
def make_client():
    """Factory building a :class:`Client` for any running server."""

    def factory(server) -> Client:
        bound = Client(server.host, server.port)
        bound.server = server  # in-process app, for white-box asserts
        return bound

    return factory


@pytest.fixture()
def client(server, make_client) -> Client:
    """HTTP client bound to the ``server`` fixture."""
    return make_client(server)
