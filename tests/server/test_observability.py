"""Server observability: ``GET /v1/metrics``, stats instruments, and
the kind/job fields of the structured access log."""

import io
import json

import pytest

from repro.api import DelayRequest, VersionRequest
from repro.obs.metrics import validate_exposition
from repro.server.stats import ServerStats

BATCH = (VersionRequest().to_json() + "\n"
         + DelayRequest(deltas=((0.0,),)).to_json() + "\n")


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus(self, client):
        status, body = client.run(VersionRequest())
        assert status == 200
        status, headers, body = client.request("GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        counts = validate_exposition(body.decode("utf-8"))
        # Server-side instruments (the per-server registry) ...
        assert counts["repro_server_requests_total"] >= 1
        assert counts["repro_server_request_seconds"] >= 1
        # ... merged with the process-global ones.
        assert counts["repro_session_requests_total"] >= 1

    def test_request_counters_move_with_traffic(self, client):
        client.get("/v1/health")
        before = self._route_count(client)
        client.get("/v1/health")
        client.get("/v1/health")
        assert self._route_count(client) == before + 2

    @staticmethod
    def _route_count(client):
        _, _, body = client.request("GET", "/v1/metrics")
        for line in body.decode("utf-8").splitlines():
            if (line.startswith("repro_server_requests_total")
                    and 'route="/v1/health"' in line):
                return float(line.rsplit(" ", 1)[1])
        return 0.0

    def test_two_servers_do_not_cross_count(self, make_server,
                                            make_client):
        first = make_client(make_server())
        second = make_client(make_server())
        first.get("/v1/health")
        first.get("/v1/health")
        second.get("/v1/health")
        assert self._route_count(first) == 2.0
        assert self._route_count(second) == 1.0


class TestServerStats:
    def test_snapshot_shape_without_traffic(self):
        snap = ServerStats().snapshot()
        assert snap["latency_ms"] is None  # empty ring: no report
        assert snap["requests"]["total"] == 0

    def test_single_sample_percentiles(self):
        stats = ServerStats()
        stats.record("/v1/run", 200, 0.25)
        latency = stats.snapshot()["latency_ms"]
        assert latency["count"] == 1
        # One sample is every percentile of itself.
        assert latency["p50"] == latency["p99"] == latency["max"] \
            == pytest.approx(250.0)

    def test_counters_aggregate_by_route_and_class(self):
        stats = ServerStats()
        stats.record("/v1/run", 200, 0.01)
        stats.record("/v1/run", 400, 0.01)
        stats.record("/v1/health", 200, 0.001, timed_out=False)
        stats.record("/v1/run", 504, 0.5, timed_out=True)
        snap = stats.snapshot()
        assert snap["requests"]["by_route"] == {"/v1/run": 3,
                                                "/v1/health": 1}
        assert snap["requests"]["by_status_class"] == {"2xx": 2,
                                                       "4xx": 1,
                                                       "5xx": 1}
        assert snap["requests"]["timeouts"] == 1

    def test_registry_render_matches_snapshot(self):
        stats = ServerStats()
        stats.record("/v1/run", 200, 0.01)
        counts = validate_exposition(stats.registry.render())
        assert counts["repro_server_requests_total"] == 1
        assert counts["repro_server_responses_total"] == 1


class TestAccessLog:
    @pytest.fixture()
    def logged(self, make_server, make_client):
        stream = io.StringIO()
        client = make_client(make_server(log_stream=stream))
        return client, stream

    @staticmethod
    def _lines(stream):
        return [json.loads(line)
                for line in stream.getvalue().splitlines()]

    def test_run_lines_carry_request_kind(self, logged):
        client, stream = logged
        status, _ = client.run(DelayRequest(deltas=((0.0,),)))
        assert status == 200
        (line,) = self._lines(stream)
        assert line["route"] == "/v1/run"
        assert line["kind"] == "delay"
        assert line["status"] == 200
        assert line["ms"] >= 0.0

    def test_malformed_body_has_no_kind_field(self, logged):
        client, stream = logged
        status, _, _ = client.request("POST", "/v1/run",
                                      body="not json")
        assert status == 400
        (line,) = self._lines(stream)
        assert "kind" not in line

    def test_batch_routes_carry_job_id(self, logged):
        client, stream = logged
        status, meta = client.post("/v1/batches", BATCH)
        assert status == 202
        job_id = meta["id"]
        client.wait_job(job_id)
        client.request("GET", f"/v1/batches/{job_id}/results")
        for line in self._lines(stream):
            if line["route"].startswith("/v1/batches"):
                assert line["job"] == job_id
