"""Async batch jobs: submit -> poll -> download, resume, idempotency."""

import json

from repro.api import DelayRequest, VersionRequest
from repro.server import JobStore

VALID_LINES = [
    DelayRequest(deltas=((0.0,),)).to_json(),
    VersionRequest().to_json(),
    DelayRequest(deltas=((12e-12,), (-12e-12,))).to_json(),
]


def test_submit_poll_download_happy_path(client):
    upload = "\n".join(VALID_LINES) + "\n"
    status, meta = client.post("/v1/batches", upload)
    assert status == 202
    assert meta["total"] == 3
    final = client.wait_job(meta["id"])
    assert final["status"] == "completed"
    assert final["done"] == final["ok"] == 3
    assert final["errors"] == 0

    status, headers, body = client.request(
        "GET", f"/v1/batches/{meta['id']}/results")
    assert status == 200
    assert headers["Content-Type"] == "application/x-ndjson"
    assert headers["X-Repro-Job-Status"] == "completed"
    records = [json.loads(line) for line in
               body.decode().splitlines()]
    assert [record["line"] for record in records] == [1, 2, 3]
    assert all(record["status"] == "ok" for record in records)
    kinds = [record["envelope"]["kind"] for record in records]
    assert kinds == ["delay_result", "version_result", "delay_result"]


def test_mixed_valid_and_invalid_lines(client):
    upload = "\n".join([
        VALID_LINES[0],
        "this is not json",
        json.dumps({"schema": "repro.api/1", "kind": "delay",
                    "data": {"gate": "nor99"}}),
        VALID_LINES[1],
    ]) + "\n"
    status, meta = client.post("/v1/batches", upload)
    assert status == 202
    final = client.wait_job(meta["id"])
    assert final["status"] == "completed_with_errors"
    assert final["done"] == 4
    assert final["ok"] == 2
    assert final["errors"] == 2

    _, _, body = client.request(
        "GET", f"/v1/batches/{meta['id']}/results")
    records = {record["line"]: record for record in
               (json.loads(line) for line in
                body.decode().splitlines())}
    assert records[1]["status"] == "ok"
    assert records[4]["status"] == "ok"
    for line in (2, 3):
        assert records[line]["status"] == "error"
        envelope = records[line]["envelope"]
        assert envelope["kind"] == "error"
        assert envelope["data"]["error"]
        assert envelope["data"]["exception"]
    # The decodable-but-bad line still reports its request kind.
    assert records[3]["envelope"]["data"]["request_kind"] == "delay"


def test_resubmission_is_idempotent(client):
    upload = "\n".join(VALID_LINES) + "\n"
    _, meta = client.post("/v1/batches", upload)
    final = client.wait_job(meta["id"])
    _, _, first_results = client.request(
        "GET", f"/v1/batches/{meta['id']}/results")

    status, again = client.post("/v1/batches", upload)
    assert status == 202
    assert again["id"] == meta["id"]
    assert again["status"] == final["status"] == "completed"
    assert again["done"] == 3  # not reset, not re-run
    _, _, second_results = client.request(
        "GET", f"/v1/batches/{meta['id']}/results")
    assert second_results == first_results


def test_empty_upload_is_rejected(client):
    status, payload = client.post("/v1/batches", "\n \n")
    assert status == 400
    assert payload["kind"] == "error"
    assert "no request lines" in payload["data"]["error"]


def test_results_of_unfinished_job_are_409(make_server, make_client):
    server = make_server()
    # Register a job directly in the store, never enqueued: it stays
    # "queued" so the results route must refuse with progress info.
    meta = server.store.create("\n".join(VALID_LINES) + "\n")
    client = make_client(server)
    status, payload = client.get(f"/v1/batches/{meta['id']}/results")
    assert status == 409
    assert payload["kind"] == "error"
    assert "queued" in payload["data"]["error"]
    assert "0/3" in payload["data"]["error"]
    # ... while the status route happily reports it.
    status, polled = client.get(f"/v1/batches/{meta['id']}")
    assert status == 200
    assert polled["status"] == "queued"


def test_unknown_job_is_404(client):
    for path in (f"/v1/batches/{'0' * 64}",
                 f"/v1/batches/{'0' * 64}/results"):
        status, payload = client.get(path)
        assert status == 404
        assert payload["kind"] == "error"
        assert "no such job" in payload["data"]["error"]


def test_restart_resumes_half_finished_job(tmp_path, make_server,
                                           make_client):
    """Lines finished before a crash are never re-executed."""
    job_dir = tmp_path / "jobs"
    store = JobStore(job_dir)
    upload = "\n".join(VALID_LINES) + "\n"
    meta = store.create(upload)
    # Simulate a crash after line 1: its (sentinel) result is on
    # disk, the job is still queued.
    sentinel = {"line": 1, "status": "ok",
                "envelope": {"kind": "version_result",
                             "sentinel": True}}
    store.append_result(meta["id"], sentinel)

    server = make_server(job_dir=job_dir)  # start() resumes the store
    client = make_client(server)
    final = client.wait_job(meta["id"])
    assert final["status"] == "completed"
    assert final["done"] == 3

    records = {record["line"]: record for record in
               store.result_records(meta["id"])}
    assert records[1] == sentinel  # preserved, not recomputed
    assert records[2]["envelope"]["kind"] == "version_result"
    assert records[3]["envelope"]["kind"] == "delay_result"


def test_restart_reruns_torn_final_line(tmp_path, make_server,
                                        make_client):
    job_dir = tmp_path / "jobs"
    store = JobStore(job_dir)
    meta = store.create("\n".join(VALID_LINES) + "\n")
    store.append_result(meta["id"], {
        "line": 1, "status": "ok",
        "envelope": {"kind": "version_result"}})
    with open(store.results_path(meta["id"]), "a") as handle:
        handle.write('{"line": 2, "status": "ok", "env')  # torn

    server = make_server(job_dir=job_dir)
    client = make_client(server)
    final = client.wait_job(meta["id"])
    assert final["status"] == "completed"
    assert final["done"] == 3
    # The torn line re-executed and produced a complete record.
    records = {record["line"]: record for record in
               store.result_records(meta["id"])}
    assert records[2]["status"] == "ok"
    assert records[2]["envelope"]["kind"] == "version_result"


def test_stats_report_job_counters(client):
    _, meta = client.post("/v1/batches",
                          "\n".join(VALID_LINES) + "\n")
    client.wait_job(meta["id"])
    status, stats = client.get("/v1/stats")
    assert status == 200
    assert stats["jobs"]["total"] == 1
    assert stats["jobs"]["by_status"] == {"completed": 1}
    assert stats["jobs"]["pending"] == 0
