"""Concurrent clients: shared session, zero cross-request bleed."""

import concurrent.futures
import json

from repro.api import (DelayRequest, DescribeRequest, Session,
                       VersionRequest)


def test_concurrent_hammering_no_cross_request_bleed(client):
    """48 distinct requests from 8 threads: every response must be
    byte-identical to what a private session computes for *that*
    request — a swapped or blended response fails loudly."""
    requests = [DelayRequest(deltas=((index * 1e-12,),
                                     (((index % 7) - 3) * 5e-12,)))
                for index in range(48)]
    twin = Session()
    expected = {request: twin.run_json(request.to_json()).to_json()
                           .encode("utf-8")
                for request in requests}

    def roundtrip(request):
        status, body = client.run(request)
        return request, status, body

    with concurrent.futures.ThreadPoolExecutor(8) as pool:
        outcomes = list(pool.map(roundtrip, requests))
    for request, status, body in outcomes:
        assert status == 200
        assert body == expected[request]


def test_concurrent_mixed_kinds(client):
    """Interleaved kinds keep their response types apart."""
    mix = [VersionRequest(), DescribeRequest(),
           DelayRequest(deltas=((3e-12,),))] * 6
    result_kinds = {"version": "version_result",
                    "describe": "describe_result",
                    "delay": "delay_result"}

    def roundtrip(request):
        status, body = client.run(request)
        return request, status, json.loads(body)

    with concurrent.futures.ThreadPoolExecutor(6) as pool:
        outcomes = list(pool.map(roundtrip, mix))
    for request, status, envelope in outcomes:
        assert status == 200
        assert envelope["kind"] == result_kinds[type(request).kind]


def test_concurrent_batch_submissions(client):
    """Distinct uploads become distinct jobs, all of which finish."""
    uploads = ["\n".join(DelayRequest(
        deltas=((job * 1e-12 + line * 1e-13,),)).to_json()
        for line in range(3)) + "\n" for job in range(6)]

    def submit(upload):
        status, meta = client.post("/v1/batches", upload)
        assert status == 202
        return meta["id"]

    with concurrent.futures.ThreadPoolExecutor(6) as pool:
        job_ids = list(pool.map(submit, uploads))
    assert len(set(job_ids)) == 6
    for job_id in job_ids:
        final = client.wait_job(job_id)
        assert final["status"] == "completed"
        assert final["ok"] == 3


def test_runs_and_batches_share_the_session_memo(client):
    """Both paths hit one session: a /v1/run warm-up turns the same
    batch lines into memo hits."""
    request = DelayRequest(deltas=((9e-12,),))
    status, _ = client.run(request)
    assert status == 200
    before = client.server.session.cache_info()["hits"]
    _, meta = client.post("/v1/batches", request.to_json() + "\n")
    client.wait_job(meta["id"])
    assert client.server.session.cache_info()["hits"] > before
