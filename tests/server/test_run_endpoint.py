"""End-to-end envelope round-trips through ``POST /v1/run``.

Every request kind of :mod:`repro.api.requests` goes over real HTTP
and must come back as its matching result envelope — the same typed
object ``session.run_json`` would return.
"""

import json

import pytest

from repro._version import __version__
from repro.api import (CharacterizeRequest, DelayRequest,
                       DescribeRequest, ExperimentRequest,
                       LibraryRequest, MultiInputRequest, Request,
                       Session, StaRequest, StatsRequest,
                       SweepRequest, VersionRequest, WireRequest,
                       from_json)

#: (request, expected result envelope kind) for every request kind.
CASES = [
    (VersionRequest(), "version_result"),
    (DescribeRequest(), "describe_result"),
    (DelayRequest(deltas=((0.0,), (5e-12,), (-20e-12,))),
     "delay_result"),
    (DelayRequest(gate="nor3", direction="rising",
                  deltas=((0.0, 2e-12),)), "delay_result"),
    (SweepRequest(points=8), "sweep_result"),
    (MultiInputRequest(gate="nor3", points=3), "multi_input_result"),
    (CharacterizeRequest(core_points=5, state_points=2),
     "characterize_result"),
    (StaRequest(circuit="tree", top=1), "sta_result"),
    (ExperimentRequest(name="multi_input"), "experiment_result"),
    (StatsRequest(deltas=(0.0,), samples=64, seed=3), "stats_result"),
    (WireRequest(stages=2, corners=3), "wire_result"),
    (WireRequest(topology="fanout", branches=2, stages=1,
                 model="elmore", validate=True), "wire_result"),
]


def test_case_table_covers_every_request_kind():
    """The table above must not silently fall behind the API."""
    from repro.api.serialization import _KINDS
    request_kinds = {kind for kind, cls in _KINDS.items()
                     if issubclass(cls, Request)
                     and cls is not Request}
    # "library" needs an on-disk file; test_library_round_trip
    # covers it separately.
    assert {type(req).kind for req, _ in CASES} | {"library"} \
        == request_kinds


@pytest.mark.parametrize(
    "request_record,result_kind", CASES,
    ids=[f"{type(req).kind}-{index}"
         for index, (req, _) in enumerate(CASES)])
def test_round_trip(client, request_record, result_kind):
    status, body = client.run(request_record)
    assert status == 200
    envelope = json.loads(body)
    assert envelope["kind"] == result_kind
    # The body must decode back into the typed result.
    record = from_json(body.decode("utf-8"))
    assert type(record).kind == result_kind
    assert record.text


def test_library_round_trip(client, tmp_path):
    """LibraryRequest needs a file: characterize one, inspect it."""
    from repro.library import GateLibrary
    characterized = client.server.session.run(
        CharacterizeRequest(core_points=5, state_points=2))
    path = tmp_path / "lib.json"
    GateLibrary.from_dict(characterized.library).save(path)
    status, body = client.run(
        LibraryRequest(path=str(path), cell="nor2_paper"))
    assert status == 200
    record = from_json(body.decode("utf-8"))
    assert type(record).kind == "library_inspect_result"
    assert "nor2_paper" in record.cells


def test_response_is_byte_identical_to_run_json(client):
    """The HTTP body is exactly ``result.to_json()`` — no rewrap."""
    request_record = DelayRequest(deltas=((0.0,), (7e-12,)))
    status, body = client.run(request_record)
    assert status == 200
    twin = Session()  # same default bindings as the server fixture
    assert body == twin.run_json(
        request_record.to_json()).to_json().encode("utf-8")


def test_keep_alive_serves_many_requests_per_connection(server):
    import http.client
    connection = http.client.HTTPConnection(server.host, server.port,
                                            timeout=30)
    try:
        for index in range(5):
            connection.request(
                "POST", "/v1/run",
                body=DelayRequest(
                    deltas=((index * 1e-12,),)).to_json())
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert payload["kind"] == "delay_result"
    finally:
        connection.close()


def test_health_reports_version(client):
    status, payload = client.get("/v1/health")
    assert status == 200
    assert payload == {"status": "ok", "version": __version__}
