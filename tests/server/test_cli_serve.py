"""The ``repro serve`` CLI entry: parsing, help, end-to-end run."""

import json
import os
import signal
import subprocess
import sys
import urllib.request

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.engine is None
        assert args.tech == "finfet15"
        assert args.jobs_dir == "repro_jobs"
        assert args.run_workers == 8
        assert args.batch_workers == 2
        assert args.timeout == 30.0
        assert not args.access_log

    def test_options(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0",
             "--engine", "parallel", "--tech", "bulk65",
             "--jobs-dir", "/tmp/jobs", "--run-workers", "4",
             "--batch-workers", "1", "--timeout", "5.5",
             "--access-log"])
        assert args.host == "0.0.0.0"
        assert args.port == 0
        assert args.engine == "parallel"
        assert args.tech == "bulk65"
        assert args.jobs_dir == "/tmp/jobs"
        assert args.run_workers == 4
        assert args.batch_workers == 1
        assert args.timeout == 5.5
        assert args.access_log

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--engine", "gpu"])

    def test_help_describes_the_service(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--jobs-dir" in out
        assert "--run-workers" in out
        assert "--access-log" in out

    def test_serve_is_a_listed_workflow(self):
        from repro.api import WORKFLOW_DESCRIPTIONS
        assert "serve" in WORKFLOW_DESCRIPTIONS
        assert "HTTP" in WORKFLOW_DESCRIPTIONS["serve"]


class TestEndToEnd:
    def test_serve_process_lifecycle(self, tmp_path):
        """`repro serve` comes up, serves, drains on SIGINT, exits 0."""
        import repro
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + os.pathsep \
            + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs-dir", str(tmp_path / "jobs")],
            stderr=subprocess.PIPE, text=True, env=env,
            cwd=str(tmp_path))
        try:
            line = process.stderr.readline()
            assert "listening on http://" in line
            url = line.split("listening on ", 1)[1].split()[0]
            with urllib.request.urlopen(f"{url}/v1/health",
                                        timeout=10) as response:
                payload = json.loads(response.read())
            assert payload["status"] == "ok"
            process.send_signal(signal.SIGINT)
            process.wait(timeout=30)
            assert process.returncode == 0
            remainder = process.stderr.read()
            assert "shutting down" in remainder
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
            process.stderr.close()
