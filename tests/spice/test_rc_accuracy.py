"""Transient-solver accuracy against the analytic RC step response.

A single-pole RC low-pass driven by a PWL ramp has an exact closed
form (ramp response during the edge, exponential settling after it),
so the adaptive integrator of :mod:`repro.spice.transient` can be
held to a hard numeric tolerance — the same solver settings the gate
and wire cross-validations rely on.
"""

import math

import numpy as np
import pytest

from repro.spice.measure import crossing_after
from repro.spice.netlist import Circuit
from repro.spice.transient import transient_analysis
from repro.spice.waveforms import Pwl

R = 2e3
C = 0.5e-15
TAU = R * C
T_RAMP = TAU / 2.0

#: Asserted waveform tolerance: every accepted time point within
#: 0.2 % of VDD of the closed form (the solver's reltol is 1e-4 of
#: the 1 V scale; 20x headroom over accumulated LTE).
V_TOL = 2e-3
#: Asserted 50 %-crossing tolerance, relative to tau.
T_TOL = 2e-3


def analytic_rc(t: np.ndarray) -> np.ndarray:
    """Exact unit-ramp-then-hold response of the RC low pass.

    ``v' = (u - v) / tau`` with ``u(t) = t / t_ramp`` clamped to 1
    and ``v(0) = 0``:  during the ramp
    ``v = (t - tau + tau e^(-t/tau)) / t_ramp``; after it the
    response settles exponentially from its ramp-end value.
    """
    t = np.asarray(t, dtype=float)
    during = (t - TAU + TAU * np.exp(-t / TAU)) / T_RAMP
    v_end = (T_RAMP - TAU + TAU * math.exp(-T_RAMP / TAU)) / T_RAMP
    after = 1.0 + (v_end - 1.0) * np.exp(-(t - T_RAMP) / TAU)
    return np.where(t <= T_RAMP, during, after)


@pytest.fixture(scope="module")
def result():
    circuit = Circuit("rc_accuracy")
    circuit.voltage_source("Vin", "in", "0",
                           Pwl([(0.0, 0.0), (T_RAMP, 1.0)]))
    circuit.resistor("R1", "in", "out", R)
    circuit.capacitor("C1", "out", "0", C)
    return transient_analysis(circuit, 10.0 * TAU)


class TestRcStepAccuracy:
    def test_waveform_matches_closed_form(self, result):
        times = np.asarray(result.times)
        simulated = result.voltage("out")
        error = np.abs(simulated - analytic_rc(times))
        assert float(error.max()) < V_TOL

    def test_settles_to_the_rail(self, result):
        assert result.value_at("out", 10.0 * TAU) == pytest.approx(
            1.0, abs=V_TOL)

    def test_crossing_time(self, result):
        # Invert the closed form numerically for the 50 % crossing.
        grid = np.linspace(0.0, 10.0 * TAU, 200001)
        values = analytic_rc(grid)
        exact = float(np.interp(0.5, values, grid))
        measured = crossing_after(result, "out", 0.5, 0.0, 1)
        assert measured == pytest.approx(exact, abs=T_TOL * TAU)

    def test_monotone_rise(self, result):
        simulated = result.voltage("out")
        assert np.all(np.diff(simulated) > -1e-9)
