"""Tests for repro.spice.netlist and repro.spice.mna."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice.devices import MosfetModel
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit
from repro.spice.waveforms import Pwl

NMOS = MosfetModel(polarity="n", vt=0.3, k=200e-6)


def divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.voltage_source("Vin", "in", "0", 1.0)
    circuit.resistor("R1", "in", "mid", 1e3)
    circuit.resistor("R2", "mid", "0", 3e3)
    return circuit


class TestCircuit:
    def test_node_names_in_order(self):
        assert divider().node_names == ["in", "mid"]

    def test_duplicate_device_name_rejected(self):
        circuit = divider()
        with pytest.raises(NetlistError):
            circuit.resistor("R1", "a", "0", 1.0)

    def test_validate_ok(self):
        divider().validate()

    def test_validate_empty(self):
        with pytest.raises(NetlistError):
            Circuit("empty").validate()

    def test_validate_no_ground(self):
        circuit = Circuit("floating")
        circuit.resistor("R1", "a", "b", 1e3)
        circuit.resistor("R2", "b", "a", 1e3)
        with pytest.raises(NetlistError):
            circuit.validate()

    def test_validate_dangling_node(self):
        circuit = Circuit("dangling")
        circuit.voltage_source("V1", "a", "0", 1.0)
        circuit.resistor("R1", "a", "b", 1e3)  # b dangles
        with pytest.raises(NetlistError):
            circuit.validate()

    def test_devices_of_type(self):
        from repro.spice.devices import Resistor
        assert len(divider().devices_of_type(Resistor)) == 2

    def test_repr(self):
        assert "divider" in repr(divider())

    def test_gnd_aliases(self):
        circuit = Circuit("alias")
        circuit.voltage_source("V1", "a", "gnd", 1.0)
        circuit.resistor("R1", "a", "GND", 1e3)
        circuit.validate()
        assert circuit.node_names == ["a"]


class TestMnaAssembly:
    def test_dimensions(self):
        system = MnaSystem(divider())
        assert system.n == 2
        assert system.m == 1
        assert system.size == 3

    def test_conductance_stamps(self):
        system = MnaSystem(divider(), gmin=0.0)
        g1, g2 = 1e-3, 1.0 / 3e3
        index = system.node_index
        i, m = index["in"], index["mid"]
        assert system.g0[i, i] == pytest.approx(g1)
        assert system.g0[m, m] == pytest.approx(g1 + g2)
        assert system.g0[i, m] == pytest.approx(-g1)
        assert system.g0[m, i] == pytest.approx(-g1)

    def test_gmin_on_diagonal(self):
        system = MnaSystem(divider(), gmin=1e-9)
        assert system.g0[0, 0] == pytest.approx(1e-3 + 1e-9)

    def test_capacitance_stamps(self):
        circuit = divider()
        circuit.capacitor("C1", "mid", "0", 2e-15)
        system = MnaSystem(circuit)
        m = system.node_index["mid"]
        assert system.c[m, m] == pytest.approx(2e-15)

    def test_coupling_capacitance_stamps(self):
        circuit = divider()
        circuit.capacitor("C1", "in", "mid", 1e-15)
        system = MnaSystem(circuit)
        i, m = system.node_index["in"], system.node_index["mid"]
        assert system.c[i, m] == pytest.approx(-1e-15)
        assert system.c[m, m] == pytest.approx(1e-15)

    def test_source_values(self):
        circuit = Circuit("pwl")
        circuit.voltage_source("V1", "a", "0",
                               Pwl([(0.0, 0.0), (1.0, 2.0)]))
        circuit.resistor("R1", "a", "0", 1e3)
        system = MnaSystem(circuit)
        assert system.source_values(0.5)[0] == pytest.approx(1.0)

    def test_breakpoints_filtered_to_window(self):
        circuit = Circuit("pwl")
        circuit.voltage_source("V1", "a", "0",
                               Pwl([(0.0, 0.0), (0.5, 1.0),
                                    (2.0, 0.0)]))
        circuit.resistor("R1", "a", "0", 1e3)
        system = MnaSystem(circuit)
        assert system.breakpoints(1.0) == [0.5]

    def test_static_residual_at_solution(self):
        """The exact divider solution zeroes the residual."""
        system = MnaSystem(divider(), gmin=0.0)
        x = np.zeros(3)
        x[system.node_index["in"]] = 1.0
        x[system.node_index["mid"]] = 0.75
        x[2] = -(1.0 - 0.75) / 1e3  # branch current (into + terminal)
        residual, _ = system.static_residual_jacobian(x, 0.0)
        assert np.allclose(residual, 0.0, atol=1e-12)

    def test_mosfet_jacobian_matches_numeric(self):
        circuit = Circuit("nmos")
        circuit.voltage_source("Vd", "d", "0", 0.6)
        circuit.voltage_source("Vg", "g", "0", 0.8)
        circuit.mosfet("M1", "d", "g", "0", NMOS)
        circuit.resistor("Rload", "d", "0", 1e5)
        system = MnaSystem(circuit)
        x = np.array([0.6, 0.8, 0.0, 0.0])
        residual, jacobian = system.static_residual_jacobian(x, 0.0)
        h = 1e-7
        for col in range(system.size):
            xp = x.copy()
            xp[col] += h
            rp, _ = system.static_residual_jacobian(xp, 0.0)
            xm = x.copy()
            xm[col] -= h
            rm, _ = system.static_residual_jacobian(xm, 0.0)
            numeric = (rp - rm) / (2 * h)
            assert np.allclose(jacobian[:, col], numeric, rtol=1e-4,
                               atol=1e-8)

    def test_voltages_mapping(self):
        system = MnaSystem(divider())
        x = np.array([1.0, 0.75, 0.0])
        voltages = system.voltages(x)
        assert voltages == {"in": 1.0, "mid": 0.75}
