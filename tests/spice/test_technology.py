"""Tests for repro.spice.technology — cells and cards."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.spice.dc import dc_operating_point
from repro.spice.measure import (crossing_after, gate_delay, slew_time)
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit
from repro.spice.technology import (BULK65, FINFET15, build_inverter,
                                    build_inverter_chain, build_nor2)
from repro.spice.transient import TransientOptions, transient_analysis
from repro.spice.waveforms import Dc, EdgeTrain
from repro.units import FF, PS


class TestCards:
    def test_finfet15_supply(self):
        assert FINFET15.vdd == pytest.approx(0.8)
        assert FINFET15.vth == pytest.approx(0.4)

    def test_bulk65_supply(self):
        assert BULK65.vdd == pytest.approx(1.2)

    def test_polarity_assignment(self):
        assert FINFET15.nmos.polarity == "n"
        assert FINFET15.pmos.polarity == "p"


class TestNor2Structure:
    def test_nodes(self):
        circuit = build_nor2(FINFET15, 0.0, 0.0)
        assert set(circuit.node_names) == {"vdd", "a", "b", "n", "o"}

    def test_validates(self):
        build_nor2(FINFET15, 0.0, 0.0).validate()

    def test_four_transistors(self):
        from repro.spice.devices import Mosfet
        circuit = build_nor2(FINFET15, 0.0, 0.0)
        fets = circuit.devices_of_type(Mosfet)
        assert len(fets) == 4
        polarities = sorted(f.model.polarity for f in fets)
        assert polarities == ["n", "n", "p", "p"]

    def test_negative_load_rejected(self):
        with pytest.raises(ParameterError):
            build_nor2(FINFET15, 0.0, 0.0, output_load=-1 * FF)

    @pytest.mark.parametrize("a,b,expected_high", [
        (0.0, 0.0, True),
        (0.8, 0.0, False),
        (0.0, 0.8, False),
        (0.8, 0.8, False),
    ])
    def test_dc_truth_table(self, a, b, expected_high):
        """The NOR2 cell implements NOR at DC."""
        circuit = build_nor2(FINFET15, Dc(a), Dc(b))
        system = MnaSystem(circuit)
        x = dc_operating_point(system)
        vo = system.voltages(x)["o"]
        if expected_high:
            assert vo > 0.75 * FINFET15.vdd
        else:
            assert vo < 0.25 * FINFET15.vdd

    def test_internal_node_charged_when_a_low(self):
        circuit = build_nor2(FINFET15, Dc(0.0), Dc(0.8))
        system = MnaSystem(circuit)
        x = dc_operating_point(system)
        assert system.voltages(x)["n"] > 0.75 * FINFET15.vdd


class TestNor2Dynamics:
    def test_output_falls_when_one_input_rises(self):
        tech = FINFET15
        wave = EdgeTrain([(200 * PS, 1)], tech.vdd,
                         tech.input_edge_time)
        circuit = build_nor2(tech, wave, Dc(0.0))
        result = transient_analysis(circuit, 500 * PS,
                                    TransientOptions(v_scale=tech.vdd))
        delay = gate_delay(result, "a", "o", tech.vth, edge_out=-1)
        assert 20 * PS < delay < 60 * PS

    def test_parallel_inputs_faster(self):
        """The structural origin of the falling MIS speed-up."""
        tech = FINFET15

        def falling_delay(drive_both: bool) -> float:
            wave = EdgeTrain([(200 * PS, 1)], tech.vdd,
                             tech.input_edge_time)
            wave_b = wave if drive_both else Dc(0.0)
            circuit = build_nor2(tech, wave, wave_b)
            result = transient_analysis(
                circuit, 500 * PS, TransientOptions(v_scale=tech.vdd))
            return crossing_after(result, "o", tech.vth, 100 * PS,
                                  -1) - 200 * PS

        assert falling_delay(True) < falling_delay(False)

    def test_bulk65_slower_than_finfet15(self):
        def sis_delay(tech):
            wave = EdgeTrain([(500 * PS, 1)], tech.vdd,
                             tech.input_edge_time)
            circuit = build_nor2(tech, wave, Dc(0.0))
            result = transient_analysis(
                circuit, 1500 * PS, TransientOptions(v_scale=tech.vdd))
            return crossing_after(result, "o", tech.vth, 100 * PS,
                                  -1) - 500 * PS

        assert sis_delay(BULK65) > 1.8 * sis_delay(FINFET15)


class TestInverters:
    def test_inverter_nodes(self):
        circuit = build_inverter(FINFET15, 0.0)
        assert set(circuit.node_names) == {"vdd", "a", "o"}

    def test_chain_structure(self):
        circuit = build_inverter_chain(FINFET15, 0.0, stages=3)
        assert set(circuit.node_names) == {"vdd", "a", "s1", "s2", "s3"}

    def test_chain_needs_stage(self):
        with pytest.raises(ParameterError):
            build_inverter_chain(FINFET15, 0.0, stages=0)

    def test_chain_propagates_and_alternates(self):
        tech = FINFET15
        wave = EdgeTrain([(200 * PS, 1)], tech.vdd,
                         tech.input_edge_time)
        circuit = build_inverter_chain(tech, wave, stages=2)
        result = transient_analysis(circuit, 600 * PS,
                                    TransientOptions(v_scale=tech.vdd))
        fall = crossing_after(result, "s1", tech.vth, 150 * PS, -1)
        rise = crossing_after(result, "s2", tech.vth, 150 * PS, +1)
        assert rise > fall > 200 * PS


class TestMeasureHelpers:
    @pytest.fixture(scope="class")
    def inverter_result(self):
        tech = FINFET15
        wave = EdgeTrain([(200 * PS, 1), (600 * PS, 0)], tech.vdd,
                         tech.input_edge_time)
        circuit = build_inverter(tech, wave)
        return transient_analysis(circuit, 1000 * PS,
                                  TransientOptions(v_scale=tech.vdd))

    def test_crossing_after_raises_when_absent(self, inverter_result):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            crossing_after(inverter_result, "o", 0.4, 900 * PS, -1)

    def test_gate_delay_with_explicit_reference(self, inverter_result):
        d1 = gate_delay(inverter_result, "a", "o", 0.4, edge_out=-1)
        d2 = gate_delay(inverter_result, "a", "o", 0.4, edge_out=-1,
                        t_in=200 * PS)
        assert d1 == pytest.approx(d2, abs=0.5 * PS)

    def test_slew_time_positive(self, inverter_result):
        slew = slew_time(inverter_result, "o", 0.1 * 0.8, 0.9 * 0.8,
                         after=500 * PS, rising=True)
        assert slew > 0.0

    def test_slew_requires_order(self, inverter_result):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            slew_time(inverter_result, "o", 0.6, 0.2)
