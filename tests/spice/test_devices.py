"""Tests for repro.spice.devices — especially the MOSFET model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.spice.devices import (Capacitor, Mosfet, MosfetModel,
                                 Resistor, VoltageSource)
from repro.spice.waveforms import Dc

NMOS = MosfetModel(polarity="n", vt=0.3, k=200e-6, lam=0.05)
PMOS = MosfetModel(polarity="p", vt=0.3, k=200e-6, lam=0.05)

node_voltages = st.floats(min_value=-0.2, max_value=1.0)


class TestPassives:
    def test_resistor_conductance(self):
        r = Resistor("R1", "a", "b", 2e3)
        assert r.conductance == pytest.approx(5e-4)
        assert r.nodes == ("a", "b")

    def test_resistor_validation(self):
        with pytest.raises(ParameterError):
            Resistor("R1", "a", "b", 0.0)
        with pytest.raises(ParameterError):
            Resistor("R1", "a", "b", -5.0)

    def test_capacitor(self):
        c = Capacitor("C1", "a", "0", 1e-15)
        assert c.capacitance == 1e-15

    def test_capacitor_zero_allowed(self):
        assert Capacitor("C1", "a", "0", 0.0).capacitance == 0.0

    def test_capacitor_negative_rejected(self):
        with pytest.raises(ParameterError):
            Capacitor("C1", "a", "0", -1e-15)

    def test_voltage_source_float(self):
        v = VoltageSource("V1", "a", "0", 0.8)
        assert v.value(0.0) == 0.8
        assert v.value(1.0) == 0.8

    def test_voltage_source_waveform(self):
        v = VoltageSource("V1", "a", "0", Dc(0.5))
        assert v.value(0.0) == 0.5


class TestMosfetModelCard:
    def test_validation(self):
        with pytest.raises(ParameterError):
            MosfetModel(polarity="x", vt=0.3, k=1e-4)
        with pytest.raises(ParameterError):
            MosfetModel(polarity="n", vt=-0.3, k=1e-4)
        with pytest.raises(ParameterError):
            MosfetModel(polarity="n", vt=0.3, k=1e-4, lam=-0.1)

    def test_scaling(self):
        scaled = NMOS.scaled(2.0)
        assert scaled.k == pytest.approx(2 * NMOS.k)
        assert scaled.vt == NMOS.vt

    def test_scaling_caps(self):
        model = MosfetModel(polarity="n", vt=0.3, k=1e-4, cgd=1e-16)
        assert model.scaled(3.0).cgd == pytest.approx(3e-16)

    def test_bad_scale(self):
        with pytest.raises(ParameterError):
            NMOS.scaled(0.0)

    def test_width_factor_in_device(self):
        fet = Mosfet("M1", "d", "g", "s", NMOS, width_factor=2.0)
        assert fet.model.k == pytest.approx(2 * NMOS.k)


class TestNmosRegions:
    def fet(self):
        return Mosfet("M1", "d", "g", "s", NMOS)

    def test_cutoff(self):
        ids, *_ = self.fet().evaluate(vd=0.8, vg=0.2, vs=0.0)
        assert ids == 0.0

    def test_saturation_current(self):
        # vgs=0.8, vds=0.8 > vov=0.5 -> saturation.
        ids, *_ = self.fet().evaluate(vd=0.8, vg=0.8, vs=0.0)
        expected = 0.5 * NMOS.k * 0.5 ** 2 * (1 + NMOS.lam * 0.8)
        assert ids == pytest.approx(expected)

    def test_triode_current(self):
        # vgs=0.8, vds=0.1 < vov=0.5 -> triode.
        ids, *_ = self.fet().evaluate(vd=0.1, vg=0.8, vs=0.0)
        expected = NMOS.k * (0.5 * 0.1 - 0.5 * 0.01) * (1
                                                        + NMOS.lam * 0.1)
        assert ids == pytest.approx(expected)

    def test_zero_vds_zero_current(self):
        ids, *_ = self.fet().evaluate(vd=0.0, vg=0.8, vs=0.0)
        assert ids == 0.0

    def test_current_increases_with_vgs(self):
        currents = [self.fet().evaluate(0.8, vg, 0.0)[0]
                    for vg in (0.4, 0.6, 0.8)]
        assert currents[0] < currents[1] < currents[2]

    def test_reversal_antisymmetry(self):
        """Swapping drain and source negates the current."""
        fwd, *_ = self.fet().evaluate(vd=0.3, vg=0.8, vs=0.0)
        rev, *_ = self.fet().evaluate(vd=0.0, vg=0.8, vs=0.3)
        assert rev == pytest.approx(-fwd)

    def test_continuity_at_saturation_boundary(self):
        f = self.fet()
        vov = 0.5
        below, *_ = f.evaluate(vd=vov - 1e-9, vg=0.8, vs=0.0)
        above, *_ = f.evaluate(vd=vov + 1e-9, vg=0.8, vs=0.0)
        assert below == pytest.approx(above, rel=1e-6)

    def test_continuity_at_cutoff_boundary(self):
        f = self.fet()
        below, *_ = f.evaluate(vd=0.8, vg=0.3 - 1e-9, vs=0.0)
        above, *_ = f.evaluate(vd=0.8, vg=0.3 + 1e-9, vs=0.0)
        assert below == 0.0
        assert above == pytest.approx(0.0, abs=1e-12)


class TestPmosMirror:
    def fet(self):
        return Mosfet("M1", "d", "g", "s", PMOS)

    def test_off_when_gate_high(self):
        ids, *_ = self.fet().evaluate(vd=0.0, vg=0.8, vs=0.8)
        assert ids == 0.0

    def test_conducts_when_gate_low(self):
        """PMOS with source at VDD sources current into the drain."""
        ids, *_ = self.fet().evaluate(vd=0.0, vg=0.0, vs=0.8)
        assert ids < 0.0  # current flows out of the device drain

    def test_mirror_symmetry_with_nmos(self):
        n_ids, *_ = Mosfet("Mn", "d", "g", "s", NMOS).evaluate(
            vd=0.5, vg=0.8, vs=0.0)
        p_ids, *_ = self.fet().evaluate(vd=0.3, vg=0.0, vs=0.8)
        assert p_ids == pytest.approx(-n_ids)

    def test_reversal(self):
        fwd, *_ = self.fet().evaluate(vd=0.2, vg=0.0, vs=0.8)
        rev, *_ = self.fet().evaluate(vd=0.8, vg=0.0, vs=0.2)
        assert rev == pytest.approx(-fwd)


class TestJacobianAgainstNumericDifferences:
    """The analytic derivatives must match finite differences."""

    @given(node_voltages, node_voltages, node_voltages,
           st.sampled_from(["n", "p"]))
    def test_derivatives(self, vd, vg, vs, polarity):
        model = NMOS if polarity == "n" else PMOS
        fet = Mosfet("M1", "d", "g", "s", model)
        ids, did_dvd, did_dvg, did_dvs = fet.evaluate(vd, vg, vs)
        h = 1e-7

        def num(dvd=0.0, dvg=0.0, dvs=0.0):
            up = fet.evaluate(vd + dvd * h, vg + dvg * h,
                              vs + dvs * h)[0]
            down = fet.evaluate(vd - dvd * h, vg - dvg * h,
                                vs - dvs * h)[0]
            return (up - down) / (2 * h)

        tol = dict(rel=5e-3, abs=5e-9)
        assert did_dvd == pytest.approx(num(dvd=1.0), **tol)
        assert did_dvg == pytest.approx(num(dvg=1.0), **tol)
        assert did_dvs == pytest.approx(num(dvs=1.0), **tol)

    @given(node_voltages, node_voltages, node_voltages)
    def test_derivative_sum_is_zero(self, vd, vg, vs):
        """Currents depend only on voltage differences."""
        fet = Mosfet("M1", "d", "g", "s", NMOS)
        _, did_dvd, did_dvg, did_dvs = fet.evaluate(vd, vg, vs)
        assert did_dvd + did_dvg + did_dvs == pytest.approx(0.0,
                                                            abs=1e-12)
