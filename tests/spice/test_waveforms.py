"""Tests for repro.spice.waveforms."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.spice.waveforms import Dc, EdgeTrain, Pwl
from repro.units import PS


class TestDc:
    def test_constant(self):
        wave = Dc(0.8)
        assert wave(0.0) == 0.8
        assert wave(1e-9) == 0.8

    def test_no_breakpoints(self):
        assert Dc(1.0).breakpoints() == []

    def test_sample(self):
        values = Dc(0.5).sample([0.0, 1.0, 2.0])
        assert np.allclose(values, 0.5)


class TestPwl:
    def test_interpolation(self):
        wave = Pwl([(0.0, 0.0), (1.0, 1.0)])
        assert wave(0.5) == pytest.approx(0.5)
        assert wave(0.25) == pytest.approx(0.25)

    def test_holds_outside_range(self):
        wave = Pwl([(1.0, 0.2), (2.0, 0.9)])
        assert wave(0.0) == 0.2
        assert wave(3.0) == 0.9

    def test_breakpoints(self):
        wave = Pwl([(1.0, 0.0), (2.0, 1.0), (3.0, 0.5)])
        assert wave.breakpoints() == [1.0, 2.0, 3.0]

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            Pwl([])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ParameterError):
            Pwl([(1.0, 0.0), (1.0, 1.0)])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_time_rejected(self, bad):
        # Regression: NaN compares False in the monotonicity check,
        # so a NaN time used to slip through and corrupt the
        # integrator's breakpoint snapping.
        with pytest.raises(ParameterError, match="time must be finite"):
            Pwl([(0.0, 0.0), (bad, 1.0)])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_value_rejected(self, bad):
        with pytest.raises(ParameterError,
                           match="value must be finite"):
            Pwl([(0.0, 0.0), (1.0, bad)])

    def test_single_point(self):
        wave = Pwl([(1.0, 0.7)])
        assert wave(0.0) == 0.7
        assert wave(2.0) == 0.7

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_within_segment_bounds(self, t):
        wave = Pwl([(0.0, 0.2), (1.0, 0.8)])
        assert 0.2 <= wave(t) <= 0.8


class TestEdgeTrain:
    def test_crossing_at_transition_time(self):
        """The Vth crossing happens exactly at the transition time."""
        wave = EdgeTrain([(100 * PS, 1)], vdd=0.8, edge_time=20 * PS)
        assert wave(100 * PS) == pytest.approx(0.4)

    def test_rails_before_and_after(self):
        wave = EdgeTrain([(100 * PS, 1)], vdd=0.8, edge_time=20 * PS)
        assert wave(0.0) == 0.0
        assert wave(89 * PS) == 0.0
        assert wave(111 * PS) == pytest.approx(0.8)

    def test_falling_edge(self):
        wave = EdgeTrain([(100 * PS, 0)], vdd=0.8, edge_time=20 * PS,
                         initial=1)
        assert wave(0.0) == 0.8
        assert wave(100 * PS) == pytest.approx(0.4)
        assert wave(200 * PS) == pytest.approx(0.0)

    def test_initial_inferred(self):
        wave = EdgeTrain([(100 * PS, 0)], vdd=0.8, edge_time=20 * PS)
        assert wave.initial == 1

    def test_monotone_within_edge(self):
        wave = EdgeTrain([(100 * PS, 1)], vdd=0.8, edge_time=20 * PS)
        times = np.linspace(90 * PS, 110 * PS, 41)
        values = wave.sample(times)
        assert np.all(np.diff(values) >= 0.0)

    def test_linear_shape(self):
        wave = EdgeTrain([(100 * PS, 1)], vdd=0.8, edge_time=20 * PS,
                         shape="linear")
        assert wave(95 * PS) == pytest.approx(0.2)
        assert wave(105 * PS) == pytest.approx(0.6)

    def test_raised_cosine_is_smooth_at_ends(self):
        wave = EdgeTrain([(100 * PS, 1)], vdd=0.8, edge_time=20 * PS)
        h = 0.01 * PS
        slope_start = (wave(90 * PS + h) - wave(90 * PS - h)) / (2 * h)
        assert abs(slope_start) < 0.8 / (20 * PS) * 0.01

    def test_pulse(self):
        wave = EdgeTrain([(100 * PS, 1), (200 * PS, 0)], vdd=0.8,
                         edge_time=20 * PS)
        assert wave(150 * PS) == pytest.approx(0.8)
        assert wave(300 * PS) == pytest.approx(0.0)

    def test_overlapping_edges_stay_continuous(self):
        """Runt pulses: the second edge takes over mid-swing."""
        wave = EdgeTrain([(100 * PS, 1), (105 * PS, 0)], vdd=0.8,
                         edge_time=20 * PS)
        times = np.linspace(80 * PS, 130 * PS, 200)
        values = wave.sample(times)
        assert np.all(np.abs(np.diff(values)) < 0.05)
        assert max(values) < 0.8  # the runt never reaches the rail

    def test_breakpoints(self):
        wave = EdgeTrain([(100 * PS, 1)], vdd=0.8, edge_time=20 * PS)
        assert wave.breakpoints() == pytest.approx(
            [90 * PS, 100 * PS, 110 * PS])

    def test_empty_train_is_constant(self):
        wave = EdgeTrain([], vdd=0.8, edge_time=20 * PS, initial=1)
        assert wave(0.0) == 0.8
        assert wave(1e-9) == 0.8

    def test_bad_edge_time(self):
        with pytest.raises(ParameterError):
            EdgeTrain([], vdd=0.8, edge_time=0.0)

    def test_bad_shape(self):
        with pytest.raises(ParameterError):
            EdgeTrain([], vdd=0.8, edge_time=1e-12, shape="square")

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ParameterError):
            EdgeTrain([(1e-10, 1), (1e-10, 0)], vdd=0.8,
                      edge_time=1e-12)

    @given(st.integers(min_value=0, max_value=1))
    def test_values_bounded_by_rails(self, initial):
        wave = EdgeTrain([(100 * PS, 1 - initial)], vdd=0.8,
                         edge_time=30 * PS, initial=initial)
        values = wave.sample(np.linspace(0, 300 * PS, 100))
        assert np.all(values >= -1e-12)
        assert np.all(values <= 0.8 + 1e-12)
