"""Tests for repro.spice.dc and repro.spice.transient."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.spice.dc import dc_operating_point
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit
from repro.spice.technology import FINFET15, build_inverter
from repro.spice.transient import (TransientOptions, transient_analysis)
from repro.spice.waveforms import Dc, EdgeTrain, Pwl
from repro.units import PS


def rc_circuit(r=1e3, c=1e-12, v=1.0, wave=None) -> Circuit:
    circuit = Circuit("rc")
    circuit.voltage_source("V1", "in", "0", wave if wave is not None
                           else v)
    circuit.resistor("R1", "in", "out", r)
    circuit.capacitor("C1", "out", "0", c)
    return circuit


class TestDcOperatingPoint:
    def test_divider(self):
        circuit = Circuit("divider")
        circuit.voltage_source("Vin", "in", "0", 1.0)
        circuit.resistor("R1", "in", "mid", 1e3)
        circuit.resistor("R2", "mid", "0", 3e3)
        system = MnaSystem(circuit)
        x = dc_operating_point(system)
        assert system.voltages(x)["mid"] == pytest.approx(0.75,
                                                          abs=1e-6)

    def test_branch_current(self):
        circuit = Circuit("loop")
        circuit.voltage_source("V1", "a", "0", 2.0)
        circuit.resistor("R1", "a", "0", 1e3)
        system = MnaSystem(circuit)
        x = dc_operating_point(system)
        # Source current flows out of + terminal: -2 mA through branch.
        assert x[system.n] == pytest.approx(-2e-3, rel=1e-6)

    def test_inverter_logic_levels(self):
        tech = FINFET15
        for vin, expected in ((0.0, tech.vdd), (tech.vdd, 0.0)):
            circuit = build_inverter(tech, Dc(vin))
            system = MnaSystem(circuit)
            x = dc_operating_point(system)
            assert system.voltages(x)["o"] == pytest.approx(expected,
                                                            abs=1e-3)

    def test_inverter_vtc_monotone(self):
        tech = FINFET15
        outputs = []
        for vin in np.linspace(0.0, tech.vdd, 9):
            circuit = build_inverter(tech, Dc(float(vin)))
            system = MnaSystem(circuit)
            x = dc_operating_point(system)
            outputs.append(system.voltages(x)["o"])
        assert all(o2 <= o1 + 1e-6 for o1, o2 in zip(outputs,
                                                     outputs[1:]))

    def test_diode_connected_nmos(self):
        """Hand-checkable nonlinear DC solution."""
        from repro.spice.devices import MosfetModel
        model = MosfetModel(polarity="n", vt=0.3, k=200e-6, lam=0.0)
        circuit = Circuit("diode")
        circuit.voltage_source("V1", "top", "0", 0.8)
        circuit.resistor("R1", "top", "d", 10e3)
        circuit.mosfet("M1", "d", "d", "0", model)
        system = MnaSystem(circuit)
        x = dc_operating_point(system)
        vd = system.voltages(x)["d"]
        # KCL: (0.8 - vd)/10k = 0.5*k*(vd-0.3)^2
        residual = (0.8 - vd) / 10e3 - 0.5 * 200e-6 * (vd - 0.3) ** 2
        assert residual == pytest.approx(0.0, abs=1e-9)
        assert 0.3 < vd < 0.8


class TestTransientRc:
    def test_charging_matches_analytic(self):
        """RC step response vs 1 - e^{-t/RC}."""
        r, c = 1e3, 1e-12
        wave = Pwl([(0.0, 0.0), (1e-15, 1.0)])
        circuit = rc_circuit(r=r, c=c, wave=wave)
        options = TransientOptions(dt_initial=1e-15, dt_max=2e-11,
                                   reltol=1e-4, v_scale=1.0)
        result = transient_analysis(circuit, 5e-9, options)
        tau = r * c
        for t in (0.5e-9, 1e-9, 2e-9, 4e-9):
            expected = 1.0 - math.exp(-t / tau)
            assert result.value_at("out", t) == pytest.approx(
                expected, abs=2e-3)

    def test_dc_start_is_settled(self):
        result = transient_analysis(rc_circuit(v=1.0), 1e-10,
                                    TransientOptions())
        assert result.value_at("out", 0.0) == pytest.approx(1.0,
                                                            abs=1e-6)
        assert result.value_at("out", 1e-10) == pytest.approx(1.0,
                                                              abs=1e-6)

    def test_be_more_dissipative_than_trap(self):
        """Backward Euler under-shoots the exact exponential; trap is
        closer."""
        r, c = 1e3, 1e-12
        wave = Pwl([(0.0, 0.0), (1e-15, 1.0)])
        tau = r * c

        def max_error(method):
            options = TransientOptions(dt_initial=5e-12, dt_max=5e-12,
                                       reltol=1.0,  # fixed steps
                                       method=method, v_scale=1.0)
            result = transient_analysis(rc_circuit(r=r, c=c, wave=wave),
                                        5e-9, options)
            errors = []
            for t in np.linspace(0.1e-9, 4e-9, 20):
                exact = 1.0 - math.exp(-t / tau)
                errors.append(abs(result.value_at("out", t) - exact))
            return max(errors)

        assert max_error("trap") < max_error("be")

    def test_crossing_extraction(self):
        r, c = 1e3, 1e-12
        wave = Pwl([(0.0, 0.0), (1e-15, 1.0)])
        result = transient_analysis(rc_circuit(r=r, c=c, wave=wave),
                                    5e-9, TransientOptions())
        crossings = result.crossings("out", 0.5, direction=+1)
        assert len(crossings) == 1
        assert crossings[0] == pytest.approx(math.log(2.0) * r * c,
                                             rel=1e-3)

    def test_crossing_direction_filter(self):
        wave = Pwl([(0.0, 0.0), (1e-15, 1.0), (2.5e-9, 1.0),
                    (2.5e-9 + 1e-15, 0.0)])
        result = transient_analysis(rc_circuit(wave=wave), 6e-9,
                                    TransientOptions())
        ups = result.crossings("out", 0.5, direction=+1)
        downs = result.crossings("out", 0.5, direction=-1)
        assert len(ups) == 1
        assert len(downs) == 1
        assert ups[0] < downs[0]

    def test_breakpoints_are_hit(self):
        """A step in the middle of the run lands exactly on a sample."""
        wave = Pwl([(1e-9, 0.0), (1e-9 + 1e-15, 1.0)])
        result = transient_analysis(rc_circuit(wave=wave), 2e-9,
                                    TransientOptions())
        assert np.any(np.isclose(result.times, 1e-9, atol=1e-16))

    def test_statistics_present(self):
        result = transient_analysis(rc_circuit(), 1e-10,
                                    TransientOptions())
        assert result.statistics["steps"] > 0
        assert "newton_failures" in result.statistics

    def test_store_every(self):
        options_full = TransientOptions()
        options_thin = TransientOptions(store_every=4)
        full = transient_analysis(rc_circuit(), 1e-10, options_full)
        thin = transient_analysis(rc_circuit(), 1e-10, options_thin)
        assert len(thin.times) < len(full.times)
        assert thin.times[-1] == pytest.approx(full.times[-1])

    def test_invalid_options(self):
        with pytest.raises(SimulationError):
            TransientOptions(method="rk4")
        with pytest.raises(SimulationError):
            TransientOptions(dt_initial=1e-9, dt_max=1e-12)


class TestTransientEdgeTrain:
    def test_inverter_responds_to_edge(self):
        tech = FINFET15
        wave = EdgeTrain([(100 * PS, 1)], tech.vdd,
                         tech.input_edge_time)
        circuit = build_inverter(tech, wave)
        result = transient_analysis(circuit, 300 * PS,
                                    TransientOptions(v_scale=tech.vdd))
        assert result.value_at("o", 0.0) == pytest.approx(tech.vdd,
                                                          abs=1e-3)
        assert result.value_at("o", 300 * PS) == pytest.approx(
            0.0, abs=5e-3)
        crossings = result.crossings("o", tech.vth, direction=-1)
        assert len(crossings) == 1
        assert crossings[0] > 100 * PS
