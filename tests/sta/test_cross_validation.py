"""STA vs full event simulation — the subsystem's acceptance gate.

For single-switching scenarios on the paper's NOR circuits the
MIS-conditioned STA arrivals must coincide with the event-driven
hybrid-automaton simulation; the ISSUE acceptance bound is 0.1 ps
(observed agreement is at root-search tolerance, ≪ 1 fs).
"""

import math

import pytest

from repro.analysis.experiments import experiment_sta, sta_scenarios
from repro.core.parameters import PAPER_TABLE_I
from repro.library import CharacterizationJob, characterize_gate
from repro.sta import TimingNode, analyze, build_timing_graph
from repro.timing import (DigitalTrace, TableDelayChannel,
                          TimingCircuit, simulate)
from repro.units import PS

#: ISSUE acceptance bound for STA-vs-simulation agreement.
AGREEMENT_TOL = 0.1 * PS


class TestExperimentSta:
    @pytest.fixture(scope="class")
    def result(self):
        return experiment_sta()

    def test_acceptance_bound(self, result):
        assert result.max_error <= AGREEMENT_TOL

    def test_covers_all_circuits(self, result):
        circuits = {check.circuit for check in result.checks}
        assert circuits == {"nor2", "chain", "tree", "nor3",
                            "nor3_mixed"}

    def test_covers_both_directions(self, result):
        nodes = " ".join(check.node for check in result.checks)
        assert "↑" in nodes and "↓" in nodes

    def test_rendering(self, result):
        assert "STA arrivals vs full event simulation" in result.text
        assert "acceptance" in result.text

    def test_scenarios_are_single_switching(self):
        for _name, _arrivals, traces in sta_scenarios():
            for trace in traces.values():
                assert len(trace.transitions) <= 1

    def test_engine_choice_is_equivalent(self):
        reference = experiment_sta(engine="reference")
        assert reference.max_error <= AGREEMENT_TOL


class TestTableBackedCrossValidation:
    def test_table_circuit_matches_table_simulation(self):
        """A NOR->NAND table circuit: STA arrivals equal the
        TableDelayChannel event scheduling exactly."""
        nor_table = characterize_gate(
            CharacterizationJob("nor2_t", PAPER_TABLE_I, "nor2"))
        nand_table = characterize_gate(
            CharacterizationJob("nand2_t", PAPER_TABLE_I, "nand2"))
        circuit = TimingCircuit(["a", "b", "c"])
        circuit.add_mis_gate("g0", "a", "b", "n1",
                             TableDelayChannel(nor_table))
        circuit.add_mis_gate("g1", "n1", "c", "y",
                             TableDelayChannel(nand_table))
        graph = build_timing_graph(circuit)

        t0 = 100.0 * PS
        inf = math.inf
        result = analyze(graph,
                         arrivals={"a": (t0, -inf),
                                   "b": (t0 + 7.0 * PS, -inf),
                                   "c": (-inf, inf)})
        traces = {"a": DigitalTrace(0, [(t0, 1)]),
                  "b": DigitalTrace(0, [(t0 + 7.0 * PS, 1)]),
                  "c": DigitalTrace(1, [])}
        simulated = simulate(circuit, traces)
        for signal in ("n1", "y"):
            for time, value in simulated[signal].transitions:
                node = TimingNode(signal,
                                  "rise" if value == 1 else "fall")
                assert result.arrivals[node] == pytest.approx(
                    time, abs=1e-15)
