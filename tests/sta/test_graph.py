"""Timing-graph lowering: arc structure, unateness, overrides."""

import pytest

from repro.core.parameters import PAPER_TABLE_I
from repro.errors import NetlistError
from repro.library import CharacterizationJob, characterize_gate
from repro.sta import (FixedArcModel, TimingNode, build_timing_graph,
                       input_unateness, nor_chain, nor_tree,
                       single_nor, sta_circuit)
from repro.timing import (PureDelayChannel, TableDelayChannel,
                          TimingCircuit)
from repro.timing.channels.hybrid import HybridNorChannel
from repro.units import PS


class TestHybridLowering:
    def test_single_nor_structure(self):
        graph = build_timing_graph(single_nor())
        # 2 transitions x 2 pins = 4 MIS arcs.
        assert len(graph.arcs) == 4
        assert all(arc.is_mis for arc in graph.arcs)
        assert graph.endpoints == ("y",)
        assert graph.signal_order == ["y"]

    def test_references_follow_the_paper(self):
        graph = build_timing_graph(single_nor())
        by_target = {}
        for arc in graph.arcs:
            by_target.setdefault(arc.target.transition, set()).add(
                arc.reference)
        # NOR: falling output through the parallel nMOS pair is
        # referenced to the earlier input; rising through the series
        # stack to the later one.
        assert by_target["fall"] == {"earlier"}
        assert by_target["rise"] == {"later"}

    def test_negative_unate_transitions(self):
        graph = build_timing_graph(single_nor())
        for arc in graph.arcs:
            assert arc.source.transition != arc.target.transition

    def test_tied_inputs_deduplicate(self):
        graph = build_timing_graph(nor_chain(stages=2))
        # One arc per output transition per stage.
        assert len(graph.arcs) == 4
        assert all(arc.sibling == arc.source for arc in graph.arcs)

    def test_tree_topology(self):
        graph = build_timing_graph(nor_tree())
        assert len(graph.arcs) == 12
        assert graph.endpoints == ("y",)
        order = graph.signal_order
        assert order.index("n1") < order.index("y")
        assert order.index("n2") < order.index("y")

    def test_mis_pairs_grouping(self):
        graph = build_timing_graph(nor_tree())
        pairs = graph.mis_pairs()
        assert len(pairs) == 6  # 3 gates x 2 transitions
        assert all(len(pair) == 2 for pair in pairs)
        for pair in pairs:
            assert {arc.pin for arc in pair} == {"a", "b"}


class TestTableLowering:
    @pytest.fixture(scope="class")
    def nand_table(self):
        return characterize_gate(
            CharacterizationJob("nand2_t", PAPER_TABLE_I, "nand2"))

    def test_nand_table_references_are_mirrored(self, nand_table):
        circuit = TimingCircuit(["a", "b"])
        circuit.add_mis_gate("g0", "a", "b", "y",
                             TableDelayChannel(nand_table))
        graph = build_timing_graph(circuit)
        by_target = {}
        for arc in graph.arcs:
            by_target.setdefault(arc.target.transition, set()).add(
                arc.reference)
        # NAND rises through the parallel pMOS pair (earlier) and
        # falls through the series nMOS stack (later).
        assert by_target["rise"] == {"earlier"}
        assert by_target["fall"] == {"later"}
        assert all(arc.model.name == "table" for arc in graph.arcs)

    def test_mis_gate_rejects_single_input_channel(self):
        circuit = TimingCircuit(["a", "b"])
        with pytest.raises(NetlistError):
            circuit.add_mis_gate("g0", "a", "b", "y",
                                 PureDelayChannel(5.0 * PS))


class TestGenericGates:
    def test_inverter_is_negative_unate(self):
        circuit = TimingCircuit(["a"])
        circuit.add_gate("i0", "inv", ["a"], "y",
                         PureDelayChannel(5.0 * PS))
        graph = build_timing_graph(circuit)
        assert len(graph.arcs) == 2
        for arc in graph.arcs:
            assert not arc.is_mis
            assert arc.source.transition != arc.target.transition

    def test_and_is_positive_unate(self):
        circuit = TimingCircuit(["a", "b"])
        circuit.add_gate("g0", "and", ["a", "b"], "y",
                         PureDelayChannel(5.0 * PS))
        graph = build_timing_graph(circuit)
        assert len(graph.arcs) == 4
        for arc in graph.arcs:
            assert arc.source.transition == arc.target.transition

    def test_xor_is_binate(self):
        circuit = TimingCircuit(["a", "b"])
        circuit.add_gate("g0", "xor", ["a", "b"], "y",
                         PureDelayChannel(5.0 * PS))
        graph = build_timing_graph(circuit)
        # 2 inputs x 2 senses x 2 output transitions.
        assert len(graph.arcs) == 8

    def test_unateness_probe(self):
        import repro.timing.gates as gates
        assert input_unateness(gates.GATE_FUNCTIONS["and"], 2, 0) \
            == {"positive"}
        assert input_unateness(gates.GATE_FUNCTIONS["nor"], 2, 1) \
            == {"negative"}
        assert input_unateness(gates.GATE_FUNCTIONS["xor"], 2, 0) \
            == {"positive", "negative"}

    def test_mixed_circuit(self):
        circuit = TimingCircuit(["a", "b"])
        circuit.add_hybrid_nor("g0", "a", "b", "n1",
                               HybridNorChannel(PAPER_TABLE_I))
        circuit.add_gate("i0", "inv", ["n1"], "y",
                         PureDelayChannel(5.0 * PS))
        graph = build_timing_graph(circuit)
        kinds = {arc.model.name for arc in graph.arcs}
        assert kinds == {"engine", "fixed"}
        assert graph.endpoints == ("y",)


class TestOverridesAndErrors:
    def test_unknown_override_rejected(self):
        with pytest.raises(NetlistError, match="unknown instance"):
            build_timing_graph(single_nor(),
                               models={"nope": FixedArcModel(0.0, 0.0)})

    def test_override_replaces_model(self):
        override = FixedArcModel(9.0 * PS, 9.0 * PS)
        graph = build_timing_graph(single_nor(),
                                   models={"g0": override})
        assert all(arc.model is override for arc in graph.arcs)

    def test_unknown_circuit_name(self):
        with pytest.raises(ValueError, match="available"):
            sta_circuit("not-a-circuit")

    def test_nodes_enumeration(self):
        graph = build_timing_graph(single_nor())
        nodes = graph.nodes()
        assert TimingNode("a", "rise") in nodes
        assert TimingNode("y", "fall") in nodes
        assert len(nodes) == 6
