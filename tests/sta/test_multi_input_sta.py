"""n-input STA arcs: Δ-vector conditioning, per-sibling ±inf, corner
sweeps, and the ISSUE-4 cross-validation acceptance."""

import math

import numpy as np
import pytest

from repro.core import PAPER_TABLE_I
from repro.core.multi_input import paper_generalized
from repro.errors import ParameterError
from repro.library import CharacterizationJob, characterize_gate
from repro.sta import (EngineArcModel, TableArcModel, TimingNode,
                       analyze, build_timing_graph, demo_corners,
                       sta_circuit, sweep_corners,
                       sweep_corners_scalar)
from repro.timing.channels import TableDelayChannel
from repro.timing.circuit import TimingCircuit
from repro.timing.simulator import simulate
from repro.timing.trace import DigitalTrace
from repro.units import PS

#: ISSUE-4 acceptance: STA vs full event simulation on NOR3 circuits.
CROSS_TOL = 0.1 * PS


@pytest.fixture(scope="module")
def p3():
    return paper_generalized(3)


def _cross_validate(circuit, arrivals, traces):
    """Compare every simulated transition against its STA arrival."""
    graph = build_timing_graph(circuit)
    result = analyze(graph, arrivals=arrivals, top_paths=1)
    simulated = simulate(circuit, traces)
    checked = 0
    for signal in graph.signal_order:
        for time, value in simulated[signal].transitions:
            node = TimingNode(signal,
                              "rise" if value == 1 else "fall")
            assert result.arrivals[node] == pytest.approx(
                time, abs=CROSS_TOL)
            checked += 1
    assert checked > 0
    return result


class TestCrossValidation:
    def test_nor3_falling(self):
        t0 = 100 * PS
        circuit = sta_circuit("nor3")
        _cross_validate(
            circuit,
            {"a": (t0, -math.inf), "b": (t0 + 9 * PS, -math.inf),
             "c": (t0 + 21 * PS, -math.inf)},
            {"a": DigitalTrace(0, [(t0, 1)]),
             "b": DigitalTrace(0, [(t0 + 9 * PS, 1)]),
             "c": DigitalTrace(0, [(t0 + 21 * PS, 1)])})

    def test_nor3_rising(self):
        t0 = 100 * PS
        circuit = sta_circuit("nor3")
        result = _cross_validate(
            circuit,
            {"a": (math.inf, t0), "b": (math.inf, t0 + 6 * PS),
             "c": (math.inf, t0 + 13 * PS)},
            {"a": DigitalTrace(1, [(t0, 0)]),
             "b": DigitalTrace(1, [(t0 + 6 * PS, 0)]),
             "c": DigitalTrace(1, [(t0 + 13 * PS, 0)])})
        # The critical path carries the full Δ-vector breakdown.
        step = result.critical_path.steps[-1]
        assert isinstance(step.delta, tuple)
        assert len(step.delta) == 2

    def test_nor3_mixed_circuit(self):
        t0 = 100 * PS
        circuit = sta_circuit("nor3_mixed")
        _cross_validate(
            circuit,
            {"a": (t0, -math.inf), "b": (t0 + 9 * PS, -math.inf),
             "c": (t0 + 21 * PS, -math.inf),
             "d": (t0 + 3 * PS, -math.inf)},
            {"a": DigitalTrace(0, [(t0, 1)]),
             "b": DigitalTrace(0, [(t0 + 9 * PS, 1)]),
             "c": DigitalTrace(0, [(t0 + 21 * PS, 1)]),
             "d": DigitalTrace(0, [(t0 + 3 * PS, 1)])})

    def test_sibling_never_switches(self):
        t0 = 100 * PS
        circuit = sta_circuit("nor3")
        result = _cross_validate(
            circuit,
            {"a": (t0, -math.inf), "b": (t0 + 9 * PS, -math.inf),
             "c": (math.inf, math.inf)},
            {"a": DigitalTrace(0, [(t0, 1)]),
             "b": DigitalTrace(0, [(t0 + 9 * PS, 1)]),
             "c": DigitalTrace(0, [])})
        # c never falls, so the output can never rise.
        assert result.arrivals[TimingNode("y", "rise")] == math.inf


class TestGraphStructure:
    def test_nor3_arcs(self, p3):
        graph = build_timing_graph(sta_circuit("nor3"))
        mis = [arc for arc in graph.arcs if arc.is_mis]
        assert len(mis) == 6  # 3 pins x 2 output transitions
        for arc in mis:
            assert len(arc.siblings) == 2
            assert len(arc.pin_nodes) == 3
            assert arc.pin.startswith("p")
            assert arc.sibling is None  # 2-input accessor only
        groups = graph.mis_pairs()
        assert sorted(len(group) for group in groups) == [3, 3]

    def test_two_input_arcs_unchanged(self):
        graph = build_timing_graph(sta_circuit("nor2"))
        for arc in graph.arcs:
            assert arc.pin in ("a", "b")
            assert arc.sibling is not None
            assert len(arc.pin_nodes) == 2

    def test_engine_arc_gate_param_consistency(self, p3):
        with pytest.raises(ParameterError):
            EngineArcModel(PAPER_TABLE_I, "nor3")
        with pytest.raises(ParameterError):
            EngineArcModel(p3, "nor2")
        model = EngineArcModel(p3, "nor3")
        with pytest.raises(ParameterError):
            model.delays("falling", np.zeros(3))
        grid = np.zeros((2, 2))
        assert model.delays_n("falling", grid).shape == (2,)

    def test_corner_widening(self, p3):
        """2-input corner sets re-target n-input arcs through the
        paper_generalized extrapolation."""
        model = EngineArcModel(p3, "nor3")
        corner = PAPER_TABLE_I.replace(r3=50e3)
        widened = model.delays_n("falling", np.zeros((1, 2)),
                                 params=corner)
        direct = EngineArcModel(paper_generalized(3, corner),
                                "nor3").delays_n("falling",
                                                 np.zeros((1, 2)))
        assert widened == pytest.approx(direct, abs=0.0)


class TestCornerSweeps:
    def test_vectorized_matches_scalar(self):
        graph = build_timing_graph(sta_circuit("nor3_mixed"))
        params, arrivals = demo_corners(48, ["b", "d"], seed=5)
        fast = sweep_corners(graph, params=params, arrivals=arrivals)
        slow = sweep_corners_scalar(graph, params=params,
                                    arrivals=arrivals)
        worst = 0.0
        for node, values in fast.arrivals.items():
            other = slow.arrivals[node]
            finite = np.isfinite(values) & np.isfinite(other)
            if finite.any():
                worst = max(worst, float(np.max(np.abs(
                    values[finite] - other[finite]))))
        assert worst <= 1e-15

    def test_arrival_axis_only(self):
        graph = build_timing_graph(sta_circuit("nor3"))
        sweep = sweep_corners(
            graph, arrivals={"b": np.linspace(0.0, 40 * PS, 16)})
        node = TimingNode("y", "fall")
        assert sweep.arrivals[node].shape == (16,)
        assert np.all(np.isfinite(sweep.arrivals[node]))


class TestTableArcs:
    @pytest.fixture(scope="class")
    def nor3_table(self, p3):
        axis = tuple(np.linspace(-80 * PS, 80 * PS, 41))
        return characterize_gate(
            CharacterizationJob("nor3_t", p3, "nor3", deltas=axis))

    def test_table_graph_tracks_engine_graph(self, nor3_table):
        circuit = TimingCircuit(["a", "b", "c"])
        circuit.add_mis_gate("g0", ["a", "b", "c"], "y",
                             TableDelayChannel(nor3_table))
        graph = build_timing_graph(circuit)
        assert all(isinstance(arc.model, TableArcModel)
                   for arc in graph.arcs)
        arrivals = {"a": (0.0, -math.inf), "b": (7 * PS, -math.inf),
                    "c": (13 * PS, -math.inf)}
        table_result = analyze(graph, arrivals=arrivals)
        engine_result = analyze(
            build_timing_graph(sta_circuit("nor3")),
            arrivals=arrivals)
        node = TimingNode("y", "fall")
        assert table_result.arrivals[node] == pytest.approx(
            engine_result.arrivals[node], abs=2.0 * PS)

    def test_vector_table_arc_entry_points(self, nor3_table, p3):
        model = TableArcModel(nor3_table)
        assert model.num_inputs == 3
        with pytest.raises(ParameterError):
            model.delays("falling", np.zeros(4))
        grid = np.zeros((3, 2))
        expected = nor3_table.falling.delays_at(grid)
        assert np.array_equal(model.delays_n("falling", grid),
                              expected)
        with pytest.raises(ParameterError):
            model.delays_n("falling", grid,
                           params=paper_generalized(3,
                                                    PAPER_TABLE_I
                                                    .replace(
                                                        r1=1e3)))
