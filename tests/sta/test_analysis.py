"""Arrival propagation, slack, and critical-path extraction."""

import math

import pytest

from repro.core.hybrid_model import HybridNorModel
from repro.core.parameters import PAPER_TABLE_I
from repro.errors import ParameterError
from repro.sta import (TimingNode, analyze, build_timing_graph,
                       nor_tree, single_nor)
from repro.units import PS

INF = math.inf


@pytest.fixture(scope="module")
def nor_graph():
    return build_timing_graph(single_nor())


@pytest.fixture(scope="module")
def tree_graph():
    return build_timing_graph(nor_tree())


@pytest.fixture(scope="module")
def model():
    return HybridNorModel(PAPER_TABLE_I)


class TestSingleNor:
    def test_falling_matches_model(self, nor_graph, model):
        t_a, t_b = 100.0 * PS, 110.0 * PS
        result = analyze(nor_graph,
                         arrivals={"a": (t_a, -INF),
                                   "b": (t_b, -INF)})
        expected = min(t_a, t_b) + model.delay_falling(t_b - t_a)
        assert result.arrivals[TimingNode("y", "fall")] \
            == pytest.approx(expected, abs=1e-18)

    def test_rising_matches_model(self, nor_graph, model):
        t_a, t_b = 100.0 * PS, 104.0 * PS
        result = analyze(nor_graph,
                         arrivals={"a": (INF, t_a),
                                   "b": (INF, t_b)})
        expected = max(t_a, t_b) + model.delay_rising(t_b - t_a)
        assert result.arrivals[TimingNode("y", "rise")] \
            == pytest.approx(expected, abs=1e-18)

    def test_delta_sign_convention(self, nor_graph, model):
        """Δ = t_B − t_A: swapping arrival order changes the delay."""
        early_a = analyze(nor_graph, arrivals={"a": (0.0, -INF),
                                               "b": (30.0 * PS, -INF)})
        early_b = analyze(nor_graph, arrivals={"a": (30.0 * PS, -INF),
                                               "b": (0.0, -INF)})
        fall = TimingNode("y", "fall")
        assert early_a.arrivals[fall] == pytest.approx(
            model.delay_falling(30.0 * PS), abs=1e-18)
        assert early_b.arrivals[fall] == pytest.approx(
            model.delay_falling(-30.0 * PS), abs=1e-18)

    def test_constant_sibling_is_the_sis_edge(self, nor_graph, model):
        """A never-rising sibling puts the arc on δ(+∞)."""
        t_a = 50.0 * PS
        result = analyze(nor_graph,
                         arrivals={"a": (t_a, -INF),
                                   "b": (INF, -INF)})
        expected = t_a + model.delay_falling(INF)
        assert result.arrivals[TimingNode("y", "fall")] \
            == pytest.approx(expected, abs=1e-18)

    def test_never_switching_inputs_never_switch_output(self,
                                                        nor_graph):
        result = analyze(nor_graph, arrivals={"a": (INF, -INF),
                                              "b": (INF, -INF)})
        assert result.arrivals[TimingNode("y", "fall")] == INF
        # Falls long ago (inputs rose long ago is false — they never
        # rose; the rise side fell long ago).
        assert result.arrivals[TimingNode("y", "rise")] == -INF


class TestTree:
    def test_default_arrivals(self, tree_graph, model):
        result = analyze(tree_graph)
        inner = model.delay_falling(0.0)
        outer = model.delay_rising(0.0)
        assert result.arrivals[TimingNode("y", "rise")] \
            == pytest.approx(inner + outer, abs=1e-18)

    def test_staggered_arrivals_condition_every_level(self, tree_graph,
                                                      model):
        arrivals = {"a": 0.0, "b": 8.0 * PS, "c": 12.0 * PS,
                    "d": 20.0 * PS}
        result = analyze(tree_graph, arrivals=arrivals)
        n1_fall = model.delay_falling(8.0 * PS)
        n2_fall = 12.0 * PS + model.delay_falling(8.0 * PS)
        assert result.arrivals[TimingNode("n1", "fall")] \
            == pytest.approx(n1_fall, abs=1e-18)
        assert result.arrivals[TimingNode("n2", "fall")] \
            == pytest.approx(n2_fall, abs=1e-18)
        delta = n2_fall - n1_fall
        expected = max(n1_fall, n2_fall) + model.delay_rising(delta)
        assert result.arrivals[TimingNode("y", "rise")] \
            == pytest.approx(expected, abs=1e-18)

    def test_min_mode_bounds_max_mode(self, tree_graph):
        arrivals = {"a": (0.0, 5.0 * PS), "b": (3.0 * PS, 9.0 * PS),
                    "c": (1.0 * PS, 2.0 * PS), "d": (4.0 * PS, 0.0)}
        late = analyze(tree_graph, arrivals=arrivals, mode="max")
        early = analyze(tree_graph, arrivals=arrivals, mode="min")
        for node, value in late.arrivals.items():
            assert early.arrivals[node] <= value + 1e-18


class TestRequiredAndSlack:
    def test_endpoint_slack(self, tree_graph):
        required = 200.0 * PS
        result = analyze(tree_graph, required=required)
        rise = TimingNode("y", "rise")
        assert result.slacks[rise] == pytest.approx(
            required - result.arrivals[rise], abs=1e-18)
        assert result.worst_slack == pytest.approx(
            required - max(result.arrivals[n]
                           for n in result.endpoint_nodes()),
            abs=1e-18)

    def test_slack_propagates_to_inputs(self, tree_graph):
        result = analyze(tree_graph, required=200.0 * PS)
        # Along the critical path the slack is constant; inputs on it
        # carry the worst slack.
        path = result.critical_path
        assert path is not None
        assert result.slacks[path.source] == pytest.approx(
            result.worst_slack, abs=1e-18)

    def test_per_endpoint_required(self, tree_graph):
        result = analyze(tree_graph, required={"y": 150.0 * PS})
        assert math.isfinite(result.worst_slack)

    def test_unconstrained_slack_is_inf(self, tree_graph):
        result = analyze(tree_graph)
        assert result.worst_slack == INF

    def test_required_rejects_non_endpoint(self, tree_graph):
        with pytest.raises(ParameterError, match="non-endpoint"):
            analyze(tree_graph, required={"n1": 100.0 * PS})

    def test_min_mode_slack_is_hold_signed(self, nor_graph, model):
        """min mode: required is the *earliest allowed* arrival, so
        slack = arrival − required (positive = met)."""
        arrivals = {"a": (100.0 * PS, -INF), "b": (110.0 * PS, -INF)}
        earliest = min(100.0 * PS, 110.0 * PS) \
            + model.delay_falling(10.0 * PS)
        met = analyze(nor_graph, arrivals=arrivals,
                      required=earliest - 10.0 * PS, mode="min")
        fall = TimingNode("y", "fall")
        assert met.slacks[fall] == pytest.approx(10.0 * PS,
                                                 abs=1e-16)
        assert met.worst_slack > 0.0
        violated = analyze(nor_graph, arrivals=arrivals,
                           required=earliest + 5.0 * PS, mode="min")
        assert violated.slacks[fall] == pytest.approx(-5.0 * PS,
                                                      abs=1e-16)
        assert violated.critical_path.slack == pytest.approx(
            -5.0 * PS, abs=1e-16)


class TestPaths:
    def test_ranked_descending(self, tree_graph):
        result = analyze(tree_graph,
                         arrivals={"a": 0.0, "b": 8.0 * PS,
                                   "c": 12.0 * PS, "d": 20.0 * PS},
                         top_paths=8)
        arrivals = [path.arrival for path in result.paths]
        assert arrivals == sorted(arrivals, reverse=True)
        assert len(result.paths) == 8

    def test_critical_path_reaches_endpoint_arrival(self, tree_graph):
        result = analyze(tree_graph,
                         arrivals={"a": 0.0, "b": 8.0 * PS,
                                   "c": 12.0 * PS, "d": 20.0 * PS})
        path = result.critical_path
        worst = max(result.arrivals[node]
                    for node in result.endpoint_nodes())
        assert path.arrival == pytest.approx(worst, abs=1e-18)
        assert path.steps[-1].arrival == pytest.approx(path.arrival,
                                                       abs=1e-18)

    def test_steps_are_contiguous(self, tree_graph):
        result = analyze(tree_graph, top_paths=5)
        for path in result.paths:
            assert path.steps[0].arc.source == path.source
            for first, second in zip(path.steps, path.steps[1:]):
                assert first.arc.target == second.arc.source
            assert path.steps[-1].arc.target == path.endpoint

    def test_mis_steps_record_delta_and_delay(self, tree_graph, model):
        result = analyze(tree_graph,
                         arrivals={"a": 0.0, "b": 8.0 * PS,
                                   "c": 0.0, "d": 0.0})
        step = result.critical_path.steps[0]
        assert step.arc.is_mis
        assert abs(step.delta) in (0.0, 8.0 * PS)
        assert step.delay == pytest.approx(
            model.delay_falling(step.delta), abs=1e-18)

    def test_top_zero_skips_extraction(self, tree_graph):
        assert analyze(tree_graph, top_paths=0).paths == ()

    def test_describe_renders(self, tree_graph):
        result = analyze(tree_graph, required=200.0 * PS)
        text = result.critical_path.describe()
        assert "Δ" in text
        assert "slack" in text


class TestValidation:
    def test_unknown_arrival_signal(self, nor_graph):
        with pytest.raises(ParameterError, match="non-input"):
            analyze(nor_graph, arrivals={"zz": 0.0})

    def test_non_tuple_pair_spec_rejected(self, nor_graph):
        """Lists are not (rise, fall) pairs — in sweeps they mean a
        corner axis, so analyze rejects them instead of silently
        diverging from sweep_corners."""
        with pytest.raises(ParameterError, match="tuple"):
            analyze(nor_graph, arrivals={"a": [0.0, 5.0 * PS]})

    def test_bad_mode(self, nor_graph):
        with pytest.raises(ParameterError, match="mode"):
            analyze(nor_graph, mode="typ")

    def test_to_dict_is_strict_json(self, tree_graph):
        """Unconstrained (±inf) times serialize as null, never as
        the non-RFC 'Infinity' token."""
        import json
        result = analyze(tree_graph, required=200.0 * PS)
        rendered = json.dumps(result.to_dict(), allow_nan=False)
        assert "Infinity" not in rendered
        payload = json.loads(rendered)
        assert payload["mode"] == "max"
        assert payload["endpoints"] == ["y"]
        assert len(payload["paths"]) == len(result.paths)
        assert payload["paths"][0]["steps"]
        # Unconstrained run: every non-finite slot must be null.
        free = analyze(tree_graph)
        json.dumps(free.to_dict(), allow_nan=False)
