"""Arc delay models: engine/table/fixed parity and contracts."""

import math

import numpy as np
import pytest

from repro.core.duality import HybridNandModel
from repro.core.hybrid_model import HybridNorModel
from repro.core.parameters import PAPER_TABLE_I
from repro.errors import ParameterError
from repro.library import CharacterizationJob, characterize_gate
from repro.sta import (ArcDelayModel, EngineArcModel, FixedArcModel,
                       TableArcModel)
from repro.timing import (ExpChannel, InertialDelayChannel,
                          PureDelayChannel)
from repro.units import PS

DELTAS = np.array([-math.inf, -40.0 * PS, -5.0 * PS, 0.0, 5.0 * PS,
                   40.0 * PS, math.inf])


@pytest.fixture(scope="module")
def nor_table():
    job = CharacterizationJob("nor2_t", PAPER_TABLE_I, "nor2")
    return characterize_gate(job)


@pytest.fixture(scope="module")
def nand_table():
    job = CharacterizationJob("nand2_t", PAPER_TABLE_I, "nand2")
    return characterize_gate(job)


class TestEngineArcModel:
    def test_nor_matches_model(self):
        arc = EngineArcModel(PAPER_TABLE_I, "nor2")
        model = HybridNorModel(PAPER_TABLE_I)
        falling = arc.delays("falling", DELTAS)
        rising = arc.delays("rising", DELTAS)
        for i, delta in enumerate(DELTAS):
            assert falling[i] == pytest.approx(
                model.delay_falling(delta), abs=1e-15)
            assert rising[i] == pytest.approx(
                model.delay_rising(delta, 0.0), abs=1e-15)

    def test_nand_matches_duality_model(self):
        arc = EngineArcModel(PAPER_TABLE_I, "nand2")
        nand = HybridNandModel(PAPER_TABLE_I)
        falling = arc.delays("falling", DELTAS)
        rising = arc.delays("rising", DELTAS)
        for i, delta in enumerate(DELTAS):
            # Default state is the mirrored worst case V_M = VDD.
            assert falling[i] == pytest.approx(
                nand.delay_falling(delta), abs=1e-15)
            assert rising[i] == pytest.approx(
                nand.delay_rising(delta), abs=1e-15)

    def test_state_override(self):
        vdd = PAPER_TABLE_I.vdd
        worst = EngineArcModel(PAPER_TABLE_I, "nor2")
        mid = EngineArcModel(PAPER_TABLE_I, "nor2", state=vdd / 2.0)
        model = HybridNorModel(PAPER_TABLE_I)
        assert mid.delays("rising", [0.0])[0] == pytest.approx(
            model.delay_rising(0.0, vdd / 2.0), abs=1e-15)
        assert (worst.delays("rising", [0.0])[0]
                != mid.delays("rising", [0.0])[0])

    def test_params_retargeting(self):
        arc = EngineArcModel(PAPER_TABLE_I, "nor2")
        assert arc.retargetable
        slow = PAPER_TABLE_I.replace(r3=2.0 * PAPER_TABLE_I.r3,
                                     r4=2.0 * PAPER_TABLE_I.r4)
        base = arc.delays("falling", [0.0])[0]
        retargeted = arc.delays("falling", [0.0], params=slow)[0]
        assert retargeted > base
        assert retargeted == pytest.approx(
            HybridNorModel(slow).delay_falling(0.0), abs=1e-15)

    def test_rejects_unknown_gate(self):
        with pytest.raises(ParameterError):
            EngineArcModel(PAPER_TABLE_I, "xor2")

    def test_satisfies_protocol(self):
        assert isinstance(EngineArcModel(PAPER_TABLE_I),
                          ArcDelayModel)


class TestTableArcModel:
    def test_matches_table_lookup(self, nor_table):
        arc = TableArcModel(nor_table)
        finite = DELTAS[np.isfinite(DELTAS)]
        np.testing.assert_allclose(
            arc.delays("falling", finite),
            nor_table.falling.delays_at(finite, 0.0), atol=0.0)
        np.testing.assert_allclose(
            arc.delays("rising", finite),
            nor_table.rising.delays_at(finite, 0.0), atol=0.0)

    def test_nand_default_state_is_vdd(self, nand_table):
        arc = TableArcModel(nand_table)
        assert arc.state == PAPER_TABLE_I.vdd
        assert arc.gate == "nand2"

    def test_close_to_engine(self, nor_table):
        """Table lookups track direct evaluation to the library's
        interpolation bound."""
        table_arc = TableArcModel(nor_table)
        engine_arc = EngineArcModel(PAPER_TABLE_I, "nor2")
        for direction in ("falling", "rising"):
            difference = np.abs(table_arc.delays(direction, DELTAS)
                                - engine_arc.delays(direction, DELTAS))
            assert float(difference.max()) <= 0.1 * PS

    def test_rejects_foreign_params(self, nor_table):
        arc = TableArcModel(nor_table)
        assert not arc.retargetable
        with pytest.raises(ParameterError, match="re-target"):
            arc.delays("falling", [0.0],
                       params=PAPER_TABLE_I.replace(r3=1.0))
        # The table's own params are fine (no-op override).
        arc.delays("falling", [0.0], params=PAPER_TABLE_I)

    def test_rejects_bad_direction(self, nor_table):
        with pytest.raises(ParameterError):
            TableArcModel(nor_table).delays("sideways", [0.0])


class TestFixedArcModel:
    def test_constant_broadcast(self):
        arc = FixedArcModel(delay_rise=5.0 * PS, delay_fall=3.0 * PS)
        out = arc.delays("rising", np.zeros((2, 3)))
        assert out.shape == (2, 3)
        assert np.all(out == 5.0 * PS)
        assert np.all(arc.delays("falling", [0.0]) == 3.0 * PS)

    def test_from_pure_channel(self):
        channel = PureDelayChannel(7.0 * PS, 4.0 * PS)
        arc = FixedArcModel.from_channel(channel)
        assert arc.delay_rise == 7.0 * PS
        assert arc.delay_fall == 4.0 * PS

    def test_from_inertial_channel(self):
        arc = FixedArcModel.from_channel(InertialDelayChannel(6.0 * PS))
        assert arc.delay_rise == arc.delay_fall == 6.0 * PS

    def test_from_involution_channel(self):
        channel = ExpChannel(20.0 * PS, 24.0 * PS,
                             pure_delay=2.0 * PS)
        arc = FixedArcModel.from_channel(channel)
        assert arc.delay_rise == pytest.approx(20.0 * PS)
        assert arc.delay_fall == pytest.approx(24.0 * PS)

    def test_rejects_negative_delay(self):
        with pytest.raises(ParameterError):
            FixedArcModel(-1.0 * PS, 1.0 * PS)

    def test_rejects_bad_direction(self):
        with pytest.raises(ParameterError):
            FixedArcModel(1.0 * PS, 1.0 * PS).delays("up", [0.0])
