"""Vectorized corner sweeps: parity with the scalar loop."""

import math

import numpy as np
import pytest

from repro.core.parameters import PAPER_TABLE_I
from repro.errors import ParameterError
from repro.sta import (TableArcModel, TimingNode, analyze,
                       build_timing_graph, nor_tree, single_nor,
                       sweep_corners, sweep_corners_scalar)
from repro.units import PS


@pytest.fixture(scope="module")
def tree_graph():
    return build_timing_graph(nor_tree())


def _max_difference(left, right):
    worst = 0.0
    for node, values in left.arrivals.items():
        other = right.arrivals[node]
        finite = np.isfinite(values) & np.isfinite(other)
        assert np.array_equal(np.isfinite(values), np.isfinite(other))
        if finite.any():
            worst = max(worst, float(np.max(np.abs(
                values[finite] - other[finite]))))
    return worst


class TestParity:
    def test_arrival_scenarios(self, tree_graph):
        rng = np.random.default_rng(7)
        corners = 64
        arrivals = {
            "a": rng.uniform(0.0, 40.0 * PS, corners),
            "b": rng.uniform(0.0, 40.0 * PS, corners),
            "c": 5.0 * PS,
            "d": (rng.uniform(0.0, 20.0 * PS, corners),
                  rng.uniform(0.0, 20.0 * PS, corners)),
        }
        fast = sweep_corners(tree_graph, arrivals=arrivals)
        slow = sweep_corners_scalar(tree_graph, arrivals=arrivals)
        assert fast.corners == slow.corners == corners
        assert _max_difference(fast, slow) <= 1e-18

    def test_parameter_corners(self, tree_graph):
        scales = (0.8, 1.0, 1.25, 1.5)
        params = [PAPER_TABLE_I.replace(r3=PAPER_TABLE_I.r3 * s,
                                        co=PAPER_TABLE_I.co * s)
                  for s in scales]
        corners = [params[i % len(params)] for i in range(32)]
        fast = sweep_corners(tree_graph, params=corners)
        slow = sweep_corners_scalar(tree_graph, params=corners)
        assert _max_difference(fast, slow) <= 1e-18

    def test_joint_axes(self, tree_graph):
        rng = np.random.default_rng(3)
        corners = 24
        params = [PAPER_TABLE_I,
                  PAPER_TABLE_I.replace(r4=1.3 * PAPER_TABLE_I.r4)]
        axis = [params[i % 2] for i in range(corners)]
        arrivals = {"b": rng.uniform(0.0, 30.0 * PS, corners)}
        fast = sweep_corners(tree_graph, params=axis,
                             arrivals=arrivals)
        slow = sweep_corners_scalar(tree_graph, params=axis,
                                    arrivals=arrivals)
        assert _max_difference(fast, slow) <= 1e-18

    def test_single_corner_matches_analyze(self, tree_graph):
        arrivals = {"a": 0.0, "b": 8.0 * PS}
        sweep = sweep_corners(tree_graph, arrivals=arrivals)
        assert sweep.corners == 1
        scalar = analyze(tree_graph, arrivals=arrivals, top_paths=0)
        for node, value in scalar.arrivals.items():
            swept = float(sweep.arrivals[node][0])
            if math.isfinite(value):
                assert swept == pytest.approx(value, abs=1e-18)
            else:
                assert swept == value


class TestTableArcsInSweeps:
    def test_non_retargetable_arcs_ignore_params_axis(self):
        """Table/fixed arcs keep their characterized delays; the
        params axis only re-targets engine arcs."""
        from repro.library import (CharacterizationJob,
                                   characterize_gate)
        table = characterize_gate(
            CharacterizationJob("nor2_t", PAPER_TABLE_I, "nor2"))
        graph = build_timing_graph(
            single_nor(), models={"g0": TableArcModel(table)})
        slow_params = PAPER_TABLE_I.replace(r3=2.0 * PAPER_TABLE_I.r3)
        with_axis = sweep_corners(graph, params=[slow_params] * 4)
        without = sweep_corners(
            graph, arrivals={"a": np.zeros(4)})
        assert _max_difference(with_axis, without) == 0.0


class TestResultHelpers:
    def test_worst_arrival_and_slack(self, tree_graph):
        offsets = np.array([0.0, 10.0 * PS, 20.0 * PS])
        required = 150.0 * PS
        sweep = sweep_corners(tree_graph, arrivals={"b": offsets},
                              required=required)
        worst = sweep.worst_arrival()
        assert worst.shape == (3,)
        assert np.all(np.isfinite(worst))
        # Arrivals are monotone in the offset for this circuit.
        assert worst[0] <= worst[1] <= worst[2]
        slack = sweep.worst_slack()
        np.testing.assert_allclose(slack, required - worst, atol=0.0)

    def test_summary_statistics(self, tree_graph):
        sweep = sweep_corners(
            tree_graph,
            arrivals={"a": np.linspace(0.0, 30.0 * PS, 16)})
        stats = sweep.summary()
        assert stats["min"] <= stats["mean"] <= stats["p95"] \
            <= stats["max"]

    def test_unconstrained_slack(self, tree_graph):
        sweep = sweep_corners(tree_graph,
                              arrivals={"a": np.zeros(2)})
        assert np.all(np.isposinf(sweep.worst_slack()))

    def test_min_mode_worst_is_earliest(self, tree_graph):
        offsets = np.array([0.0, 10.0 * PS])
        late = sweep_corners(tree_graph, arrivals={"b": offsets},
                             mode="max", required=150.0 * PS)
        early = sweep_corners(tree_graph, arrivals={"b": offsets},
                              mode="min", required=50.0 * PS)
        assert np.all(early.worst_arrival()
                      <= late.worst_arrival() + 1e-18)
        # Hold-signed: arrivals beyond the earliest-allowed bound
        # give positive slack.
        np.testing.assert_allclose(
            early.worst_slack(),
            early.worst_arrival() - 50.0 * PS, atol=0.0)


class TestValidation:
    def test_mismatched_axes(self, tree_graph):
        with pytest.raises(ParameterError, match="broadcast"):
            sweep_corners(tree_graph,
                          params=[PAPER_TABLE_I] * 3,
                          arrivals={"a": np.zeros(5)})

    def test_unknown_arrival_signal(self, tree_graph):
        with pytest.raises(ParameterError, match="non-input"):
            sweep_corners(tree_graph, arrivals={"zz": 0.0})

    def test_empty_params_axis(self, tree_graph):
        with pytest.raises(ParameterError, match="empty"):
            sweep_corners(tree_graph, params=[])
