"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_tech_choices(self):
        args = build_parser().parse_args(["fig2", "--tech", "bulk65"])
        assert args.tech == "bulk65"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--tech", "tsmc3"])

    def test_fig7_options(self):
        args = build_parser().parse_args(
            ["fig7", "--transitions", "10", "--repetitions", "1"])
        assert args.transitions == 10
        assert args.repetitions == 1

    def test_engine_choices(self):
        args = build_parser().parse_args(["fig5", "--engine",
                                          "reference"])
        assert args.engine == "reference"
        args = build_parser().parse_args(["fig6"])
        assert args.engine == "vectorized"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--engine", "gpu"])

    def test_parallel_engine_selectable(self):
        args = build_parser().parse_args(["fig5", "--engine",
                                          "parallel"])
        assert args.engine == "parallel"

    def test_characterize_options(self):
        args = build_parser().parse_args(
            ["characterize", "--out", "x.json", "--core-points",
             "129", "--engine", "parallel"])
        assert args.out == "x.json"
        assert args.core_points == 129
        assert args.engine == "parallel"

    def test_library_accepts_optional_path(self):
        args = build_parser().parse_args(["library"])
        assert args.path is None
        args = build_parser().parse_args(
            ["library", "lib.json", "--cell", "nor2_paper",
             "--verify"])
        assert args.path == "lib.json"
        assert args.verify

    def test_sta_options(self):
        args = build_parser().parse_args(
            ["sta", "--circuit", "chain", "--required", "250",
             "--top", "2", "--corners", "64", "--json", "out.json"])
        assert args.circuit == "chain"
        assert args.required == 250.0
        assert args.top == 2
        assert args.corners == 64
        assert args.json == "out.json"
        args = build_parser().parse_args(["sta"])
        assert args.circuit == "tree"
        assert not args.validate


class TestVersion:
    """The single-sourced version surfaces (ISSUE 5 satellite)."""

    def test_version_subcommand(self, capsys):
        from repro._version import __version__
        assert main(["version"]) == 0
        assert capsys.readouterr().out == f"repro {__version__}\n"

    def test_version_flag(self, capsys):
        from repro._version import __version__
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out == f"repro {__version__}\n"

    def test_version_json(self, capsys):
        import json
        from repro._version import __version__
        assert main(["version", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["data"]["version"] == __version__

    def test_single_source(self):
        """No duplicated version strings: package == pyproject."""
        import pathlib
        import re
        from repro import __version__
        pyproject = (pathlib.Path(__file__).parents[1]
                     / "pyproject.toml").read_text()
        assert 'dynamic = ["version"]' in pyproject
        assert not re.search(r'(?m)^version\s*=\s*"', pyproject)
        from repro._version import __version__ as canonical
        assert __version__ == canonical


class TestDelay:
    def test_falling_scalar(self, capsys):
        assert main(["delay", "--delta", "10", "--delta", "0"]) == 0
        out = capsys.readouterr().out
        assert "nor2 falling MIS delays" in out
        assert "+10.00" in out

    def test_nor3_vector(self, capsys):
        assert main(["delay", "--gate", "nor3", "--delta",
                     "0,5", "--direction", "rising"]) == 0
        out = capsys.readouterr().out
        assert "nor3 rising MIS delays" in out

    def test_wrong_arity_is_a_cli_error(self, capsys):
        assert main(["delay", "--gate", "nor3", "--delta", "10"]) == 2
        assert "sibling offset" in capsys.readouterr().err

    def test_bad_delta_is_a_cli_error(self, capsys):
        assert main(["delay", "--delta", "ten"]) == 2
        assert "bad --delta" in capsys.readouterr().err


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig7", "table1", "faithfulness",
                     "delay", "version"):
            assert name in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "VO(1, 1)" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "delta_min = 18.00 ps" in out

    def test_analytic(self, capsys):
        assert main(["analytic"]) == 0
        assert "eq (8)" in capsys.readouterr().out

    def test_fig5_model_only(self, capsys):
        assert main(["fig5"]) == 0
        assert "Fig. 5" in capsys.readouterr().out

    def test_fig5_reference_engine_matches_vectorized(self, capsys):
        assert main(["fig5", "--engine", "reference"]) == 0
        reference = capsys.readouterr().out
        assert main(["fig5", "--engine", "vectorized"]) == 0
        vectorized = capsys.readouterr().out
        assert reference == vectorized

    def test_engines_command(self, capsys):
        assert main(["engines", "--points", "256"]) == 0
        out = capsys.readouterr().out
        assert "vectorized" in out
        assert "reference" in out
        assert "points/s" in out

    def test_faithfulness(self, capsys):
        assert main(["faithfulness"]) == 0
        assert "Short-pulse" in capsys.readouterr().out

    def test_characterize_then_inspect_round_trip(self, capsys,
                                                  tmp_path):
        """`repro characterize` -> JSON -> `repro library` inspect."""
        out_path = tmp_path / "gates.json"
        assert main(["characterize", "--out", str(out_path),
                     "--core-points", "129", "--state-points",
                     "3"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "nor2_paper" in out
        assert out_path.exists()

        assert main(["library", str(out_path)]) == 0
        listing = capsys.readouterr().out
        for cell in ("nor2_paper", "nor2_paper_no_dmin",
                     "nand2_paper", "nand2_paper_no_dmin"):
            assert cell in listing

        assert main(["library", str(out_path), "--cell",
                     "nand2_paper", "--verify"]) == 0
        detail = capsys.readouterr().out
        assert "delta_fall" in detail
        assert "verify" in detail

    def test_library_experiment_without_path(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        assert "Library characterization" in out
        assert "acceptance" in out

    def test_library_missing_file_is_a_cli_error(self, capsys,
                                                 tmp_path):
        assert main(["library", str(tmp_path / "nope.json")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_library_foreign_json_is_a_cli_error(self, capsys,
                                                 tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        assert main(["library", str(path)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_library_unknown_cell_lists_available(self, capsys,
                                                  tmp_path):
        out_path = tmp_path / "gates.json"
        assert main(["characterize", "--out", str(out_path),
                     "--core-points", "65", "--state-points",
                     "2"]) == 0
        capsys.readouterr()
        assert main(["library", str(out_path), "--cell",
                     "nroz"]) == 2
        assert "available" in capsys.readouterr().err


class TestSta:
    def test_report(self, capsys):
        assert main(["sta"]) == 0
        out = capsys.readouterr().out
        assert "STA report" in out
        assert "critical path" in out
        assert "Δ" in out

    def test_required_enables_slack(self, capsys):
        assert main(["sta", "--circuit", "nor2", "--required",
                     "200"]) == 0
        out = capsys.readouterr().out
        assert "worst slack" in out

    def test_corner_sweep_and_json(self, capsys, tmp_path):
        import json
        out_path = tmp_path / "sta.json"
        assert main(["sta", "--circuit", "chain", "--corners", "16",
                     "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "corner sweep: 16 corners" in out
        assert f"wrote {out_path}" in out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro.api/1"
        assert payload["kind"] == "sta_result"
        analysis = payload["data"]["analysis"]
        assert analysis["sweep"]["corners"] == 16
        assert len(analysis["sweep"]["worst_arrival_s"]) == 16
        assert analysis["paths"]

    def test_json_to_stdout_round_trips(self, capsys):
        from repro.api import StaRunResult, from_json
        assert main(["sta", "--circuit", "nor2", "--json"]) == 0
        out = capsys.readouterr().out
        result = from_json(out)
        assert isinstance(result, StaRunResult)
        assert result.circuit == "nor2"
        assert "STA report" in result.text

    def test_validate_runs_cross_check(self, capsys):
        assert main(["sta", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "event simulation" in out

    def test_library_backed_run(self, capsys, tmp_path):
        lib_path = tmp_path / "gates.json"
        assert main(["characterize", "--out", str(lib_path),
                     "--core-points", "129", "--state-points",
                     "2"]) == 0
        capsys.readouterr()
        assert main(["sta", "--circuit", "nor2", "--library",
                     str(lib_path), "--cell", "nor2_paper"]) == 0
        out = capsys.readouterr().out
        assert "[table]" in out


class TestErrorExitCodes:
    """Unknown gate/engine/library names: exit code 2, one line,
    no traceback (ISSUE 3 satellite)."""

    def test_unknown_engine(self, capsys):
        assert main(["sta", "--engine", "gpu"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown delay engine" in err
        assert "available" in err

    def test_unknown_circuit(self, capsys):
        assert main(["sta", "--circuit", "nor99"]) == 2
        err = capsys.readouterr().err
        assert "unknown circuit" in err
        assert "Traceback" not in err

    def test_unknown_library_cell(self, capsys, tmp_path):
        lib_path = tmp_path / "gates.json"
        assert main(["characterize", "--out", str(lib_path),
                     "--core-points", "65", "--state-points",
                     "2"]) == 0
        capsys.readouterr()
        assert main(["sta", "--library", str(lib_path), "--cell",
                     "nroz"]) == 2
        err = capsys.readouterr().err
        assert "available" in err

    def test_library_without_cell(self, capsys, tmp_path):
        assert main(["sta", "--library", str(tmp_path / "x.json")]) \
            == 2
        assert "--cell" in capsys.readouterr().err

    def test_missing_library_file(self, capsys, tmp_path):
        assert main(["sta", "--library",
                     str(tmp_path / "nope.json"), "--cell",
                     "nor2_paper"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestMultiInput:
    def test_parser_options(self):
        args = build_parser().parse_args(
            ["multi_input", "--gate", "nor4", "--points", "9"])
        assert args.gate == "nor4"
        assert args.points == 9
        with pytest.raises(SystemExit):
            build_parser().parse_args(["multi_input", "--gate",
                                       "nor2"])

    def test_experiment_runs(self, capsys):
        assert main(["multi_input", "--points", "9"]) == 0
        out = capsys.readouterr().out
        assert "NOR3" in out
        assert "n=2 reduction" in out
        assert "speedup" in out

    def test_listed(self, capsys):
        assert main(["list"]) == 0
        assert "multi_input" in capsys.readouterr().out

    def test_characterize_nor3_round_trip(self, capsys, tmp_path):
        out_path = tmp_path / "nor3.json"
        assert main(["characterize", "--gate", "nor3",
                     "--core-points", "17", "--out",
                     str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "nor3_paper" in out
        assert out_path.exists()
        assert main(["library", str(out_path), "--cell",
                     "nor3_paper", "--verify"]) == 0
        detail = capsys.readouterr().out
        assert "Δ-vector surface" in detail
        assert "verify" in detail

    def test_characterize_nor3_rejects_state_points(self, capsys):
        assert main(["characterize", "--gate", "nor3",
                     "--state-points", "3"]) == 2
        assert "--state-points" in capsys.readouterr().err

    def test_sta_nor3_circuit(self, capsys):
        assert main(["sta", "--circuit", "nor3_mixed", "--top",
                     "1"]) == 0
        out = capsys.readouterr().out
        assert "STA report" in out
        assert "nor3_mixed" in out

    def test_sta_nor3_corners(self, capsys):
        assert main(["sta", "--circuit", "nor3", "--corners",
                     "8"]) == 0
        out = capsys.readouterr().out
        assert "corner sweep: 8 corners" in out


class TestTraceFlag:
    """``--trace PATH``: span JSONL written, startup time covered."""

    def test_trace_writes_startup_and_run_roots(self, capsys,
                                                tmp_path):
        from repro.obs.trace import read_jsonl
        path = tmp_path / "spans.jsonl"
        assert main(["delay", "--delta", "10", "--trace",
                     str(path)]) == 0
        assert f"wrote trace spans to {path}" in \
            capsys.readouterr().err
        records = read_jsonl(path)
        by_name = {r["name"]: r for r in records}
        assert by_name["cli.startup"]["parent"] is None
        assert by_name["cli.startup"]["dur_s"] > 0.0
        assert by_name["cli.run"]["parent"] is None
        assert by_name["cli.run"]["attrs"]["command"] == "delay"
        assert by_name["session.run"]["parent"] \
            == by_name["cli.run"]["id"]

    def test_trace_flag_does_not_leak_into_later_runs(self, capsys,
                                                      tmp_path):
        from repro.obs.trace import active_tracer
        path = tmp_path / "spans.jsonl"
        assert main(["version", "--trace", str(path)]) == 0
        capsys.readouterr()
        assert active_tracer() is None
        assert main(["version"]) == 0
