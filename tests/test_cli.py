"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_tech_choices(self):
        args = build_parser().parse_args(["fig2", "--tech", "bulk65"])
        assert args.tech == "bulk65"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--tech", "tsmc3"])

    def test_fig7_options(self):
        args = build_parser().parse_args(
            ["fig7", "--transitions", "10", "--repetitions", "1"])
        assert args.transitions == 10
        assert args.repetitions == 1

    def test_engine_choices(self):
        args = build_parser().parse_args(["fig5", "--engine",
                                          "reference"])
        assert args.engine == "reference"
        args = build_parser().parse_args(["fig6"])
        assert args.engine == "vectorized"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--engine", "gpu"])

    def test_parallel_engine_selectable(self):
        args = build_parser().parse_args(["fig5", "--engine",
                                          "parallel"])
        assert args.engine == "parallel"

    def test_characterize_options(self):
        args = build_parser().parse_args(
            ["characterize", "--out", "x.json", "--core-points",
             "129", "--engine", "parallel"])
        assert args.out == "x.json"
        assert args.core_points == 129
        assert args.engine == "parallel"

    def test_library_accepts_optional_path(self):
        args = build_parser().parse_args(["library"])
        assert args.path is None
        args = build_parser().parse_args(
            ["library", "lib.json", "--cell", "nor2_paper",
             "--verify"])
        assert args.path == "lib.json"
        assert args.verify


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig7", "table1", "faithfulness"):
            assert name in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "VO(1, 1)" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "delta_min = 18.00 ps" in out

    def test_analytic(self, capsys):
        assert main(["analytic"]) == 0
        assert "eq (8)" in capsys.readouterr().out

    def test_fig5_model_only(self, capsys):
        assert main(["fig5"]) == 0
        assert "Fig. 5" in capsys.readouterr().out

    def test_fig5_reference_engine_matches_vectorized(self, capsys):
        assert main(["fig5", "--engine", "reference"]) == 0
        reference = capsys.readouterr().out
        assert main(["fig5", "--engine", "vectorized"]) == 0
        vectorized = capsys.readouterr().out
        assert reference == vectorized

    def test_engines_command(self, capsys):
        assert main(["engines", "--points", "256"]) == 0
        out = capsys.readouterr().out
        assert "vectorized" in out
        assert "reference" in out
        assert "points/s" in out

    def test_faithfulness(self, capsys):
        assert main(["faithfulness"]) == 0
        assert "Short-pulse" in capsys.readouterr().out

    def test_characterize_then_inspect_round_trip(self, capsys,
                                                  tmp_path):
        """`repro characterize` -> JSON -> `repro library` inspect."""
        out_path = tmp_path / "gates.json"
        assert main(["characterize", "--out", str(out_path),
                     "--core-points", "129", "--state-points",
                     "3"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "nor2_paper" in out
        assert out_path.exists()

        assert main(["library", str(out_path)]) == 0
        listing = capsys.readouterr().out
        for cell in ("nor2_paper", "nor2_paper_no_dmin",
                     "nand2_paper", "nand2_paper_no_dmin"):
            assert cell in listing

        assert main(["library", str(out_path), "--cell",
                     "nand2_paper", "--verify"]) == 0
        detail = capsys.readouterr().out
        assert "delta_fall" in detail
        assert "verify" in detail

    def test_library_experiment_without_path(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        assert "Library characterization" in out
        assert "acceptance" in out

    def test_library_missing_file_is_a_cli_error(self, tmp_path):
        with pytest.raises(SystemExit,
                           match="no such file"):
            main(["library", str(tmp_path / "nope.json")])

    def test_library_foreign_json_is_a_cli_error(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(SystemExit, match="cannot read"):
            main(["library", str(path)])

    def test_library_unknown_cell_lists_available(self, capsys,
                                                  tmp_path):
        out_path = tmp_path / "gates.json"
        assert main(["characterize", "--out", str(out_path),
                     "--core-points", "65", "--state-points",
                     "2"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="available"):
            main(["library", str(out_path), "--cell", "nroz"])
