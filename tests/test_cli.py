"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_tech_choices(self):
        args = build_parser().parse_args(["fig2", "--tech", "bulk65"])
        assert args.tech == "bulk65"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--tech", "tsmc3"])

    def test_fig7_options(self):
        args = build_parser().parse_args(
            ["fig7", "--transitions", "10", "--repetitions", "1"])
        assert args.transitions == 10
        assert args.repetitions == 1

    def test_engine_choices(self):
        args = build_parser().parse_args(["fig5", "--engine",
                                          "reference"])
        assert args.engine == "reference"
        args = build_parser().parse_args(["fig6"])
        assert args.engine == "vectorized"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--engine", "gpu"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig7", "table1", "faithfulness"):
            assert name in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "VO(1, 1)" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "delta_min = 18.00 ps" in out

    def test_analytic(self, capsys):
        assert main(["analytic"]) == 0
        assert "eq (8)" in capsys.readouterr().out

    def test_fig5_model_only(self, capsys):
        assert main(["fig5"]) == 0
        assert "Fig. 5" in capsys.readouterr().out

    def test_fig5_reference_engine_matches_vectorized(self, capsys):
        assert main(["fig5", "--engine", "reference"]) == 0
        reference = capsys.readouterr().out
        assert main(["fig5", "--engine", "vectorized"]) == 0
        vectorized = capsys.readouterr().out
        assert reference == vectorized

    def test_engines_command(self, capsys):
        assert main(["engines", "--points", "256"]) == 0
        out = capsys.readouterr().out
        assert "vectorized" in out
        assert "reference" in out
        assert "points/s" in out

    def test_faithfulness(self, capsys):
        assert main(["faithfulness"]) == 0
        assert "Short-pulse" in capsys.readouterr().out
