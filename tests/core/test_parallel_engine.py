"""Parity and contract tests for the sharded ``parallel`` backend.

The randomized suite forces the actual pool path (tiny shard
threshold, >= 2 workers) so the tests exercise real inter-process
evaluation, not the inline fallback.  Parity against ``vectorized``
must hold to the engine bound of 1e-12 s; in practice the only
difference is the termination half-step of the lockstep bisection.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import PAPER_TABLE_I, NorGateParameters
from repro.engine import (DelayEngine, ParallelEngine, available_engines,
                          get_engine)
from repro.errors import ParameterError
from repro.units import PS

#: Absolute backend-parity bound, seconds (ISSUE acceptance).
PARITY_TOL = 1e-12

_resistance = st.floats(min_value=4e3, max_value=4e5)
_cn = st.floats(min_value=6e-18, max_value=6e-16)
_co = st.floats(min_value=6e-17, max_value=6e-15)


@st.composite
def gate_params(draw) -> NorGateParameters:
    return NorGateParameters(
        r1=draw(_resistance), r2=draw(_resistance),
        r3=draw(_resistance), r4=draw(_resistance),
        cn=draw(_cn), co=draw(_co), vdd=0.8,
        delta_min=draw(st.sampled_from([0.0, 18.0 * PS])))


@pytest.fixture(scope="module")
def sharded() -> ParallelEngine:
    """A parallel engine that genuinely shards (no inline fallback)."""
    engine = ParallelEngine(processes=2, min_shard_points=8)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def vectorized() -> DelayEngine:
    return get_engine("vectorized")


class TestRandomizedParity:
    @settings(max_examples=25, deadline=None)
    @given(params=gate_params(), seed=st.integers(0, 2**32 - 1))
    def test_falling(self, sharded, vectorized, params, seed):
        rng = np.random.default_rng(seed)
        deltas = np.concatenate([
            rng.uniform(-400.0 * PS, 400.0 * PS, 61),
            [-math.inf, 0.0, math.inf],
        ])
        expected = vectorized.delays_falling(params, deltas)
        actual = sharded.delays_falling(params, deltas)
        assert np.max(np.abs(actual - expected)) <= PARITY_TOL

    @settings(max_examples=25, deadline=None)
    @given(params=gate_params(), seed=st.integers(0, 2**32 - 1),
           x_fraction=st.sampled_from([0.0, 0.5, 1.0]))
    def test_rising(self, sharded, vectorized, params, seed,
                    x_fraction):
        rng = np.random.default_rng(seed)
        deltas = np.concatenate([
            rng.uniform(-400.0 * PS, 400.0 * PS, 61),
            [-math.inf, 0.0, math.inf],
        ])
        vn_init = x_fraction * params.vdd
        expected = vectorized.delays_rising(params, deltas, vn_init)
        actual = sharded.delays_rising(params, deltas, vn_init)
        assert np.max(np.abs(actual - expected)) <= PARITY_TOL


class TestDenseParity:
    def test_dense_grid_against_reference(self, sharded):
        reference = get_engine("reference")
        deltas = np.concatenate([
            np.linspace(-2000.0 * PS, 2000.0 * PS, 257),
            [-math.inf, 0.0, math.inf],
        ])
        assert np.max(np.abs(
            sharded.delays_falling(PAPER_TABLE_I, deltas)
            - reference.delays_falling(PAPER_TABLE_I, deltas)
        )) <= PARITY_TOL
        assert np.max(np.abs(
            sharded.delays_rising(PAPER_TABLE_I, deltas, 0.4)
            - reference.delays_rising(PAPER_TABLE_I, deltas, 0.4)
        )) <= PARITY_TOL

    def test_shape_preserved_through_sharding(self, sharded):
        deltas = np.linspace(-20 * PS, 20 * PS, 24).reshape(4, 6)
        out = sharded.delays_falling(PAPER_TABLE_I, deltas)
        assert out.shape == (4, 6)

    def test_nan_rejected(self, sharded):
        deltas = np.full(32, np.nan)
        with pytest.raises(ParameterError):
            sharded.delays_falling(PAPER_TABLE_I, deltas)


class TestInlineFallback:
    def test_small_sweeps_stay_in_process(self):
        engine = ParallelEngine(processes=4, min_shard_points=10_000)
        deltas = np.linspace(-20 * PS, 20 * PS, 64)
        out = engine.delays_falling(PAPER_TABLE_I, deltas)
        assert engine._pool is None  # never spawned
        vec = get_engine("vectorized")
        assert np.array_equal(out,
                              vec.delays_falling(PAPER_TABLE_I, deltas))

    def test_single_worker_stays_in_process(self):
        engine = ParallelEngine(processes=1, min_shard_points=1)
        deltas = np.linspace(-20 * PS, 20 * PS, 64)
        engine.delays_falling(PAPER_TABLE_I, deltas)
        assert engine._pool is None


class _ExplodingEngine:
    """Inner backend whose evaluation always raises (failure-path
    fixture; resolved by name inside the worker processes)."""

    name = "exploding"

    def delays_falling(self, params, deltas):
        raise RuntimeError("exploding backend: falling")

    def delays_rising(self, params, deltas, vn_init=0.0):
        raise RuntimeError("exploding backend: rising")


class TestFailurePaths:
    @pytest.fixture()
    def exploding(self):
        """Register the failing inner backend (fork-started workers
        inherit the registry) and restore the registry afterwards."""
        from repro.engine import register_engine
        from repro.engine.base import _FACTORIES, _INSTANCES
        register_engine("exploding", _ExplodingEngine)
        yield
        _FACTORIES.pop("exploding", None)
        _INSTANCES.pop("exploding", None)

    def test_worker_exception_propagates(self, exploding):
        engine = ParallelEngine(inner="exploding", processes=2,
                                min_shard_points=4)
        deltas = np.linspace(-10 * PS, 10 * PS, 32)
        try:
            with pytest.raises(RuntimeError,
                               match="exploding backend: falling"):
                engine.delays_falling(PAPER_TABLE_I, deltas)
            with pytest.raises(RuntimeError,
                               match="exploding backend: rising"):
                engine.delays_rising(PAPER_TABLE_I, deltas)
        finally:
            engine.close()

    def test_engine_usable_after_worker_failure(self, exploding):
        """A failed sweep must not poison the pool for later calls."""
        engine = ParallelEngine(processes=2, min_shard_points=4)
        deltas = np.linspace(-10 * PS, 10 * PS, 16)
        try:
            failing = ParallelEngine(inner="exploding", processes=2,
                                     min_shard_points=4)
            with pytest.raises(RuntimeError):
                failing.delays_falling(PAPER_TABLE_I, deltas)
            failing.close()
            out = engine.delays_falling(PAPER_TABLE_I, deltas)
            vec = get_engine("vectorized")
            assert np.max(np.abs(
                out - vec.delays_falling(PAPER_TABLE_I, deltas))) \
                <= PARITY_TOL
        finally:
            engine.close()

    def test_inline_exception_propagates_without_pool(self, exploding):
        engine = ParallelEngine(inner="exploding", processes=2,
                                min_shard_points=1000)
        with pytest.raises(RuntimeError, match="exploding"):
            engine.delays_falling(PAPER_TABLE_I,
                                  np.linspace(-PS, PS, 8))
        assert engine._pool is None  # inline path never spawned


class TestInlineThresholdBoundary:
    def test_exactly_at_threshold_shards(self):
        """size == min_shard_points is the first sharded sweep."""
        engine = ParallelEngine(processes=2, min_shard_points=16)
        deltas = np.linspace(-10 * PS, 10 * PS, 16)
        try:
            out = engine.delays_falling(PAPER_TABLE_I, deltas)
            assert engine._pool is not None
            vec = get_engine("vectorized")
            assert np.max(np.abs(
                out - vec.delays_falling(PAPER_TABLE_I, deltas))) \
                <= PARITY_TOL
        finally:
            engine.close()

    def test_one_below_threshold_stays_inline(self):
        engine = ParallelEngine(processes=2, min_shard_points=16)
        deltas = np.linspace(-10 * PS, 10 * PS, 15)
        out = engine.delays_falling(PAPER_TABLE_I, deltas)
        assert engine._pool is None
        vec = get_engine("vectorized")
        assert np.array_equal(
            out, vec.delays_falling(PAPER_TABLE_I, deltas))

    def test_multidimensional_size_counts_elements(self):
        """The threshold compares the flattened element count."""
        engine = ParallelEngine(processes=2, min_shard_points=16)
        deltas = np.linspace(-10 * PS, 10 * PS, 16).reshape(4, 4)
        try:
            out = engine.delays_falling(PAPER_TABLE_I, deltas)
            assert engine._pool is not None
            assert out.shape == (4, 4)
        finally:
            engine.close()


class TestRegistryAndConfig:
    def test_registered(self):
        assert "parallel" in available_engines()
        assert get_engine("parallel").name == "parallel"
        assert isinstance(get_engine("parallel"), DelayEngine)

    def test_inner_must_be_a_name(self):
        with pytest.raises(ParameterError):
            ParallelEngine(inner=get_engine("vectorized"))

    def test_invalid_worker_counts(self):
        with pytest.raises(ParameterError):
            ParallelEngine(processes=0)
        with pytest.raises(ParameterError):
            ParallelEngine(min_shard_points=0)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_PROCESSES", "3")
        assert ParallelEngine().processes == 3
        monkeypatch.setenv("REPRO_PARALLEL_PROCESSES", "zero")
        with pytest.raises(ParameterError):
            ParallelEngine()
        monkeypatch.setenv("REPRO_PARALLEL_PROCESSES", "0")
        with pytest.raises(ParameterError):
            ParallelEngine()

    def test_close_is_idempotent(self):
        engine = ParallelEngine(processes=2, min_shard_points=4)
        engine.delays_falling(PAPER_TABLE_I,
                              np.linspace(-10 * PS, 10 * PS, 16))
        engine.close()
        engine.close()
        # Usable again after close: the pool is recreated lazily.
        out = engine.delays_falling(PAPER_TABLE_I,
                                    np.linspace(-10 * PS, 10 * PS, 16))
        assert out.shape == (16,)
        engine.close()


class TestPoolLifecycle:
    """No leaked worker processes or shared-memory segments."""

    def test_no_daemon_processes_leak_across_instances(self):
        import multiprocessing
        deltas = np.linspace(-10 * PS, 10 * PS, 32)
        before = len(multiprocessing.active_children())
        for _ in range(3):
            engine = ParallelEngine(processes=2, min_shard_points=4)
            engine.delays_falling(PAPER_TABLE_I, deltas)
            assert len(multiprocessing.active_children()) > before
            engine.close()
            assert len(multiprocessing.active_children()) == before

    def test_no_shared_memory_segments_leak(self, tmp_path):
        import glob
        before = set(glob.glob("/dev/shm/*"))
        with ParallelEngine(processes=2, min_shard_points=4) as engine:
            engine.delays_falling(PAPER_TABLE_I,
                                  np.linspace(-10 * PS, 10 * PS, 64))
            engine.delays_rising(PAPER_TABLE_I,
                                 np.linspace(-10 * PS, 10 * PS, 64))
        assert set(glob.glob("/dev/shm/*")) == before

    def test_context_manager_closes_pool(self):
        with ParallelEngine(processes=2, min_shard_points=4) as engine:
            engine.delays_falling(PAPER_TABLE_I,
                                  np.linspace(-10 * PS, 10 * PS, 16))
            assert engine._pool is not None
        assert engine._pool is None

    def test_atexit_registered_once_across_recreations(self,
                                                       monkeypatch):
        """close() + lazy recreation must not stack atexit hooks."""
        import atexit
        calls = []
        real_register = atexit.register
        monkeypatch.setattr(
            atexit, "register",
            lambda fn, *a, **k: (calls.append(fn),
                                 real_register(fn, *a, **k))[-1])
        engine = ParallelEngine(processes=2, min_shard_points=4)
        deltas = np.linspace(-10 * PS, 10 * PS, 16)
        try:
            engine.delays_falling(PAPER_TABLE_I, deltas)
            engine.close()
            engine.delays_falling(PAPER_TABLE_I, deltas)
            assert calls.count(engine.close) == 1
        finally:
            engine.close()
            atexit.unregister(engine.close)


class TestSharedMemoryTransport:
    """The zero-copy shard path agrees with in-process evaluation."""

    def test_n_input_rows_shard_through_shared_memory(self, sharded,
                                                      vectorized):
        from repro.core.multi_input import paper_generalized
        params = paper_generalized(3)
        rng = np.random.default_rng(5)
        deltas = rng.uniform(-300 * PS, 300 * PS, size=(96, 2))
        deltas[::17] = np.inf
        deltas[1::17] = -np.inf
        actual = sharded.delays_falling_n(params, deltas)
        expected = vectorized.delays_falling_n(params, deltas)
        assert np.max(np.abs(actual - expected)) <= PARITY_TOL
        rising = sharded.delays_rising_n(params, deltas, 0.2)
        rising_ref = vectorized.delays_rising_n(params, deltas, 0.2)
        assert np.max(np.abs(rising - rising_ref)) <= PARITY_TOL

    def test_load_aware_shard_bounds(self):
        engine = ParallelEngine(processes=2, min_shard_points=8)
        # Small sharded sweep: one shard per worker.
        bounds = engine._shard_bounds(16)
        assert len(bounds) == 2
        # Large sweep: up to 4 shards per worker for load balancing.
        bounds = engine._shard_bounds(1_000_000)
        assert len(bounds) == 8
        # Bounds tile [0, rows) without gaps or overlaps.
        assert bounds[0][0] == 0 and bounds[-1][1] == 1_000_000
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start
        # Never more shards than rows.
        assert len(engine._shard_bounds(3)) <= 3
        engine.close()
