"""Batched Δ-vector evaluation vs the scalar eigen-solver and the
closed-form 2-input path (ISSUE 4 tentpole parity requirements)."""

import math

import numpy as np
import pytest

from repro.core import PAPER_TABLE_I
from repro.core.multi_input import (GeneralizedNorModel,
                                    GeneralizedNorParameters,
                                    generalized_model,
                                    paper_generalized,
                                    sibling_offsets)
from repro.engine import get_engine
from repro.errors import ParameterError
from repro.units import PS

#: Acceptance bound: Δ-vector seam vs closed-form 2-input path.
N2_PARITY = 1e-12
#: Batched vs scalar eigen-solver (same model, two drivers).
BATCH_PARITY = 1e-15


@pytest.fixture(scope="module")
def gen3():
    return generalized_model(paper_generalized(3))


@pytest.fixture(scope="module")
def vectorized():
    return get_engine("vectorized")


class TestTwoInputParity:
    """The n = 2 Δ-vector seam against the paper's closed forms."""

    @pytest.fixture(scope="class")
    def sweep(self):
        # The paper's sweep window (Figs. 5/6) plus the SIS edges.
        core = np.linspace(-400 * PS, 400 * PS, 401)
        return np.concatenate([core, [math.inf, -math.inf]])

    def test_falling(self, vectorized, sweep):
        narrow = GeneralizedNorParameters.from_two_input(
            PAPER_TABLE_I)
        closed = vectorized.delays_falling(PAPER_TABLE_I, sweep)
        seam = vectorized.delays_falling_n(narrow, sweep[:, None])
        assert float(np.max(np.abs(seam - closed))) <= N2_PARITY

    @pytest.mark.parametrize("vn_init", [0.0, 0.4, 0.8])
    def test_rising(self, vectorized, sweep, vn_init):
        narrow = GeneralizedNorParameters.from_two_input(
            PAPER_TABLE_I)
        closed = vectorized.delays_rising(PAPER_TABLE_I, sweep,
                                          vn_init)
        seam = vectorized.delays_rising_n(narrow, sweep[:, None],
                                          vn_init)
        assert float(np.max(np.abs(seam - closed))) <= N2_PARITY

    def test_reference_backend_agrees(self, sweep):
        reference = get_engine("reference")
        narrow = GeneralizedNorParameters.from_two_input(
            PAPER_TABLE_I)
        probe = sweep[::40]
        closed = reference.delays_falling(PAPER_TABLE_I, probe)
        seam = reference.delays_falling_n(narrow, probe[:, None])
        assert float(np.max(np.abs(seam - closed))) <= N2_PARITY


class TestBatchedVsScalar:
    """The lockstep batch against the per-point trace solver."""

    def test_falling_random_vectors(self, gen3):
        rng = np.random.default_rng(7)
        grid = rng.uniform(-300 * PS, 300 * PS, size=(48, 2))
        batched = gen3.delays_falling_batch(grid)
        for row, value in zip(grid, batched):
            times = np.concatenate([[0.0], row])
            scalar = gen3.delay_falling(times - times.min())
            assert value == pytest.approx(scalar, abs=BATCH_PARITY)

    def test_rising_random_vectors(self, gen3):
        rng = np.random.default_rng(11)
        grid = rng.uniform(-300 * PS, 300 * PS, size=(32, 2))
        batched = gen3.delays_rising_batch(grid, 0.3)
        for row, value in zip(grid, batched):
            times = np.concatenate([[0.0], row])
            scalar = gen3.delay_rising(times - times.min(),
                                       internal_init=[0.3, 0.3])
            assert value == pytest.approx(scalar, abs=BATCH_PARITY)

    def test_all_orderings_covered(self, gen3):
        """Every event-permutation group agrees with the scalar path."""
        offsets = [-40 * PS, -5 * PS, 5 * PS, 40 * PS]
        grid = np.array([[a, b] for a in offsets for b in offsets])
        batched = gen3.delays_falling_batch(grid)
        for row, value in zip(grid, batched):
            times = np.concatenate([[0.0], row])
            scalar = gen3.delay_falling(times - times.min())
            assert value == pytest.approx(scalar, abs=BATCH_PARITY)

    def test_shape_preserved(self, gen3):
        grid = np.zeros((3, 4, 2))
        assert gen3.delays_falling_batch(grid).shape == (3, 4)

    def test_simultaneous_matches_closed_form(self, gen3):
        parallel = 1.0 / sum(1.0 / r for r in
                             gen3.params.r_pulldown)
        expected = (math.log(2.0) * gen3.params.co * parallel
                    + gen3.params.delta_min)
        value = float(gen3.delays_falling_batch(
            np.zeros((1, 2)))[0])
        assert value == pytest.approx(expected, rel=1e-9)


class TestEdgeEncodings:
    def test_infinite_offsets_clip_to_sis(self, gen3):
        settle = gen3.settle_time()
        far = gen3.delays_falling_batch(
            np.array([[2.0 * settle, -2.0 * settle]]))
        inf = gen3.delays_falling_batch(
            np.array([[math.inf, -math.inf]]))
        assert float(inf[0]) == pytest.approx(float(far[0]),
                                              abs=1e-18)

    def test_nan_rejected(self, gen3):
        with pytest.raises(ParameterError):
            gen3.delays_falling_batch(np.array([[math.nan, 0.0]]))

    def test_wrong_vector_width_rejected(self, gen3):
        with pytest.raises(ParameterError):
            gen3.delays_falling_batch(np.zeros((4, 3)))
        with pytest.raises(ParameterError):
            gen3.delays_rising_batch(np.zeros(()))

    def test_internal_init_speeds_rising(self, gen3):
        grid = np.zeros((1, 2))
        worst = float(gen3.delays_rising_batch(grid)[0])
        charged = float(gen3.delays_rising_batch(grid, 0.8)[0])
        assert charged < worst

    def test_settle_time_positive(self, gen3):
        assert gen3.settle_time() > 0.0

    @pytest.mark.parametrize("num_inputs", [3, 4, 5])
    def test_settle_time_immune_to_island_eigenvalue_dust(
            self, num_inputs):
        """Partially-open modes isolate chain islands whose conserved
        total charge is an exact zero eigenvalue; np.linalg.eig may
        report it as ~1e-17 of the spectral radius, which once
        masqueraded as a ~1e16 ps time constant and exploded the
        default grids (regression)."""
        model = generalized_model(paper_generalized(num_inputs))
        settle = model.settle_time()
        # Physical settling of these gates is nanoseconds, not hours.
        assert settle < 100e-9
        # And the batch must stay fast at full-settle offsets.
        grid = np.array([[settle, -settle]
                         + [0.0] * (num_inputs - 3)])
        assert np.isfinite(model.delays_falling_batch(grid)).all()


class TestSiblingOffsets:
    def test_finite_passthrough(self):
        times = np.array([1.0 * PS, 3.0 * PS, -2.0 * PS])
        offsets = sibling_offsets(times, 1.0 * PS)
        assert offsets == pytest.approx([2.0 * PS, -3.0 * PS])

    def test_infinities_clip_around_reference(self):
        times = np.array([0.0, math.inf, -math.inf])
        offsets = sibling_offsets(times, 0.0)
        assert np.all(np.isfinite(offsets))
        assert offsets[0] > 0.5 and offsets[1] < -0.5

    def test_infinite_anchor_produces_no_nan(self):
        times = np.array([-math.inf, -math.inf, 5.0 * PS])
        offsets = sibling_offsets(times, 5.0 * PS)
        assert np.all(np.isfinite(offsets))

    def test_array_axes(self):
        times = np.zeros((3, 5))
        times[2] = 4.0 * PS
        offsets = sibling_offsets(times, np.zeros(5))
        assert offsets.shape == (5, 2)
        assert np.allclose(offsets[:, 1], 4.0 * PS)


class TestPaperGeneralized:
    def test_two_input_round_trip(self):
        assert (paper_generalized(2)
                == GeneralizedNorParameters.from_two_input(
                    PAPER_TABLE_I))

    def test_widening_repeats_stages(self):
        wide = paper_generalized(4)
        assert wide.num_inputs == 4
        assert wide.r_pullup == (PAPER_TABLE_I.r1, PAPER_TABLE_I.r2,
                                 PAPER_TABLE_I.r2, PAPER_TABLE_I.r2)
        assert wide.c_internal == (PAPER_TABLE_I.cn,) * 3

    def test_too_narrow_rejected(self):
        with pytest.raises(ParameterError):
            paper_generalized(1)
