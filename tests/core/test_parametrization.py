"""Tests for repro.core.parametrization — Section V / Table I."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.charlie import CharacteristicDelays
from repro.core.hybrid_model import HybridNorModel
from repro.core.parameters import PAPER_TABLE_I, NorGateParameters
from repro.core.parametrization import (CharacteristicTargets,
                                        falling_feasible_without_pure_delay,
                                        falling_ratio, fit_nor_parameters,
                                        infer_delta_min, seed_parameters)
from repro.errors import FittingError, ParameterError
from repro.units import PS


def paper_like_targets() -> CharacteristicTargets:
    return CharacteristicTargets(
        falling=CharacteristicDelays(38.0 * PS, 28.0 * PS, 39.1 * PS),
        rising=CharacteristicDelays(55.3 * PS, 55.3 * PS, 52.7 * PS),
        vdd=0.8,
    )


class TestInferDeltaMin:
    def test_paper_18ps(self):
        """2*28 − 38 = 18 ps — the paper's value, exactly."""
        falling = CharacteristicDelays(38.0 * PS, 28.0 * PS, 39.1 * PS)
        assert infer_delta_min(falling) == pytest.approx(18.0 * PS)

    def test_makes_ratio_exactly_two(self):
        falling = CharacteristicDelays(38.0 * PS, 28.0 * PS, 39.1 * PS)
        dm = infer_delta_min(falling)
        assert falling_ratio(falling, dm) == pytest.approx(2.0)

    def test_ratio_already_two_gives_zero(self):
        falling = CharacteristicDelays(40.0 * PS, 20.0 * PS, 41.0 * PS)
        assert infer_delta_min(falling) == pytest.approx(0.0)

    def test_ratio_above_two_raises(self):
        falling = CharacteristicDelays(50.0 * PS, 20.0 * PS, 51.0 * PS)
        with pytest.raises(FittingError):
            infer_delta_min(falling)

    @given(st.floats(min_value=20 * PS, max_value=60 * PS),
           st.floats(min_value=1.05, max_value=1.95))
    def test_inferred_value_always_valid(self, zero, ratio):
        falling = CharacteristicDelays(zero * ratio, zero,
                                       zero * ratio * 1.02)
        dm = infer_delta_min(falling)
        assert 0.0 <= dm < zero
        assert falling_ratio(falling, dm) == pytest.approx(2.0)


class TestFeasibility:
    def test_paper_values_infeasible(self):
        """38/28 ≈ 1.36 is far from the required ratio 2."""
        falling = CharacteristicDelays(38.0 * PS, 28.0 * PS, 39.1 * PS)
        assert not falling_feasible_without_pure_delay(falling)

    def test_ratio_two_feasible(self):
        falling = CharacteristicDelays(40.0 * PS, 20.0 * PS, 41.0 * PS)
        assert falling_feasible_without_pure_delay(falling)

    def test_delta_min_exceeding_zero_raises(self):
        falling = CharacteristicDelays(38.0 * PS, 28.0 * PS, 39.1 * PS)
        with pytest.raises(FittingError):
            falling_ratio(falling, 30.0 * PS)


class TestSeedParameters:
    def test_seed_matches_closed_forms(self):
        targets = paper_like_targets()
        seed = seed_parameters(targets, 18.0 * PS, co=PAPER_TABLE_I.co)
        # Seeded R4 reproduces eq. (9) exactly.
        assert math.log(2.0) * seed.co * seed.r4 == pytest.approx(
            (38.0 - 18.0) * PS, rel=1e-9)
        # Seeded R3 || R4 reproduces eq. (8) exactly.
        parallel = seed.r3 * seed.r4 / (seed.r3 + seed.r4)
        assert math.log(2.0) * seed.co * parallel == pytest.approx(
            (28.0 - 18.0) * PS, rel=1e-9)

    def test_seed_near_paper_table1(self):
        """The closed-form seed already lands near Table I."""
        targets = paper_like_targets()
        seed = seed_parameters(targets, 18.0 * PS, co=PAPER_TABLE_I.co)
        assert seed.r4 == pytest.approx(PAPER_TABLE_I.r4, rel=0.05)
        assert seed.r3 == pytest.approx(PAPER_TABLE_I.r3, rel=0.05)
        assert seed.r1 == pytest.approx(PAPER_TABLE_I.r1, rel=0.25)

    def test_seed_without_co(self):
        seed = seed_parameters(paper_like_targets(), 18.0 * PS)
        assert seed.r4 == pytest.approx(45e3, rel=1e-6)

    def test_invalid_order_raises(self):
        targets = CharacteristicTargets(
            falling=CharacteristicDelays(28.0 * PS, 38.0 * PS,
                                         39.0 * PS),
            rising=CharacteristicDelays(55.0 * PS, 55.0 * PS,
                                        52.0 * PS))
        with pytest.raises(FittingError):
            seed_parameters(targets, 0.0)

    def test_excessive_delta_min_raises(self):
        with pytest.raises(FittingError):
            seed_parameters(paper_like_targets(), 29.0 * PS)


class TestFitNorParameters:
    def test_paper_targets_reach_table1_characteristics(self):
        fit = fit_nor_parameters(paper_like_targets(),
                                 co=PAPER_TABLE_I.co)
        assert fit.params.delta_min == pytest.approx(18.0 * PS)
        assert fit.max_error < 0.25 * PS
        assert fit.success

    def test_fitted_r3_r4_near_paper(self):
        fit = fit_nor_parameters(paper_like_targets(),
                                 co=PAPER_TABLE_I.co)
        assert fit.params.r3 == pytest.approx(PAPER_TABLE_I.r3,
                                              rel=0.10)
        assert fit.params.r4 == pytest.approx(PAPER_TABLE_I.r4,
                                              rel=0.10)

    def test_round_trip_recovers_characteristics(self):
        """Targets generated from known parameters are matched."""
        truth = PAPER_TABLE_I
        model = HybridNorModel(truth)
        targets = CharacteristicTargets(
            falling=model.characteristic_falling(),
            rising=model.characteristic_rising(0.0),
            vdd=truth.vdd)
        fit = fit_nor_parameters(targets, delta_min=truth.delta_min,
                                 co=truth.co)
        assert fit.max_error < 0.05 * PS

    def test_fit_all_six_parameters(self):
        fit = fit_nor_parameters(paper_like_targets())
        assert fit.max_error < 0.3 * PS

    def test_no_delta_min_compromise(self):
        """Without the pure delay the targets are infeasible; LS must
        still converge to a compromise with a visible error."""
        fit = fit_nor_parameters(paper_like_targets(), delta_min=0.0,
                                 co=PAPER_TABLE_I.co)
        assert fit.params.delta_min == 0.0
        assert fit.max_error > 1.0 * PS  # the ratio-2 theorem bites

    def test_weights_shift_compromise(self):
        targets = paper_like_targets()
        balanced = fit_nor_parameters(targets, delta_min=0.0,
                                      co=PAPER_TABLE_I.co)
        sis_weighted = fit_nor_parameters(
            targets, delta_min=0.0, co=PAPER_TABLE_I.co,
            weights=np.array([5.0, 0.1, 5.0, 5.0, 0.1, 5.0]))
        # SIS-weighted fit matches δ↓(−∞) better than the balanced one.
        err_balanced = abs(balanced.achieved.falling.minus_inf
                           - targets.falling.minus_inf)
        err_weighted = abs(sis_weighted.achieved.falling.minus_inf
                           - targets.falling.minus_inf)
        assert err_weighted < err_balanced

    def test_invalid_weights_shape(self):
        with pytest.raises(ParameterError):
            fit_nor_parameters(paper_like_targets(),
                               weights=np.ones(3))

    def test_negative_regularization_rejected(self):
        with pytest.raises(ParameterError):
            fit_nor_parameters(paper_like_targets(), regularization=-1.0)

    def test_fit_result_table(self):
        fit = fit_nor_parameters(paper_like_targets(),
                                 co=PAPER_TABLE_I.co)
        table = fit.table()
        assert len(table) == 6
        assert table[0][0] == "falling(-inf)"
        assert table[0][1] == pytest.approx(38.0, abs=0.01)


class TestCharacteristicTargets:
    def test_shift(self):
        targets = paper_like_targets()
        shifted = targets.shifted(-18.0 * PS)
        assert shifted.falling.zero == pytest.approx(10.0 * PS)
        assert shifted.rising.plus_inf == pytest.approx(34.7 * PS)

    def test_as_array_order(self):
        arr = paper_like_targets().as_array()
        assert arr[0] == pytest.approx(38.0 * PS)
        assert arr[1] == pytest.approx(28.0 * PS)
        assert arr[5] == pytest.approx(52.7 * PS)
