"""Tests for repro.core.modes — ODE systems and eigen-decompositions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.modes import (Mode, all_mode_systems, mode_00_constants,
                              mode_10_constants, mode_system)
from repro.core.parameters import PAPER_TABLE_I, NorGateParameters

positive = st.floats(min_value=1e3, max_value=1e6)
caps = st.floats(min_value=1e-18, max_value=1e-14)


@st.composite
def parameter_sets(draw):
    return NorGateParameters(
        r1=draw(positive), r2=draw(positive), r3=draw(positive),
        r4=draw(positive), cn=draw(caps), co=draw(caps), vdd=0.8)


class TestModeEnum:
    def test_values(self):
        assert Mode.BOTH_LOW.value == (0, 0)
        assert Mode.BOTH_HIGH.value == (1, 1)
        assert Mode.A_HIGH_B_LOW.value == (1, 0)
        assert Mode.A_LOW_B_HIGH.value == (0, 1)

    def test_from_inputs(self):
        assert Mode.from_inputs(1, 0) is Mode.A_HIGH_B_LOW
        assert Mode.from_inputs(True, False) is Mode.A_HIGH_B_LOW

    def test_accessors(self):
        assert Mode.A_HIGH_B_LOW.a == 1
        assert Mode.A_HIGH_B_LOW.b == 0

    def test_nor_output(self):
        assert Mode.BOTH_LOW.nor_output == 1
        assert Mode.A_HIGH_B_LOW.nor_output == 0
        assert Mode.A_LOW_B_HIGH.nor_output == 0
        assert Mode.BOTH_HIGH.nor_output == 0

    def test_with_a_b(self):
        assert Mode.BOTH_LOW.with_a(1) is Mode.A_HIGH_B_LOW
        assert Mode.BOTH_LOW.with_b(1) is Mode.A_LOW_B_HIGH
        assert Mode.BOTH_HIGH.with_a(0) is Mode.A_LOW_B_HIGH

    def test_str(self):
        assert str(Mode.A_HIGH_B_LOW) == "(1, 0)"


class TestSystemMatrices:
    """Check each matrix against the paper's Section III equations."""

    def test_mode_11_matrix(self, paper_params):
        system = mode_system(Mode.BOTH_HIGH, paper_params)
        p = paper_params
        expected = -(1.0 / (p.co * p.r3) + 1.0 / (p.co * p.r4))
        assert system.matrix[0, 0] == 0.0
        assert system.matrix[0, 1] == 0.0
        assert system.matrix[1, 0] == 0.0
        assert system.matrix[1, 1] == pytest.approx(expected)
        assert np.all(system.forcing == 0.0)

    def test_mode_10_matrix(self, paper_params):
        p = paper_params
        system = mode_system(Mode.A_HIGH_B_LOW, p)
        assert system.matrix[0, 0] == pytest.approx(-1 / (p.cn * p.r2))
        assert system.matrix[0, 1] == pytest.approx(1 / (p.cn * p.r2))
        assert system.matrix[1, 0] == pytest.approx(1 / (p.co * p.r2))
        assert system.matrix[1, 1] == pytest.approx(
            -(1 / (p.co * p.r2) + 1 / (p.co * p.r3)))

    def test_mode_01_matrix(self, paper_params):
        p = paper_params
        system = mode_system(Mode.A_LOW_B_HIGH, p)
        assert system.matrix[0, 0] == pytest.approx(-1 / (p.cn * p.r1))
        assert system.matrix[0, 1] == 0.0
        assert system.matrix[1, 0] == 0.0
        assert system.matrix[1, 1] == pytest.approx(-1 / (p.co * p.r4))
        assert system.forcing[0] == pytest.approx(p.vdd / (p.cn * p.r1))

    def test_mode_00_matrix(self, paper_params):
        p = paper_params
        system = mode_system(Mode.BOTH_LOW, p)
        assert system.matrix[0, 0] == pytest.approx(
            -(1 / (p.cn * p.r1) + 1 / (p.cn * p.r2)))
        assert system.matrix[0, 1] == pytest.approx(1 / (p.cn * p.r2))
        assert system.matrix[1, 0] == pytest.approx(1 / (p.co * p.r2))
        assert system.matrix[1, 1] == pytest.approx(-1 / (p.co * p.r2))
        assert system.forcing[0] == pytest.approx(p.vdd / (p.cn * p.r1))

    def test_all_mode_systems(self, paper_params):
        systems = all_mode_systems(paper_params)
        assert set(systems) == set(Mode)

    def test_derivative_evaluation(self, paper_params):
        system = mode_system(Mode.BOTH_LOW, paper_params)
        state = np.array([0.1, 0.2])
        expected = system.matrix @ state + system.forcing
        assert np.allclose(system.derivative(state), expected)


class TestEquilibria:
    def test_mode_00_equilibrium_is_vdd(self, paper_params):
        system = mode_system(Mode.BOTH_LOW, paper_params)
        assert np.allclose(system.equilibrium,
                           [paper_params.vdd, paper_params.vdd])
        # A*eq + g == 0 up to cancellation noise of the ~1e12 entries.
        scale = float(np.max(np.abs(system.matrix)))
        assert np.allclose(system.derivative(system.equilibrium), 0.0,
                           atol=1e-12 * scale)

    def test_mode_01_equilibrium(self, paper_params):
        system = mode_system(Mode.A_LOW_B_HIGH, paper_params)
        assert np.allclose(system.equilibrium, [paper_params.vdd, 0.0])
        scale = float(np.max(np.abs(system.matrix)))
        assert np.allclose(system.derivative(system.equilibrium), 0.0,
                           atol=1e-12 * scale)

    def test_mode_10_equilibrium_is_ground(self, paper_params):
        system = mode_system(Mode.A_HIGH_B_LOW, paper_params)
        assert np.allclose(system.equilibrium, [0.0, 0.0])

    def test_mode_11_vo_equilibrium(self, paper_params):
        system = mode_system(Mode.BOTH_HIGH, paper_params)
        assert system.equilibrium[1] == 0.0
        assert np.isnan(system.equilibrium[0])  # VN is frozen


class TestEigenConstants:
    """Paper eqs. (1)-(7) against numpy's eigendecomposition."""

    @given(parameter_sets())
    def test_mode_10_eigenvalues_match_numpy(self, params):
        system = mode_system(Mode.A_HIGH_B_LOW, params)
        consts = system.constants
        numpy_eigs = np.sort(np.linalg.eigvals(system.matrix))
        ours = np.sort([consts.lambda1, consts.lambda2])
        # Stiff corners (time-constant ratios up to ~1e8 under the
        # sampled ranges) push numpy's backward error ~eps*|λ_max|
        # above a pure relative bound on the small eigenvalue, so
        # allow that absolute floor on top.
        atol = 1e-12 * float(np.max(np.abs(numpy_eigs)))
        assert np.allclose(ours, numpy_eigs, rtol=1e-9, atol=atol)

    @given(parameter_sets())
    def test_mode_00_eigenvalues_match_numpy(self, params):
        system = mode_system(Mode.BOTH_LOW, params)
        consts = system.constants
        numpy_eigs = np.sort(np.linalg.eigvals(system.matrix))
        ours = np.sort([consts.lambda1, consts.lambda2])
        atol = 1e-12 * float(np.max(np.abs(numpy_eigs)))
        assert np.allclose(ours, numpy_eigs, rtol=1e-9, atol=atol)

    @given(parameter_sets())
    def test_mode_10_eigenvectors(self, params):
        system = mode_system(Mode.A_HIGH_B_LOW, params)
        for pair in system.constants.eigenpairs:
            vec = np.array(pair.eigenvector)
            residual = system.matrix @ vec - pair.eigenvalue * vec
            scale = float(np.max(np.abs(system.matrix)))
            assert np.allclose(residual, 0.0,
                               atol=1e-7 * np.linalg.norm(vec) * scale)

    @given(parameter_sets())
    def test_mode_00_eigenvectors(self, params):
        system = mode_system(Mode.BOTH_LOW, params)
        for pair in system.constants.eigenpairs:
            vec = np.array(pair.eigenvector)
            residual = system.matrix @ vec - pair.eigenvalue * vec
            scale = float(np.max(np.abs(system.matrix)))
            assert np.allclose(residual, 0.0,
                               atol=1e-7 * np.linalg.norm(vec) * scale)

    @given(parameter_sets())
    def test_eigenvalues_are_negative_and_distinct(self, params):
        for constants in (mode_10_constants(params),
                          mode_00_constants(params)):
            assert constants.lambda1 < 0.0
            assert constants.lambda2 < 0.0
            assert constants.lambda1 > constants.lambda2  # beta > 0
            assert constants.beta > 0.0

    def test_mode_10_gamma_is_half_trace(self, paper_params):
        system = mode_system(Mode.A_HIGH_B_LOW, paper_params)
        assert system.constants.gamma == pytest.approx(
            np.trace(system.matrix) / 2.0)

    def test_mode_00_gamma_is_half_trace(self, paper_params):
        system = mode_system(Mode.BOTH_LOW, paper_params)
        assert system.constants.gamma == pytest.approx(
            np.trace(system.matrix) / 2.0)

    def test_uncoupled_modes_have_no_constants(self, paper_params):
        assert mode_system(Mode.BOTH_HIGH, paper_params).constants is None
        assert mode_system(Mode.A_LOW_B_HIGH,
                           paper_params).constants is None
