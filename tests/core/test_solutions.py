"""Tests for repro.core.solutions — closed forms vs numeric propagation."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.modes import Mode, mode_system
from repro.core.parameters import NorGateParameters
from repro.core.solutions import ExpSum, propagate_numeric, solve_mode
from repro.errors import ParameterError

positive = st.floats(min_value=1e3, max_value=1e6)
caps = st.floats(min_value=1e-18, max_value=1e-14)
voltages = st.floats(min_value=-0.4, max_value=1.6)


@st.composite
def parameter_sets(draw):
    return NorGateParameters(
        r1=draw(positive), r2=draw(positive), r3=draw(positive),
        r4=draw(positive), cn=draw(caps), co=draw(caps), vdd=0.8)


class TestExpSum:
    def test_constant(self):
        f = ExpSum.build(2.0, [])
        assert f(0.0) == 2.0
        assert f(1.0) == 2.0

    def test_single_exponential(self):
        f = ExpSum.build(1.0, [(2.0, -3.0)])
        assert f(0.0) == pytest.approx(3.0)
        assert f(1.0) == pytest.approx(1.0 + 2.0 * math.exp(-3.0))

    def test_zero_coefficients_dropped(self):
        f = ExpSum.build(1.0, [(0.0, -3.0), (2.0, -1.0)])
        assert len(f.coeffs) == 1

    def test_zero_rate_folded_into_offset(self):
        f = ExpSum.build(1.0, [(2.0, 0.0)])
        assert f.offset == 3.0
        assert not f.coeffs

    def test_vectorized_evaluation(self):
        f = ExpSum.build(0.0, [(1.0, -1.0)])
        values = f(np.array([0.0, 1.0, 2.0]))
        assert values.shape == (3,)
        assert values[0] == pytest.approx(1.0)

    def test_derivative(self):
        f = ExpSum.build(1.0, [(2.0, -3.0)])
        df = f.derivative()
        assert df(0.0) == pytest.approx(-6.0)
        # numeric check
        h = 1e-8
        assert df(0.5) == pytest.approx((f(0.5 + h) - f(0.5 - h))
                                        / (2 * h), rel=1e-5)

    def test_limit(self):
        f = ExpSum.build(1.5, [(2.0, -3.0), (-1.0, -0.1)])
        assert f.limit == pytest.approx(1.5)

    def test_limit_diverging_raises(self):
        f = ExpSum.build(0.0, [(1.0, 2.0)])
        with pytest.raises(ParameterError):
            _ = f.limit

    def test_slowest_rate(self):
        f = ExpSum.build(0.0, [(1.0, -5.0), (1.0, -0.5)])
        assert f.slowest_rate == pytest.approx(-0.5)

    def test_slowest_rate_constant(self):
        assert ExpSum.build(1.0, []).slowest_rate == 0.0

    def test_shifted(self):
        f = ExpSum.build(1.0, [(2.0, -3.0)])
        g = f.shifted(0.7)
        for t in (0.0, 0.3, 1.1):
            assert g(t) == pytest.approx(f(t + 0.7))

    @given(st.floats(min_value=-2, max_value=2),
           st.floats(min_value=-5, max_value=-0.01),
           st.floats(min_value=-2, max_value=2),
           st.floats(min_value=0, max_value=3))
    def test_shift_property(self, coeff, rate, offset, dt):
        f = ExpSum.build(offset, [(coeff, rate)])
        g = f.shifted(dt)
        assert g(1.0) == pytest.approx(f(1.0 + dt), abs=1e-12)


class TestSolveModeAgainstNumeric:
    """Closed forms must agree with the matrix-exponential propagator."""

    @pytest.mark.parametrize("mode", list(Mode))
    def test_paper_params_all_modes(self, paper_params, mode):
        vn0, vo0 = 0.55, 0.8
        solution = solve_mode(mode, paper_params, vn0, vo0)
        system = mode_system(mode, paper_params)
        times = np.linspace(0.0, 200e-12, 7)
        numeric = propagate_numeric(system, [vn0, vo0], times)
        analytic = solution.states_at(times)
        assert np.allclose(analytic, numeric, atol=1e-9)

    @given(parameter_sets(), voltages, voltages,
           st.sampled_from(list(Mode)))
    def test_random_params_and_initial_conditions(self, params, vn0,
                                                  vo0, mode):
        solution = solve_mode(mode, params, vn0, vo0)
        system = mode_system(mode, params)
        tau = max(params.cn, params.co) * max(params.r1, params.r2,
                                              params.r3, params.r4)
        times = np.array([0.0, 0.1 * tau, tau, 5 * tau])
        numeric = propagate_numeric(system, [vn0, vo0], times)
        analytic = solution.states_at(times)
        assert np.allclose(analytic, numeric, rtol=1e-7, atol=1e-9)

    @pytest.mark.parametrize("mode", list(Mode))
    def test_initial_condition_exact(self, paper_params, mode):
        solution = solve_mode(mode, paper_params, 0.3, 0.7)
        vn, vo = solution.state_at(0.0)
        assert vn == pytest.approx(0.3, abs=1e-12)
        assert vo == pytest.approx(0.7, abs=1e-12)


class TestModePhysics:
    def test_mode_11_freezes_vn(self, paper_params):
        solution = solve_mode(Mode.BOTH_HIGH, paper_params, 0.37, 0.8)
        for t in (0.0, 10e-12, 1e-9):
            assert solution.vn(t) == pytest.approx(0.37)

    def test_mode_11_drains_output(self, paper_params):
        solution = solve_mode(Mode.BOTH_HIGH, paper_params, 0.0, 0.8)
        assert solution.vo(1e-9) < 1e-6

    def test_mode_11_parallel_faster_than_single(self, paper_params):
        both = solve_mode(Mode.BOTH_HIGH, paper_params, 0.8, 0.8)
        single = solve_mode(Mode.A_LOW_B_HIGH, paper_params, 0.8, 0.8)
        t = 20e-12
        assert both.vo(t) < single.vo(t)

    def test_mode_00_charges_to_vdd(self, paper_params):
        solution = solve_mode(Mode.BOTH_LOW, paper_params, 0.0, 0.0)
        vn, vo = solution.state_at(2e-9)
        assert vn == pytest.approx(paper_params.vdd, abs=1e-6)
        assert vo == pytest.approx(paper_params.vdd, abs=1e-6)

    def test_mode_01_charges_vn_drains_vo(self, paper_params):
        solution = solve_mode(Mode.A_LOW_B_HIGH, paper_params, 0.0, 0.8)
        vn, vo = solution.state_at(2e-9)
        assert vn == pytest.approx(paper_params.vdd, abs=1e-6)
        assert vo == pytest.approx(0.0, abs=1e-6)

    def test_mode_10_output_monotone_from_rest(self, paper_params):
        """From (VDD, VDD) the output drains monotonically."""
        solution = solve_mode(Mode.A_HIGH_B_LOW, paper_params, 0.8, 0.8)
        times = np.linspace(0.0, 300e-12, 50)
        vo = solution.vo(times)
        assert np.all(np.diff(vo) < 0.0)

    def test_mode_10_charge_sharing_bumps_output(self, paper_params):
        """With VN charged and VO at 0, charge sharing lifts VO first."""
        solution = solve_mode(Mode.A_HIGH_B_LOW, paper_params, 0.8, 0.0)
        assert solution.vo(2e-12) > 0.0
        assert solution.vo(1e-9) == pytest.approx(0.0, abs=1e-6)

    def test_states_at_shape(self, paper_params):
        solution = solve_mode(Mode.BOTH_LOW, paper_params, 0.0, 0.0)
        out = solution.states_at(np.linspace(0, 1e-10, 5))
        assert out.shape == (5, 2)
