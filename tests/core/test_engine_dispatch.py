"""`delays_for_direction` dispatch over the n-input entry points and
the parallel backend's Δ-matrix sharding (ISSUE 4 satellite)."""

import numpy as np
import pytest

from repro.core import PAPER_TABLE_I
from repro.core.multi_input import paper_generalized
from repro.engine import (ParallelEngine, delays_for_direction,
                          get_engine)
from repro.errors import ParameterError
from repro.units import PS


@pytest.fixture(scope="module")
def p3():
    return paper_generalized(3)


@pytest.fixture(scope="module")
def grid():
    rng = np.random.default_rng(3)
    return rng.uniform(-80 * PS, 80 * PS, size=(24, 2))


class TestDispatch:
    def test_two_input_routes_to_scalar_entry_points(self):
        engine = get_engine("vectorized")
        deltas = np.linspace(-50 * PS, 50 * PS, 11)
        assert np.array_equal(
            delays_for_direction(engine, "falling", PAPER_TABLE_I,
                                 deltas),
            engine.delays_falling(PAPER_TABLE_I, deltas))
        assert np.array_equal(
            delays_for_direction(engine, "rising", PAPER_TABLE_I,
                                 deltas, 0.4),
            engine.delays_rising(PAPER_TABLE_I, deltas, 0.4))

    def test_generalized_routes_to_vector_entry_points(self, p3,
                                                       grid):
        engine = get_engine("vectorized")
        assert np.array_equal(
            delays_for_direction(engine, "falling", p3, grid),
            engine.delays_falling_n(p3, grid))
        assert np.array_equal(
            delays_for_direction(engine, "rising", p3, grid, 0.2),
            engine.delays_rising_n(p3, grid, 0.2))

    def test_invalid_direction(self, p3, grid):
        engine = get_engine("vectorized")
        with pytest.raises(ValueError):
            delays_for_direction(engine, "sideways", PAPER_TABLE_I,
                                 grid[:, 0])
        with pytest.raises(ValueError):
            delays_for_direction(engine, "sideways", p3, grid)


class TestBackendAgreement:
    def test_reference_vs_vectorized(self, p3, grid):
        reference = get_engine("reference")
        vectorized = get_engine("vectorized")
        for direction in ("falling", "rising"):
            slow = delays_for_direction(reference, direction, p3,
                                        grid)
            fast = delays_for_direction(vectorized, direction, p3,
                                        grid)
            assert float(np.max(np.abs(slow - fast))) <= 1e-15


class TestParallelMatrixSharding:
    def test_inline_fallback_counts_rows_not_floats(self, p3, grid):
        # 24 rows x 2 offsets = 48 floats; the threshold sees 24
        # evaluations, so the call must stay inline (no pool).
        engine = ParallelEngine(processes=4, min_shard_points=25)
        result = engine.delays_falling_n(p3, grid)
        assert engine._pool is None
        expected = get_engine("vectorized").delays_falling_n(p3, grid)
        assert np.array_equal(result, expected)

    def test_threshold_boundary_shards(self, p3, grid):
        engine = ParallelEngine(processes=2, min_shard_points=24)
        try:
            result = engine.delays_falling_n(p3, grid)
            assert engine._pool is not None
        finally:
            engine.close()
        expected = get_engine("vectorized").delays_falling_n(p3, grid)
        assert float(np.max(np.abs(result - expected))) <= 1e-15

    def test_sharded_rising_matches_inline(self, p3, grid):
        engine = ParallelEngine(processes=2, min_shard_points=4)
        try:
            sharded = engine.delays_rising_n(p3, grid, 0.1)
        finally:
            engine.close()
        inline = get_engine("vectorized").delays_rising_n(p3, grid,
                                                          0.1)
        assert float(np.max(np.abs(sharded - inline))) <= 1e-15

    def test_single_process_never_spawns(self, p3, grid):
        engine = ParallelEngine(processes=1, min_shard_points=1)
        result = engine.delays_falling_n(p3, grid)
        assert engine._pool is None
        assert result.shape == (24,)

    def test_nan_rejected_before_sharding(self, p3):
        engine = ParallelEngine(processes=2, min_shard_points=1)
        bad = np.full((8, 2), np.nan)
        with pytest.raises(ParameterError):
            engine.delays_falling_n(p3, bad)
        engine.close()

    def test_wrong_width_rejected(self, p3):
        engine = ParallelEngine(processes=2, min_shard_points=1)
        with pytest.raises(ParameterError):
            engine.delays_falling_n(p3, np.zeros((4, 3)))
        engine.close()
