"""Property tests for the flattened n-input eigen kernel (ISSUE 6).

The :class:`CompiledNorKernel` is the raw-speed path every engine
routes n-input sweeps through, so its contract is tested
property-based: random gate widths, random (ragged) Δ-matrix shapes
and ±inf sibling encodings must agree with the scalar trace solver —
the slow, segment-by-segment reference authority — to the engine
parity bound.  The Newton refinement's bisection fallback is pinned
by forcing zero Newton iterations and comparing against the
converged result.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multi_input import (CompiledNorKernel,
                                    GeneralizedNorParameters,
                                    _newton_bisect_refine,
                                    compiled_nor_kernel,
                                    generalized_model,
                                    paper_generalized)
from repro.engine import get_engine
from repro.units import PS

#: Engine-wide parity bound, seconds (ISSUE acceptance).
PARITY_TOL = 1e-12

_resistance = st.floats(min_value=1e4, max_value=4e5)
_cint = st.floats(min_value=2e-17, max_value=4e-16)
_cout = st.floats(min_value=1e-16, max_value=2e-15)


@st.composite
def wide_params(draw, max_inputs=4) -> GeneralizedNorParameters:
    """Random n-input parameter sets across widths 2..max_inputs."""
    n = draw(st.integers(2, max_inputs))
    return GeneralizedNorParameters(
        r_pullup=tuple(draw(_resistance) for _ in range(n)),
        r_pulldown=tuple(draw(_resistance) for _ in range(n)),
        c_internal=tuple(draw(_cint) for _ in range(n - 1)),
        co=draw(_cout), vdd=draw(st.sampled_from([0.8, 1.2])),
        delta_min=draw(st.sampled_from([0.0, 18.0 * PS])))


@st.composite
def delta_rows(draw, num_siblings: int) -> np.ndarray:
    """A small ragged batch of Δ-vectors, ±inf encodings included."""
    rows = draw(st.integers(1, 5))
    finite = st.floats(min_value=-400.0 * PS, max_value=400.0 * PS)
    entry = st.one_of(finite, st.sampled_from([math.inf, -math.inf]))
    return np.array([[draw(entry) for _ in range(num_siblings)]
                     for _ in range(rows)])


def _scalar_delays(model, deltas, direction, internal_init=0.0):
    """Per-row trace-solver delays — the reference authority."""
    out = []
    for row in deltas:
        clipped = np.clip(row, -model.settle_time(),
                          model.settle_time())
        times = np.concatenate([[0.0], clipped])
        times -= times.min()
        if direction == "falling":
            out.append(model.delay_falling(times))
        else:
            chain = [internal_init] * (len(row))
            out.append(model.delay_rising(times,
                                          internal_init=chain))
    return np.array(out)


class TestKernelVsScalarReference:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), params=wide_params())
    def test_falling(self, data, params):
        model = generalized_model(params)
        deltas = data.draw(delta_rows(params.num_inputs - 1))
        kernel = model.kernel()
        batched = kernel.evaluate(deltas, "falling")
        expected = _scalar_delays(model, deltas, "falling")
        assert float(np.max(np.abs(batched - expected))) <= PARITY_TOL

    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), params=wide_params(),
           x_fraction=st.sampled_from([0.0, 0.5, 1.0]))
    def test_rising(self, data, params, x_fraction):
        model = generalized_model(params)
        deltas = data.draw(delta_rows(params.num_inputs - 1))
        init = x_fraction * params.vdd
        batched = model.kernel().evaluate(deltas, "rising", init)
        expected = _scalar_delays(model, deltas, "rising", init)
        assert float(np.max(np.abs(batched - expected))) <= PARITY_TOL

    @settings(max_examples=10, deadline=None)
    @given(data=st.data(), params=wide_params(max_inputs=3))
    def test_reference_engine_agrees(self, data, params):
        """The kernel matches the reference *engine* seam too."""
        deltas = data.draw(delta_rows(params.num_inputs - 1))
        reference = get_engine("reference")
        batched = compiled_nor_kernel(params).evaluate(deltas,
                                                       "falling")
        expected = reference.delays_falling_n(params, deltas)
        assert float(np.max(np.abs(batched - expected))) <= PARITY_TOL


class TestGridShapes:
    """Ragged / multi-dimensional grid handling."""

    @pytest.mark.parametrize("shape", [(1,), (7,), (3, 5), (2, 3, 4)])
    def test_leading_shape_preserved(self, shape):
        params = paper_generalized(3)
        rng = np.random.default_rng(3)
        deltas = rng.uniform(-200 * PS, 200 * PS, size=shape + (2,))
        out = compiled_nor_kernel(params).evaluate(deltas, "falling")
        assert out.shape == shape
        assert np.all(np.isfinite(out))

    def test_single_vector(self):
        params = paper_generalized(4)
        out = compiled_nor_kernel(params).evaluate(
            np.zeros(3), "falling")
        assert out.shape == ()

    def test_all_infinite_rows(self):
        """Pure SIS encodings (every sibling at ±inf) stay finite."""
        params = paper_generalized(3)
        deltas = np.array([[math.inf, math.inf],
                           [-math.inf, -math.inf],
                           [math.inf, -math.inf]])
        out = compiled_nor_kernel(params).evaluate(deltas, "falling")
        assert np.all(np.isfinite(out))


class TestKernelObject:
    def test_memoized_per_model(self):
        params = paper_generalized(3)
        assert compiled_nor_kernel(params) is compiled_nor_kernel(
            params)
        assert isinstance(compiled_nor_kernel(params),
                          CompiledNorKernel)

    def test_covers_every_mode(self):
        params = paper_generalized(3)
        kernel = compiled_nor_kernel(params)
        n = params.num_inputs
        assert kernel._rates.shape == (1 << n, n + 1)
        assert kernel._vectors.shape == (1 << n, n + 1, n + 1)
        # Rates are decay rates of a passive RC network.
        assert np.all(kernel._rates <= 0.0)

    def test_unknown_direction_rejected(self):
        from repro.errors import ParameterError
        params = paper_generalized(3)
        with pytest.raises(ParameterError):
            compiled_nor_kernel(params).evaluate(np.zeros((1, 2)),
                                                 "sideways")


class TestNewtonRefinement:
    """The vectorized Newton stage and its bisection fallback."""

    def _random_rows(self, rng, rows):
        """Exp-sum crossings with a guaranteed bracket.

        Decaying single-exponential drops from w0 > threshold toward
        0: f(t) = w0·exp(r·t) crosses threshold inside [0, T] by
        construction.
        """
        rates = np.array([-1.0e9, -3.0e9])
        w0 = rng.uniform(1.0, 2.0, size=rows)
        weights = np.stack([w0, np.zeros(rows)], axis=-1)
        threshold = 0.5
        lo = np.zeros(rows)
        hi = np.full(rows, 5.0e-9)
        return weights, rates, lo, hi, threshold

    def test_matches_bisection_fallback(self):
        rng = np.random.default_rng(11)
        weights, rates, lo, hi, threshold = self._random_rows(rng, 64)
        newton = _newton_bisect_refine(weights, rates, lo, hi,
                                       threshold, downward=True)
        # newton_steps=0 sends every row through the pure-bisection
        # fallback — the non-convergence escape hatch.
        bisect = _newton_bisect_refine(weights, rates, lo, hi,
                                       threshold, downward=True,
                                       newton_steps=0)
        exact = np.log(threshold / weights[:, 0]) / rates[0]
        assert np.max(np.abs(newton - exact)) <= 1e-15 * np.max(hi)
        assert np.max(np.abs(bisect - exact)) <= 1e-15 * np.max(hi)

    def test_upward_crossings(self):
        """Rising exp-sums (downward=False) refine correctly too."""
        rates = np.array([-2.0e9, -5.0e9])
        # f(t) = 1 − exp(−2e9 t) climbs through 0.5 at ln(2)/2e9.
        weights = np.array([[-1.0, 0.0]])
        root = _newton_bisect_refine(weights, rates,
                                     np.zeros(1), np.full(1, 5e-9),
                                     -0.5, downward=False)
        assert abs(root[0] - math.log(2.0) / 2.0e9) <= 1e-24

    def test_flat_derivative_falls_back(self):
        """Rows whose Newton step degenerates still converge.

        A weight vector summing to ~0 slope at the midpoint makes
        f' vanish there; the refinement must recover via midpoint
        resets or the bisection fallback, never return NaN.
        """
        rates = np.array([-1.0e9, -1.0e9])
        weights = np.array([[2.0, -1.0]])  # f(t) = exp(-1e9 t)
        root = _newton_bisect_refine(weights, rates, np.zeros(1),
                                     np.full(1, 10e-9), 0.5,
                                     downward=True)
        assert np.isfinite(root[0])
        value = weights[0] @ np.exp(root[0] * rates)
        assert abs(value - 0.5) <= 1e-12
