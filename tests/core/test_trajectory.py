"""Tests for repro.core.trajectory — crossing finder and mode chaining."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.modes import Mode
from repro.core.solutions import ExpSum
from repro.core.trajectory import (PiecewiseTrajectory, all_crossings,
                                   first_crossing, trajectory_from_modes)
from repro.errors import NoCrossingError, ParameterError
from repro.units import PS


class TestFirstCrossingSingleExponential:
    def test_exact_log_inversion(self):
        # f(t) = e^{-t}; crosses 0.5 at ln 2.
        f = ExpSum.build(0.0, [(1.0, -1.0)])
        assert first_crossing(f, 0.5) == pytest.approx(math.log(2.0),
                                                       rel=1e-14)

    def test_with_offset(self):
        # f(t) = 1 - e^{-t}; crosses 0.5 at ln 2.
        f = ExpSum.build(1.0, [(-1.0, -1.0)])
        assert first_crossing(f, 0.5) == pytest.approx(math.log(2.0),
                                                       rel=1e-14)

    def test_unreachable_threshold(self):
        f = ExpSum.build(0.0, [(1.0, -1.0)])  # range (0, 1]
        assert first_crossing(f, 1.5) is None
        assert first_crossing(f, -0.5) is None

    def test_respects_t_lo(self):
        f = ExpSum.build(0.0, [(1.0, -1.0)])
        assert first_crossing(f, 0.5, t_lo=1.0) is None

    def test_respects_t_hi(self):
        f = ExpSum.build(0.0, [(1.0, -1.0)])
        assert first_crossing(f, 0.5, t_hi=0.5) is None
        assert first_crossing(f, 0.5, t_hi=1.0) == pytest.approx(
            math.log(2.0))

    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_inverse_property(self, threshold):
        f = ExpSum.build(0.0, [(1.0, -2.0)])
        t = first_crossing(f, threshold)
        assert f(t) == pytest.approx(threshold, rel=1e-12)


class TestFirstCrossingTwoExponentials:
    def test_monotone_sum(self):
        f = ExpSum.build(0.0, [(0.6, -1.0), (0.4, -3.0)])
        t = first_crossing(f, 0.5)
        assert f(t) == pytest.approx(0.5, abs=1e-12)

    def test_non_monotone_overshoot(self):
        # f(t) = -e^{-5t} + e^{-0.2t}: rises above then decays; crosses
        # 0.5 twice.
        f = ExpSum.build(0.0, [(-1.0, -5.0), (1.0, -0.2)])
        crossings = all_crossings(f, 0.5)
        assert len(crossings) == 2
        for t in crossings:
            assert f(t) == pytest.approx(0.5, abs=1e-10)
        assert crossings[0] < crossings[1]

    def test_first_returns_earliest(self):
        f = ExpSum.build(0.0, [(-1.0, -5.0), (1.0, -0.2)])
        t = first_crossing(f, 0.5)
        assert t == pytest.approx(all_crossings(f, 0.5)[0])

    def test_no_crossing_below_peak(self):
        f = ExpSum.build(0.0, [(-1.0, -5.0), (1.0, -0.2)])
        peak = max(f(np.linspace(0, 30, 5000)))
        assert first_crossing(f, peak + 0.05) is None

    def test_constant_has_no_crossing(self):
        f = ExpSum.build(1.0, [])
        assert first_crossing(f, 0.5) is None
        assert all_crossings(f, 0.5) == []

    def test_invalid_interval(self):
        f = ExpSum.build(0.0, [(1.0, -1.0), (0.5, -2.0)])
        with pytest.raises(ParameterError):
            all_crossings(f, 0.5, t_lo=1.0, t_hi=0.5)

    @given(st.floats(min_value=0.05, max_value=0.9),
           st.floats(min_value=-4.0, max_value=-0.5),
           st.floats(min_value=-0.4, max_value=-0.05),
           st.floats(min_value=0.1, max_value=0.9))
    def test_crossings_are_roots(self, k1, l1, l2, threshold):
        f = ExpSum.build(0.0, [(k1, l1), (1.0 - k1, l2)])
        for t in all_crossings(f, threshold):
            assert f(t) == pytest.approx(threshold, abs=1e-9)


class TestPiecewiseTrajectory:
    def test_single_mode(self, paper_params):
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_HIGH,
                                   (0.4, 0.8))
        assert traj.vo_at(0.0) == pytest.approx(0.8)
        assert traj.vn_at(50 * PS) == pytest.approx(0.4)
        assert traj.final_mode is Mode.BOTH_HIGH

    def test_state_continuity_at_switch(self, paper_params):
        switch = 20 * PS
        traj = PiecewiseTrajectory(paper_params, Mode.A_HIGH_B_LOW,
                                   (0.8, 0.8),
                                   [(switch, Mode.BOTH_HIGH)])
        eps = 1e-18
        before = traj.state_at(switch - eps)
        after = traj.state_at(switch + eps)
        # Different closed-form representations on either side; only
        # double-precision exp noise (~1e-8 relative) may remain.
        assert before[0] == pytest.approx(after[0], abs=1e-6)
        assert before[1] == pytest.approx(after[1], abs=1e-6)

    def test_multiple_switches(self, paper_params):
        traj = PiecewiseTrajectory(
            paper_params, Mode.BOTH_LOW, (0.8, 0.8),
            [(10 * PS, Mode.A_HIGH_B_LOW), (30 * PS, Mode.BOTH_HIGH)])
        assert len(traj.segments) == 3
        assert traj.final_mode is Mode.BOTH_HIGH
        # Output eventually drains to ground.
        assert traj.vo_at(2000 * PS) < 1e-3

    def test_negative_switch_time_rejected(self, paper_params):
        with pytest.raises(ParameterError):
            PiecewiseTrajectory(paper_params, Mode.BOTH_LOW, (0.8, 0.8),
                                [(-1 * PS, Mode.BOTH_HIGH)])

    def test_negative_query_rejected(self, paper_params):
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_LOW,
                                   (0.8, 0.8))
        with pytest.raises(ParameterError):
            traj.state_at(-1 * PS)

    def test_switches_sorted_automatically(self, paper_params):
        traj = PiecewiseTrajectory(
            paper_params, Mode.BOTH_LOW, (0.8, 0.8),
            [(30 * PS, Mode.BOTH_HIGH), (10 * PS, Mode.A_HIGH_B_LOW)])
        modes = [segment.mode for segment in traj.segments]
        assert modes == [Mode.BOTH_LOW, Mode.A_HIGH_B_LOW,
                         Mode.BOTH_HIGH]

    def test_sample_shape(self, paper_params):
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_LOW,
                                   (0.0, 0.0))
        out = traj.sample(np.linspace(0, 100 * PS, 7))
        assert out.shape == (7, 2)


class TestOutputCrossings:
    def test_falling_crossing(self, paper_params):
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_HIGH,
                                   (0.0, 0.8))
        crossings = traj.output_crossings()
        assert len(crossings) == 1
        assert crossings[0].direction == -1
        tau = paper_params.tau_parallel
        assert crossings[0].time == pytest.approx(math.log(2.0) * tau,
                                                  rel=1e-10)

    def test_rising_crossing(self, paper_params):
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_LOW,
                                   (0.8, 0.0))
        crossings = traj.output_crossings()
        assert len(crossings) == 1
        assert crossings[0].direction == +1

    def test_pulse_generates_two_crossings(self, paper_params):
        # Output falls in (1,1), then recovers in (0,0).
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_HIGH,
                                   (0.0, 0.8),
                                   [(100 * PS, Mode.BOTH_LOW)])
        crossings = traj.output_crossings()
        assert [c.direction for c in crossings] == [-1, +1]

    def test_short_pulse_filtered(self, paper_params):
        # Switch back before the output reached Vth: no crossing at all.
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_HIGH,
                                   (0.0, 0.8),
                                   [(2 * PS, Mode.BOTH_LOW)])
        assert traj.output_crossings() == []

    def test_t_max_cuts_search(self, paper_params):
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_HIGH,
                                   (0.0, 0.8))
        full = traj.output_crossings()
        assert traj.output_crossings(t_max=full[0].time / 2.0) == []

    def test_first_output_crossing_direction_filter(self, paper_params):
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_HIGH,
                                   (0.0, 0.8),
                                   [(100 * PS, Mode.BOTH_LOW)])
        t_up = traj.first_output_crossing(direction=+1)
        t_down = traj.first_output_crossing(direction=-1)
        assert t_down < t_up

    def test_no_crossing_raises(self, paper_params):
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_LOW,
                                   (0.8, 0.8))
        with pytest.raises(NoCrossingError):
            traj.first_output_crossing()

    def test_custom_threshold(self, paper_params):
        traj = PiecewiseTrajectory(paper_params, Mode.BOTH_HIGH,
                                   (0.0, 0.8))
        t_low = traj.first_output_crossing(threshold=0.1)
        t_high = traj.first_output_crossing(threshold=0.7)
        assert t_high < t_low


class TestTrajectoryFromModes:
    def test_convenience_constructor(self, paper_params):
        traj = trajectory_from_modes(
            paper_params,
            [Mode.BOTH_LOW, Mode.A_HIGH_B_LOW, Mode.BOTH_HIGH],
            [10 * PS, 30 * PS], (0.8, 0.8))
        assert len(traj.segments) == 3

    def test_length_mismatch(self, paper_params):
        with pytest.raises(ParameterError):
            trajectory_from_modes(paper_params,
                                  [Mode.BOTH_LOW, Mode.BOTH_HIGH],
                                  [], (0.8, 0.8))
