"""Tests for repro.core.parameters."""

import math

import pytest

from repro.core.parameters import (PAPER_DELTA_MIN, PAPER_TABLE_I,
                                   NorGateParameters)
from repro.errors import ParameterError
from repro.units import AF, KOHM, PS


def make(**overrides):
    values = dict(r1=37e3, r2=45e3, r3=45e3, r4=49e3, cn=60e-18,
                  co=617e-18, vdd=0.8, delta_min=0.0)
    values.update(overrides)
    return NorGateParameters(**values)


class TestValidation:
    @pytest.mark.parametrize("field", ["r1", "r2", "r3", "r4", "cn",
                                       "co", "vdd"])
    def test_rejects_non_positive(self, field):
        with pytest.raises(ParameterError):
            make(**{field: 0.0})
        with pytest.raises(ParameterError):
            make(**{field: -1.0})

    @pytest.mark.parametrize("field", ["r1", "co", "vdd"])
    def test_rejects_non_finite(self, field):
        with pytest.raises(ParameterError):
            make(**{field: math.inf})
        with pytest.raises(ParameterError):
            make(**{field: math.nan})

    def test_rejects_negative_delta_min(self):
        with pytest.raises(ParameterError):
            make(delta_min=-1e-12)

    def test_zero_delta_min_allowed(self):
        assert make(delta_min=0.0).delta_min == 0.0


class TestDerivedQuantities:
    def test_vth_is_half_vdd(self):
        assert make(vdd=0.8).vth == pytest.approx(0.4)

    def test_tau_parallel(self):
        p = make(r3=40e3, r4=40e3, co=1e-15)
        assert p.tau_parallel == pytest.approx(1e-15 * 20e3)

    def test_tau_parallel_smaller_than_each(self):
        p = make()
        assert p.tau_parallel < min(p.tau_r3, p.tau_r4)

    def test_tau_r3_r4(self):
        p = make(r3=45e3, r4=49e3, co=617e-18)
        assert p.tau_r3 == pytest.approx(617e-18 * 45e3)
        assert p.tau_r4 == pytest.approx(617e-18 * 49e3)

    def test_tau_n_charge(self):
        p = make(r1=37e3, cn=60e-18)
        assert p.tau_n_charge == pytest.approx(37e3 * 60e-18)


class TestTransforms:
    def test_replace(self):
        p = make().replace(r1=99e3)
        assert p.r1 == 99e3
        assert p.r2 == 45e3

    def test_replace_does_not_mutate(self):
        p = make()
        p.replace(r1=99e3)
        assert p.r1 == 37e3

    def test_without_delta_min(self):
        p = make(delta_min=18 * PS).without_delta_min()
        assert p.delta_min == 0.0

    def test_frozen(self):
        with pytest.raises(Exception):
            make().r1 = 1.0

    def test_as_dict(self):
        d = make().as_dict()
        assert d["r1"] == 37e3
        assert set(d) == {"r1", "r2", "r3", "r4", "cn", "co", "vdd",
                          "delta_min"}

    def test_describe_mentions_all_fields(self):
        text = make().describe()
        for token in ("R1", "R4", "CN", "CO", "VDD", "delta_min"):
            assert token in text


class TestPaperTableI:
    def test_exact_values(self):
        assert PAPER_TABLE_I.r1 == pytest.approx(37.088 * KOHM)
        assert PAPER_TABLE_I.r2 == pytest.approx(44.926 * KOHM)
        assert PAPER_TABLE_I.r3 == pytest.approx(45.150 * KOHM)
        assert PAPER_TABLE_I.r4 == pytest.approx(48.761 * KOHM)
        assert PAPER_TABLE_I.cn == pytest.approx(59.486 * AF)
        assert PAPER_TABLE_I.co == pytest.approx(617.259 * AF)

    def test_vdd_is_15nm_supply(self):
        assert PAPER_TABLE_I.vdd == pytest.approx(0.8)

    def test_delta_min(self):
        assert PAPER_DELTA_MIN == pytest.approx(18 * PS)
        assert PAPER_TABLE_I.delta_min == pytest.approx(18 * PS)

    def test_implied_falling_zero_delay(self):
        # ln2 * CO * (R3 || R4) + 18 ps should be the paper's 28 ps.
        delay = (math.log(2.0) * PAPER_TABLE_I.tau_parallel
                 + PAPER_TABLE_I.delta_min)
        assert delay == pytest.approx(28.0 * PS, abs=0.1 * PS)

    def test_implied_falling_minus_inf_delay(self):
        delay = (math.log(2.0) * PAPER_TABLE_I.tau_r4
                 + PAPER_TABLE_I.delta_min)
        assert delay == pytest.approx(38.9 * PS, abs=0.1 * PS)
