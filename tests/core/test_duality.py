"""Tests for repro.core.duality — the NAND2 mirror model."""

import math

import pytest

from repro.core import HybridNandModel, HybridNorModel, PAPER_TABLE_I
from repro.errors import ParameterError
from repro.units import PS


@pytest.fixture(scope="module")
def nand():
    return HybridNandModel(PAPER_TABLE_I)


@pytest.fixture(scope="module")
def nor():
    return HybridNorModel(PAPER_TABLE_I)


class TestMirrorIdentities:
    def test_rising_equals_nor_falling(self, nand, nor):
        for delta in (-40 * PS, -10 * PS, 0.0, 10 * PS, 40 * PS):
            assert nand.delay_rising(delta) == pytest.approx(
                nor.delay_falling(delta), rel=1e-12)

    def test_falling_equals_nor_rising_mirrored(self, nand, nor):
        vdd = PAPER_TABLE_I.vdd
        for delta in (-30 * PS, 0.0, 30 * PS):
            for x in (0.0, 0.3, vdd):
                assert nand.delay_falling(delta, vm_init=x) == \
                    pytest.approx(nor.delay_rising(delta,
                                                   vn_init=vdd - x),
                                  rel=1e-12)

    def test_default_vm_is_worst_case(self, nand, nor):
        """V_M = VDD mirrors the paper's V_N = GND convention."""
        assert nand.delay_falling(0.0) == pytest.approx(
            nor.delay_rising(0.0, vn_init=0.0), rel=1e-12)

    def test_closed_forms(self, nand, nor):
        assert nand.delay_rising_zero() == pytest.approx(
            nor.delay_falling_zero())
        assert nand.delay_rising_minus_inf() == pytest.approx(
            nor.delay_falling_minus_inf())
        assert nand.delay_rising_plus_inf() == pytest.approx(
            nor.delay_falling_plus_inf())
        assert nand.delay_falling_minus_inf() == pytest.approx(
            nor.delay_rising_minus_inf())

    def test_voltage_range_validated(self, nand):
        with pytest.raises(ParameterError):
            nand.delay_falling(0.0, vm_init=1.5)


class TestNandMisLandscape:
    """The NAND's Charlie effects are the NOR's, mirrored."""

    def test_rising_is_speedup(self, nand):
        ch = nand.characteristic_rising()
        assert ch.is_speedup  # parallel pMOS pull-up

    def test_falling_order_dependence(self, nand):
        # Early A (rail-side series transistor) predrains M -> the
        # dual of the NOR's early-A precharge: slower here.
        assert nand.delay_falling_minus_inf() > \
            nand.delay_falling_plus_inf()

    def test_falling_flat_for_negative_delta_at_worst_case(self, nand):
        values = [nand.delay_falling(d) for d in (-5 * PS, -25 * PS,
                                                  -70 * PS)]
        assert max(values) - min(values) < 1e-15

    def test_curves(self, nand):
        deltas = [d * PS for d in (-40, -20, 0, 20, 40)]
        rising = nand.rising_curve(deltas)
        falling = nand.falling_curve(deltas)
        assert rising.direction == "rising"
        assert falling.direction == "falling"
        assert min(rising.delays) == pytest.approx(
            nand.delay_rising_zero())

    def test_limits(self, nand):
        assert nand.delay_rising(math.inf) == pytest.approx(
            nand.delay_rising_plus_inf())


class TestAnalogNandDuality:
    """The analog NAND2 cell exhibits the mirrored MIS landscape."""

    @pytest.fixture(scope="class")
    def nand_sis(self, fast_transient_options):
        from repro.analysis.characterization import nand_mis_delay
        from repro.spice.technology import FINFET15
        values = {}
        for direction in ("rising", "falling"):
            values[direction] = {
                delta: nand_mis_delay(FINFET15, delta * PS, direction,
                                      fast_transient_options)
                for delta in (-400, 0, 400)}
        return values

    def test_rising_speedup(self, nand_sis):
        rising = nand_sis["rising"]
        assert rising[0] < rising[-400]
        assert rising[0] < rising[400]
        speedup = rising[0] / min(rising[-400], rising[400]) - 1.0
        assert -0.45 < speedup < -0.15  # mirror of the NOR's -30 %

    def test_falling_slowdown(self, nand_sis):
        falling = nand_sis["falling"]
        assert falling[0] > min(falling[-400], falling[400])

    def test_falling_order_dependence(self, nand_sis):
        falling = nand_sis["falling"]
        # Early A drains the stack node M -> B-last is slower than
        # A-last (the mirror of the NOR's rising asymmetry).
        assert falling[-400] != pytest.approx(falling[400],
                                              abs=0.05 * PS)
