"""Tests for repro.core.analytic — paper eqs. (8)-(12).

The key claims verified here:

* the exact formulas (8)/(9) match the trajectory solver exactly;
* the one-Newton-step approximations (10)-(12) match the exact
  crossings to sub-0.1 ps with the automatic probe;
* the *literal* paper coefficient formulas (with ``0.6 -> VDD/2`` and
  ``D -> C_N``) are algebraically identical to the initial-value
  solutions used by the solver — including the identities ``l = VDD``
  and ``a + b = VDD (1/(C_N R2) − (α+β))`` discovered while verifying
  the printed equations;
* at ``VDD = 1.2 V`` the general constants reduce to the paper's
  printed ``0.6``/``0.3`` literals.
"""

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core import analytic
from repro.core.hybrid_model import HybridNorModel
from repro.core.modes import Mode, mode_00_constants, mode_10_constants
from repro.core.parameters import PAPER_TABLE_I, NorGateParameters
from repro.core.solutions import solve_mode
from repro.units import PS

resistances = st.floats(min_value=5e3, max_value=5e5)
small_caps = st.floats(min_value=1e-17, max_value=1e-15)


@st.composite
def parameter_sets(draw):
    return NorGateParameters(
        r1=draw(resistances), r2=draw(resistances),
        r3=draw(resistances), r4=draw(resistances),
        cn=draw(small_caps), co=draw(small_caps), vdd=0.8)


@st.composite
def proportioned_parameter_sets(draw):
    """Parameter sets with a physically proportioned ``C_N <= C_O/2``.

    The constraint is generated (``C_N`` as a fraction of ``C_O``)
    rather than filtered with ``assume`` — the rejection rate of the
    filter version tripped hypothesis' ``filter_too_much`` health
    check intermittently.
    """
    co = draw(small_caps)
    fraction = draw(st.floats(min_value=0.01, max_value=0.5))
    return NorGateParameters(
        r1=draw(resistances), r2=draw(resistances),
        r3=draw(resistances), r4=draw(resistances),
        cn=co * fraction, co=co, vdd=0.8)


class TestExactFormulas:
    def test_eq8(self, paper_params):
        model = HybridNorModel(paper_params)
        assert analytic.delta_falling_zero(paper_params) == \
            pytest.approx(model.delay_falling(0.0), rel=1e-9)

    def test_eq9(self, paper_params):
        model = HybridNorModel(paper_params)
        assert analytic.delta_falling_minus_inf(paper_params) == \
            pytest.approx(model.delay_falling(-math.inf), rel=1e-9)

    def test_delta_min_flag(self, paper_params):
        with_dm = analytic.delta_falling_zero(paper_params, True)
        without = analytic.delta_falling_zero(paper_params, False)
        assert with_dm - without == pytest.approx(18 * PS)

    @given(parameter_sets())
    def test_eq8_random_params(self, params):
        model = HybridNorModel(params)
        assert analytic.delta_falling_zero(params) == pytest.approx(
            model.delay_falling(0.0), rel=1e-8)

    @given(parameter_sets())
    def test_eq9_random_params(self, params):
        model = HybridNorModel(params)
        assert analytic.delta_falling_minus_inf(params) == \
            pytest.approx(model.delay_falling(-math.inf), rel=1e-8)


class TestNewtonStepApproximations:
    def test_eq10_accuracy(self, paper_params):
        model = HybridNorModel(paper_params)
        approx = analytic.delta_falling_plus_inf(paper_params)
        exact = model.delay_falling_plus_inf()
        assert approx == pytest.approx(exact, abs=0.05 * PS)

    @pytest.mark.parametrize("delta_ps", [-60, -20, -5, 0, 5, 20, 60])
    @pytest.mark.parametrize("vn_init", [0.0, 0.4, 0.8])
    def test_eq11_eq12_accuracy(self, paper_params, delta_ps, vn_init):
        model = HybridNorModel(paper_params)
        delta = delta_ps * PS
        approx = analytic.delta_rising(paper_params, delta, vn_init)
        exact = model.delay_rising(delta, vn_init)
        assert approx == pytest.approx(exact, abs=0.05 * PS)

    @given(proportioned_parameter_sets(),
           st.floats(min_value=-50 * PS, max_value=50 * PS))
    def test_rising_approximation_random(self, params, delta):
        # The Newton linearization of eqs. (11)/(12) is only claimed
        # for physically proportioned gates: C_N is a parasitic node
        # capacitance, a fraction of the output load C_O (Table I:
        # ~1/10).  With C_N approaching or exceeding C_O the crossing
        # drifts far from the linearization point and the step can
        # miss by an arbitrary amount (empirically: zero violations
        # of the bound below across 8k samples with C_N <= C_O/2) —
        # hence the generated C_N <= C_O/2 proportioning.
        model = HybridNorModel(params)
        exact = model.delay_rising(delta, 0.0)
        # Sub-0.5 ps delays only arise for degenerate corners where
        # the crossing nearly coincides with the mode switch.
        assume(exact > 0.5 * PS)
        approx = analytic.delta_rising(params, delta, 0.0)
        assert approx == pytest.approx(exact, rel=2e-3, abs=0.05 * PS)

    def test_infinite_delta_rejected(self, paper_params):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            analytic.delta_rising(paper_params, math.inf)

    def test_explicit_probe(self, paper_params):
        """A probe near the crossing works; paper's 65 nm probes are
        tuned for slower technologies."""
        model = HybridNorModel(paper_params)
        exact = model.delay_falling_plus_inf()
        approx = analytic.delta_falling_plus_inf(
            paper_params, probe=exact - paper_params.delta_min)
        assert approx == pytest.approx(exact, abs=0.01 * PS)

    def test_newton_step_flat_raises(self):
        from repro.core.solutions import ExpSum
        from repro.errors import NoCrossingError
        flat = ExpSum.build(1.0, [])
        with pytest.raises(NoCrossingError):
            analytic.newton_step_crossing(flat, 0.5, 1.0)


class TestPaperLiteralCoefficients:
    """The printed coefficient formulas equal the IVP solutions."""

    @given(parameter_sets())
    def test_falling_c_coefficients_match_solver(self, params):
        c1, c2 = analytic.paper_c_coefficients_falling(params)
        consts = mode_10_constants(params)
        solution = solve_mode(Mode.A_HIGH_B_LOW, params, params.vdd,
                              params.vdd)
        # VO(t) = c1 (α+β) e^{λ1 t} + c2 (α−β) e^{λ2 t}
        expected_coeffs = {
            consts.lambda1: c1 * (consts.alpha + consts.beta),
            consts.lambda2: c2 * (consts.alpha - consts.beta),
        }
        for coeff, rate in zip(solution.vo.coeffs, solution.vo.rates):
            assert coeff == pytest.approx(expected_coeffs[rate],
                                          rel=1e-9)

    @given(parameter_sets())
    def test_l_equals_vdd(self, params):
        """The paper's l constant is algebraically VDD."""
        paper = analytic.mode_00_paper_constants(params)
        assert paper.l == pytest.approx(params.vdd, rel=1e-9)

    @given(parameter_sets())
    def test_a_plus_b_identity(self, params):
        consts = mode_00_constants(params)
        paper = analytic.mode_00_paper_constants(params)
        expected = params.vdd * (1.0 / (params.cn * params.r2)
                                 - (consts.alpha + consts.beta))
        assert paper.a + paper.b == pytest.approx(expected, rel=1e-9)

    @given(parameter_sets())
    def test_a_equals_minus_vdd_alpha_plus_beta(self, params):
        """Second identity: a = −VDD (α+β)."""
        consts = mode_00_constants(params)
        paper = analytic.mode_00_paper_constants(params)
        assert paper.a == pytest.approx(
            -params.vdd * (consts.alpha + consts.beta), rel=1e-9)

    @given(parameter_sets(), st.floats(min_value=0.0, max_value=0.8))
    def test_g_coefficients_match_solver(self, params, vn_init):
        g1, g2 = analytic.paper_g_coefficients(params, vn_init)
        consts = mode_10_constants(params)
        solution = solve_mode(Mode.A_HIGH_B_LOW, params, vn_init, 0.0)
        # VN(t) = (g1 e^{λ1 t} + g2 e^{λ2 t}) / (CN R2)
        expected = {
            consts.lambda1: g1 / (params.cn * params.r2),
            consts.lambda2: g2 / (params.cn * params.r2),
        }
        for coeff, rate in zip(solution.vn.coeffs, solution.vn.rates):
            assert coeff == pytest.approx(expected[rate], rel=1e-9,
                                          abs=1e-15)

    @given(parameter_sets(),
           st.floats(min_value=-60 * PS, max_value=60 * PS),
           st.floats(min_value=0.0, max_value=0.8))
    def test_rising_c_coefficients_match_solver(self, params, delta,
                                                vn_init):
        """Global-time c^Δ coefficients describe the same trajectory.

        The paper's global-time parametrization divides by
        ``e^{λ2 Δ}``, which underflows for extreme eigenvalue/Δ
        combinations — an intrinsic limitation of the printed form, so
        those are excluded here (the local-time solver has no such
        restriction).
        """
        consts = mode_00_constants(params)
        assume(abs(consts.lambda2) * abs(delta) < 200.0)
        c1, c2 = analytic.paper_c_coefficients_rising(params, delta,
                                                      vn_init)
        duration = abs(delta)
        if delta >= 0.0:
            vn_entry = analytic.vn_after_01(params, delta, vn_init)
            vo_entry = 0.0
        else:
            vn_entry, vo_entry = analytic.state_after_10(params,
                                                         duration,
                                                         vn_init)
        solution = solve_mode(Mode.BOTH_LOW, params, vn_entry, vo_entry)
        # Local coefficients are c^Δ_i * e^{λ_i |Δ|}.
        expected = {
            consts.lambda1: c1 * (consts.alpha + consts.beta)
            * math.exp(consts.lambda1 * duration),
            consts.lambda2: c2 * (consts.alpha - consts.beta)
            * math.exp(consts.lambda2 * duration),
        }
        for coeff, rate in zip(solution.vo.coeffs, solution.vo.rates):
            assert coeff == pytest.approx(expected[rate], rel=1e-8,
                                          abs=1e-12)


class TestVdd12Reduction:
    """At VDD = 1.2 V the general constants give the printed literals."""

    @pytest.fixture()
    def params_12(self):
        return PAPER_TABLE_I.replace(vdd=1.2)

    def test_c2_prefactor_is_06(self, params_12):
        """Eq. (10): c2 = 0.6 [(α+β) C_N R2 − 1]/β at VDD = 1.2."""
        consts = mode_10_constants(params_12)
        cnr2 = params_12.cn * params_12.r2
        printed = 0.6 * ((consts.alpha + consts.beta) * cnr2
                         - 1.0) / consts.beta
        _c1, c2 = analytic.paper_c_coefficients_falling(params_12)
        assert c2 == pytest.approx(printed, rel=1e-12)

    def test_g2_prefactor_is_06_for_x_vdd(self, params_12):
        """Eq. (12): X = VDD gives g2 = 0.6 (x+y) C_N R2 / y."""
        consts = mode_10_constants(params_12)
        x, y = consts.alpha, consts.beta
        printed = 0.6 * (x + y) * params_12.cn * params_12.r2 / y
        _g1, g2 = analytic.paper_g_coefficients(params_12, 1.2)
        assert g2 == pytest.approx(printed, rel=1e-12)

    def test_g2_prefactor_is_03_for_x_half_vdd(self, params_12):
        """Eq. (12): X = VDD/2 gives g2 = 0.3 (x+y) C_N R2 / y."""
        consts = mode_10_constants(params_12)
        x, y = consts.alpha, consts.beta
        printed = 0.3 * (x + y) * params_12.cn * params_12.r2 / y
        _g1, g2 = analytic.paper_g_coefficients(params_12, 0.6)
        assert g2 == pytest.approx(printed, rel=1e-12)

    def test_g_coefficients_zero_for_ground(self, paper_params):
        g1, g2 = analytic.paper_g_coefficients(paper_params, 0.0)
        assert g1 == 0.0
        assert g2 == 0.0


class TestHelperTrajectories:
    def test_vn_after_01(self, paper_params):
        """V_N^{(0,1)}(Δ) formula vs the mode solver."""
        solution = solve_mode(Mode.A_LOW_B_HIGH, paper_params, 0.3, 0.0)
        for delta in (0.0, 5 * PS, 50 * PS):
            assert analytic.vn_after_01(paper_params, delta, 0.3) == \
                pytest.approx(solution.vn(delta), rel=1e-12)

    def test_state_after_10(self, paper_params):
        solution = solve_mode(Mode.A_HIGH_B_LOW, paper_params, 0.8, 0.0)
        vn, vo = analytic.state_after_10(paper_params, 10 * PS, 0.8)
        assert vn == pytest.approx(solution.vn(10 * PS), rel=1e-12)
        assert vo == pytest.approx(solution.vo(10 * PS), rel=1e-12)

    def test_paper_probe_constants(self):
        assert analytic.PAPER_PROBE_FALLING == 1e-10
        assert analytic.PAPER_PROBE_RISING_POS == 2e-10
        assert analytic.PAPER_PROBE_RISING_NEG == 1e-10
