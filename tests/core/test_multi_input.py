"""Tests for repro.core.multi_input — the n-input NOR generalization."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.parameters import NorGateParameters

from repro.core import HybridNorModel, PAPER_TABLE_I
from repro.core.multi_input import (GeneralizedNorModel,
                                    GeneralizedNorParameters,
                                    generalized_model)
from repro.errors import NoCrossingError, ParameterError
from repro.units import PS


@pytest.fixture(scope="module")
def gen2():
    return GeneralizedNorModel(
        GeneralizedNorParameters.from_two_input(PAPER_TABLE_I))


@pytest.fixture(scope="module")
def ref2():
    return HybridNorModel(PAPER_TABLE_I)


@pytest.fixture(scope="module")
def gen3():
    return GeneralizedNorModel(GeneralizedNorParameters(
        r_pullup=(37e3, 45e3, 45e3),
        r_pulldown=(45e3, 47e3, 49e3),
        c_internal=(60e-18, 60e-18),
        co=617e-18, vdd=0.8, delta_min=18 * PS))


class TestParameters:
    def test_two_input_mapping(self):
        params = GeneralizedNorParameters.from_two_input(PAPER_TABLE_I)
        assert params.num_inputs == 2
        assert params.r_pullup == (PAPER_TABLE_I.r1, PAPER_TABLE_I.r2)
        assert params.r_pulldown == (PAPER_TABLE_I.r3,
                                     PAPER_TABLE_I.r4)
        assert params.c_internal == (PAPER_TABLE_I.cn,)
        assert params.vth == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ParameterError):
            GeneralizedNorParameters(r_pullup=(1e3,),
                                     r_pulldown=(1e3,),
                                     c_internal=(), co=1e-15)
        with pytest.raises(ParameterError):
            GeneralizedNorParameters(r_pullup=(1e3, 1e3),
                                     r_pulldown=(1e3,),
                                     c_internal=(1e-16,), co=1e-15)
        with pytest.raises(ParameterError):
            GeneralizedNorParameters(r_pullup=(1e3, 1e3),
                                     r_pulldown=(1e3, 1e3),
                                     c_internal=(1e-16, 1e-16),
                                     co=1e-15)
        with pytest.raises(ParameterError):
            GeneralizedNorParameters(r_pullup=(1e3, -1e3),
                                     r_pulldown=(1e3, 1e3),
                                     c_internal=(1e-16,), co=1e-15)


class TestTwoInputEquivalence:
    """n = 2 must reproduce the closed-form paper model exactly."""

    @pytest.mark.parametrize("delta_ps", [-400, -25, -10, 0, 10, 25,
                                          400])
    def test_falling_delays(self, gen2, ref2, delta_ps):
        delta = delta_ps * PS
        rise_a = max(0.0, -delta)
        rise_b = rise_a + delta
        gen = gen2.delay_falling([rise_a, rise_b])
        ref = ref2.delay_falling(delta)
        assert gen == pytest.approx(ref, abs=1e-5 * PS)

    @pytest.mark.parametrize("delta_ps", [-400, -15, 0, 15, 400])
    def test_rising_delays(self, gen2, ref2, delta_ps):
        delta = delta_ps * PS
        fall_a = max(0.0, -delta)
        fall_b = fall_a + delta
        gen = gen2.delay_rising([fall_a, fall_b])
        ref = ref2.delay_rising(delta, vn_init=0.0)
        assert gen == pytest.approx(ref, abs=1e-5 * PS)

    def test_crossing_stream_matches(self, gen2, ref2):
        events_a = [(100 * PS, 1), (900 * PS, 0)]
        events_b = [(130 * PS, 1), (1000 * PS, 0)]
        gen = gen2.output_crossings_for_inputs(
            [events_a, events_b], initial_inputs=[0, 0])
        ref = ref2.output_crossings_for_inputs(
            events_a, events_b, a_initial=0, b_initial=0)
        assert [v for _, v in gen] == [v for _, v in ref]
        for (tg, _), (tr, _) in zip(gen, ref):
            assert tg == pytest.approx(tr, abs=1e-5 * PS)


class TestRestingStates:
    def test_all_low_rests_at_vdd(self, gen3):
        state = gen3.resting_state([0, 0, 0])
        assert np.allclose(state, 0.8, atol=1e-9)

    def test_all_high_floats_at_worst_case(self, gen3):
        state = gen3.resting_state([1, 1, 1])
        # Internal nodes float (worst case GND); output drained.
        assert np.allclose(state, 0.0, atol=1e-9)

    def test_partial_chain_charging(self, gen3):
        # Input 3 high only: the chain through inputs 1, 2 charges the
        # first two internal nodes to VDD; the output is drained.
        state = gen3.resting_state([0, 0, 1])
        assert state[0] == pytest.approx(0.8, abs=1e-6)
        assert state[1] == pytest.approx(0.8, abs=1e-6)
        assert state[2] == pytest.approx(0.0, abs=1e-6)


class TestThreeInputMis:
    def test_simultaneous_falling_closed_form(self, gen3):
        """Triple-parallel discharge: ln 2 · CO · (R||R||R) + δ_min."""
        parallel = 1.0 / (1 / 45e3 + 1 / 47e3 + 1 / 49e3)
        expected = math.log(2.0) * 617e-18 * parallel + 18 * PS
        assert gen3.delay_falling([0.0, 0.0, 0.0]) == pytest.approx(
            expected, rel=1e-6)

    def test_mis_speedup_grows_with_switching_inputs(self, gen3):
        far = 600 * PS
        one = gen3.delay_falling([0.0, far, far])
        two = gen3.delay_falling([0.0, 0.0, far])
        three = gen3.delay_falling([0.0, 0.0, 0.0])
        assert three < two < one

    def test_rising_rail_order_dependence(self, gen3):
        """Falling the rail-side input first pre-charges the chain."""
        rail_first = gen3.delay_rising([0.0, 300 * PS, 600 * PS])
        rail_last = gen3.delay_rising([600 * PS, 300 * PS, 0.0])
        assert rail_first < rail_last

    def test_rising_simultaneous_is_worst_case(self, gen3):
        simultaneous = gen3.delay_rising([0.0, 0.0, 0.0])
        staggered = gen3.delay_rising([0.0, 300 * PS, 600 * PS])
        assert simultaneous >= staggered

    def test_three_input_slower_than_two_input_pullup(self, gen2,
                                                      gen3):
        """A taller stack charges slower (per-stage RC accumulates)."""
        rise3 = gen3.delay_rising([0.0, 0.0, 0.0])
        rise2 = gen2.delay_rising([0.0, 0.0])
        assert rise3 > rise2

    def test_internal_init_speeds_rising(self, gen3):
        worst = gen3.delay_rising([0.0, 0.0, 0.0])
        charged = gen3.delay_rising([0.0, 0.0, 0.0],
                                    internal_init=[0.8, 0.8])
        assert charged < worst


class TestValidation:
    def test_wrong_stream_count(self, gen3):
        with pytest.raises(ParameterError):
            gen3.output_crossings_for_inputs([[], []])

    def test_wrong_times_count(self, gen3):
        with pytest.raises(ParameterError):
            gen3.delay_falling([0.0, 0.0])

    def test_negative_event_times(self, gen3):
        with pytest.raises(ParameterError):
            gen3.output_crossings_for_inputs(
                [[(-1 * PS, 1)], [], []], initial_inputs=[0, 0, 0])

    def test_stuck_high_input_blocks_output(self, gen3):
        # Input 2 held high: the output is low and stays low; the
        # rising edge on input 1 produces no crossing at all.
        crossings = gen3.output_crossings_for_inputs(
            [[(100 * PS, 1)], [], []], initial_inputs=[0, 1, 0])
        assert crossings == []

    def test_no_crossing_error_type_exported(self):
        # delay_falling/delay_rising raise NoCrossingError when the
        # requested transition cannot occur; the type is part of the
        # public error hierarchy.
        from repro.errors import ReproError
        assert issubclass(NoCrossingError, ReproError)


class TestDeltaMinDeferral:
    def test_delta_min_shifts_delay(self):
        base = GeneralizedNorParameters(
            r_pullup=(37e3, 45e3, 45e3),
            r_pulldown=(45e3, 47e3, 49e3),
            c_internal=(60e-18, 60e-18),
            co=617e-18, vdd=0.8, delta_min=0.0)
        with_dmin = GeneralizedNorParameters(
            r_pullup=base.r_pullup, r_pulldown=base.r_pulldown,
            c_internal=base.c_internal, co=base.co, vdd=base.vdd,
            delta_min=18 * PS)
        d0 = GeneralizedNorModel(base).delay_falling([0.0, 0.0, 0.0])
        d1 = GeneralizedNorModel(with_dmin).delay_falling(
            [0.0, 0.0, 0.0])
        assert d1 - d0 == pytest.approx(18 * PS, rel=1e-9)


class TestPairwiseSweeps:
    def test_three_input_sweep_matches_scalar_calls(self, gen3):
        deltas = np.array([-20 * PS, 0.0, 20 * PS])
        swept = gen3.delays_falling_sweep(deltas)
        for delta, value in zip(deltas, swept):
            pair = [max(0.0, -float(delta)), max(0.0, float(delta))]
            assert value == pytest.approx(
                gen3.delay_falling(pair + [0.0]), abs=1e-18)

    def test_three_input_rising_sweep(self, gen3):
        swept = gen3.delays_rising_sweep(np.array([0.0, 10 * PS]))
        assert swept[0] == pytest.approx(
            gen3.delay_rising([0.0, 0.0, 0.0]), abs=1e-18)

    def test_three_input_sweep_clips_infinite_to_sis(self, gen3):
        # ±inf separations are the SIS plateaus: they agree with any
        # separation beyond the settling region.
        far = 2.0 * generalized_model(gen3.params).settle_time()
        swept = gen3.delays_falling_sweep([math.inf, -math.inf])
        plateau = gen3.delays_falling_sweep([far, -far])
        assert swept == pytest.approx(plateau, abs=1e-18)

    def test_two_input_sweep_tracks_hybrid_model(self, gen2, ref2):
        deltas = np.array([-30 * PS, -5 * PS, 0.0, 5 * PS, 30 * PS])
        swept = gen2.delays_falling_sweep(deltas)
        for delta, value in zip(deltas, swept):
            assert value == pytest.approx(
                ref2.delay_falling(float(delta)), rel=1e-9)


#: Positive, finite electrical values spanning realistic magnitudes.
_resistances = st.floats(min_value=1e2, max_value=1e6,
                         allow_nan=False, allow_infinity=False)
_capacitances = st.floats(min_value=1e-18, max_value=1e-12,
                          allow_nan=False, allow_infinity=False)
_voltages = st.floats(min_value=0.1, max_value=5.0,
                      allow_nan=False, allow_infinity=False)
_delays = st.floats(min_value=0.0, max_value=1e-9,
                    allow_nan=False, allow_infinity=False)


@st.composite
def _two_input_params(draw):
    return NorGateParameters(
        r1=draw(_resistances), r2=draw(_resistances),
        r3=draw(_resistances), r4=draw(_resistances),
        cn=draw(_capacitances), co=draw(_capacitances),
        vdd=draw(_voltages), delta_min=draw(_delays))


class TestRoundTripProperties:
    """Hypothesis: from_two_input / to_two_input are exact inverses."""

    @given(params=_two_input_params())
    def test_two_input_round_trip(self, params):
        widened = GeneralizedNorParameters.from_two_input(params)
        assert widened.num_inputs == 2
        assert widened.to_two_input() == params

    @given(params=_two_input_params())
    def test_generalized_round_trip(self, params):
        widened = GeneralizedNorParameters.from_two_input(params)
        again = GeneralizedNorParameters.from_two_input(
            widened.to_two_input())
        assert again == widened

    @given(params=_two_input_params(),
           num_inputs=st.integers(min_value=3, max_value=6))
    def test_wider_gates_cannot_reduce(self, params, num_inputs):
        from repro.core.multi_input import paper_generalized
        wide = paper_generalized(num_inputs, params)
        with pytest.raises(ParameterError):
            wide.to_two_input()


class TestLengthValidationProperties:
    """Hypothesis: mismatched stack lengths raise ParameterError."""

    @given(n=st.integers(min_value=2, max_value=6),
           pulldown_delta=st.integers(min_value=-2, max_value=2),
           internal_delta=st.integers(min_value=-2, max_value=2))
    def test_mismatched_lengths_rejected(self, n, pulldown_delta,
                                         internal_delta):
        pulldown = max(1, n + pulldown_delta)
        internal = max(0, n - 1 + internal_delta)
        kwargs = dict(r_pullup=(45e3,) * n,
                      r_pulldown=(45e3,) * pulldown,
                      c_internal=(60e-18,) * internal,
                      co=617e-18)
        if pulldown == n and internal == n - 1:
            assert GeneralizedNorParameters(**kwargs).num_inputs == n
        else:
            with pytest.raises(ParameterError):
                GeneralizedNorParameters(**kwargs)

    @given(value=st.one_of(
        st.floats(max_value=0.0, allow_nan=False),
        st.just(math.nan), st.just(math.inf)))
    def test_non_positive_values_rejected(self, value):
        with pytest.raises(ParameterError):
            GeneralizedNorParameters(
                r_pullup=(45e3, value), r_pulldown=(45e3, 45e3),
                c_internal=(60e-18,), co=617e-18)

    def test_list_fields_coerced_to_tuples(self):
        params = GeneralizedNorParameters(
            r_pullup=[37e3, 45e3], r_pulldown=[45e3, 47e3],
            c_internal=[60e-18], co=617e-18)
        assert isinstance(params.r_pullup, tuple)
        assert hash(params) == hash(params.replace())

    def test_as_dict_round_trip(self):
        params = GeneralizedNorParameters(
            r_pullup=(37e3, 45e3, 45e3),
            r_pulldown=(45e3, 47e3, 49e3),
            c_internal=(60e-18, 60e-18), co=617e-18,
            vdd=0.8, delta_min=18 * PS)
        assert GeneralizedNorParameters(**params.as_dict()) == params
