"""Parity and contract tests for the delay-engine backends.

The vectorized engine must reproduce the scalar reference to ≤1e-12 s
absolute on *randomized* parameter sets and Δ grids — including the
``±inf`` SIS limits and the ``Δ = 0`` MIS point — for both output
directions and for every studied internal-node initial voltage.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.charlie import MisCurve
from repro.core.hybrid_model import HybridNorModel
from repro.core.multi_input import GeneralizedNorParameters
from repro.core.parameters import PAPER_TABLE_I, NorGateParameters
from repro.engine import (DEFAULT_ENGINE, DelayEngine, ReferenceEngine,
                          VectorizedEngine, available_engines,
                          get_engine, register_engine)
from repro.units import PS

#: Absolute backend-parity bound, seconds (ISSUE acceptance).
PARITY_TOL = 1e-12

# Two decades of resistance/capacitance around the paper's Table I —
# wide enough to move every eigenvalue, pole and stationary point.
_resistance = st.floats(min_value=4e3, max_value=4e5)
_cn = st.floats(min_value=6e-18, max_value=6e-16)
_co = st.floats(min_value=6e-17, max_value=6e-15)
_delta_min = st.sampled_from([0.0, 18.0 * PS])


@st.composite
def gate_params(draw) -> NorGateParameters:
    return NorGateParameters(
        r1=draw(_resistance), r2=draw(_resistance),
        r3=draw(_resistance), r4=draw(_resistance),
        cn=draw(_cn), co=draw(_co), vdd=0.8,
        delta_min=draw(_delta_min))


@st.composite
def delta_grids(draw) -> np.ndarray:
    finite = draw(st.lists(
        st.floats(min_value=-400.0 * PS, max_value=400.0 * PS),
        min_size=1, max_size=24))
    # Always probe the SIS limits and the exact MIS point.
    return np.array(finite + [-math.inf, 0.0, math.inf])


@pytest.fixture(scope="module")
def reference() -> DelayEngine:
    return get_engine("reference")


@pytest.fixture(scope="module")
def vectorized() -> DelayEngine:
    return get_engine("vectorized")


class TestRandomizedParity:
    @given(params=gate_params(), deltas=delta_grids())
    def test_falling(self, reference, vectorized, params, deltas):
        expected = reference.delays_falling(params, deltas)
        actual = vectorized.delays_falling(params, deltas)
        assert np.max(np.abs(actual - expected)) <= PARITY_TOL

    @given(params=gate_params(), deltas=delta_grids(),
           x_fraction=st.sampled_from([0.0, 0.5, 1.0]))
    def test_rising(self, reference, vectorized, params, deltas,
                    x_fraction):
        vn_init = x_fraction * params.vdd
        expected = reference.delays_rising(params, deltas, vn_init)
        actual = vectorized.delays_rising(params, deltas, vn_init)
        assert np.max(np.abs(actual - expected)) <= PARITY_TOL

    @given(deltas=delta_grids())
    def test_paper_parameters_falling(self, reference, vectorized,
                                      deltas):
        expected = reference.delays_falling(PAPER_TABLE_I, deltas)
        actual = vectorized.delays_falling(PAPER_TABLE_I, deltas)
        assert np.max(np.abs(actual - expected)) <= PARITY_TOL


class TestDenseGridParity:
    """Deterministic dense sweep across the settle-time boundary."""

    def test_both_directions_dense(self, reference, vectorized):
        deltas = np.concatenate([
            np.linspace(-2000.0 * PS, 2000.0 * PS, 801),
            [-math.inf, 0.0, math.inf],
        ])
        for x in (0.0, 0.4, 0.8):
            assert np.max(np.abs(
                vectorized.delays_rising(PAPER_TABLE_I, deltas, x)
                - reference.delays_rising(PAPER_TABLE_I, deltas, x)
            )) <= PARITY_TOL
        assert np.max(np.abs(
            vectorized.delays_falling(PAPER_TABLE_I, deltas)
            - reference.delays_falling(PAPER_TABLE_I, deltas)
        )) <= PARITY_TOL

    def test_shape_preserved(self, vectorized):
        deltas = np.linspace(-20 * PS, 20 * PS, 12).reshape(3, 4)
        out = vectorized.delays_falling(PAPER_TABLE_I, deltas)
        assert out.shape == (3, 4)

    def test_scalar_model_consistency(self, vectorized):
        """Array API on the model equals its own scalar methods."""
        model = HybridNorModel(PAPER_TABLE_I)
        deltas = np.array([-30 * PS, 0.0, 30 * PS, math.inf])
        batch = model.delays_falling(deltas)
        for delta, value in zip(deltas, batch):
            assert value == pytest.approx(
                model.delay_falling(float(delta)), abs=PARITY_TOL)


class TestEngineRegistry:
    def test_default_is_vectorized(self):
        assert DEFAULT_ENGINE == "vectorized"
        assert get_engine().name == "vectorized"
        assert get_engine(None) is get_engine("vectorized")

    def test_both_backends_registered(self):
        assert {"reference", "vectorized"} <= set(available_engines())

    def test_instances_are_cached(self):
        assert get_engine("reference") is get_engine("reference")

    def test_instance_passthrough(self):
        engine = ReferenceEngine()
        assert get_engine(engine) is engine

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown delay engine"):
            get_engine("gpu")

    def test_protocol_runtime_check(self):
        assert isinstance(VectorizedEngine(), DelayEngine)
        assert isinstance(ReferenceEngine(), DelayEngine)

    def test_register_custom_backend(self):
        class Doubler(ReferenceEngine):
            name = "parity-test-dummy"

        register_engine(Doubler.name, Doubler)
        try:
            assert "parity-test-dummy" in available_engines()
            assert get_engine("parity-test-dummy").name == Doubler.name
        finally:
            # Keep the global registry clean for other tests.
            from repro.engine import base
            base._FACTORIES.pop(Doubler.name, None)
            base._INSTANCES.pop(Doubler.name, None)


class TestCurveIntegration:
    def test_curves_match_across_engines(self):
        model = HybridNorModel(PAPER_TABLE_I)
        deltas = np.linspace(-60 * PS, 60 * PS, 41)
        fast = model.falling_curve(deltas, engine="vectorized")
        slow = model.falling_curve(deltas, engine="reference")
        assert isinstance(fast, MisCurve)
        assert fast.max_abs_difference(slow) <= PARITY_TOL

    def test_generalized_two_input_sweep_routes_through_engine(self):
        from repro.core.multi_input import GeneralizedNorModel

        gen = GeneralizedNorModel(
            GeneralizedNorParameters.from_two_input(PAPER_TABLE_I))
        deltas = np.array([-math.inf, -20 * PS, 0.0, 20 * PS,
                           math.inf])
        swept = gen.delays_falling_sweep(deltas)
        direct = get_engine().delays_falling(PAPER_TABLE_I, deltas)
        assert np.max(np.abs(swept - direct)) == 0.0
        # ... and the engine agrees with the generalized eigen-solver.
        assert swept[2] == pytest.approx(
            gen.delay_falling([0.0, 0.0]), rel=1e-9)
        assert swept[3] == pytest.approx(
            gen.delay_falling([0.0, 20 * PS]), rel=1e-9)

    def test_round_trip_two_input_parameters(self):
        gen = GeneralizedNorParameters.from_two_input(PAPER_TABLE_I)
        assert gen.to_two_input() == PAPER_TABLE_I

    def test_to_two_input_rejects_wider_gates(self):
        from repro.errors import ParameterError

        wide = GeneralizedNorParameters(
            r_pullup=(1e4, 1e4, 1e4), r_pulldown=(1e4, 1e4, 1e4),
            c_internal=(1e-16, 1e-16), co=1e-15)
        with pytest.raises(ParameterError):
            wide.to_two_input()
