"""Tests for repro.core.charlie — characteristic delays and MIS curves."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.charlie import (CharacteristicDelays, MisCurve,
                                characteristic_from_samples)
from repro.errors import ParameterError
from repro.units import PS


class TestCharacteristicDelays:
    def test_percent_annotations_match_paper(self):
        """Fig. 2b: 28 ps at Δ=0 vs plateaus gives ~ -28 %."""
        ch = CharacteristicDelays(minus_inf=38.9 * PS, zero=28.0 * PS,
                                  plus_inf=39.12 * PS)
        assert ch.mis_effect_vs_minus_inf == pytest.approx(-28.01,
                                                           abs=0.05)
        assert ch.mis_effect_vs_plus_inf == pytest.approx(-28.43,
                                                          abs=0.05)

    def test_speedup_detection(self):
        ch = CharacteristicDelays(38 * PS, 28 * PS, 39 * PS)
        assert ch.is_speedup
        assert not ch.is_slowdown

    def test_slowdown_detection(self):
        ch = CharacteristicDelays(54 * PS, 57 * PS, 53 * PS)
        assert ch.is_slowdown
        assert not ch.is_speedup

    def test_neither(self):
        ch = CharacteristicDelays(50 * PS, 52 * PS, 54 * PS)
        assert not ch.is_speedup
        assert not ch.is_slowdown

    def test_shifted(self):
        ch = CharacteristicDelays(38 * PS, 28 * PS, 39 * PS)
        shifted = ch.shifted(-18 * PS)
        assert shifted.as_tuple() == pytest.approx(
            (20 * PS, 10 * PS, 21 * PS))

    def test_as_tuple_order(self):
        ch = CharacteristicDelays(1.0, 2.0, 3.0)
        assert ch.as_tuple() == (1.0, 2.0, 3.0)

    def test_describe(self):
        text = CharacteristicDelays(38 * PS, 28 * PS,
                                    39 * PS).describe("d")
        assert "38.00 ps" in text
        assert "28.00 ps" in text


class TestMisCurveConstruction:
    def test_basic(self):
        curve = MisCurve.from_arrays([-1e-12, 0.0, 1e-12],
                                     [3e-12, 2e-12, 3e-12], "falling")
        assert len(curve) == 3
        assert curve.direction == "falling"

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            MisCurve.from_arrays([0.0, 1.0], [1.0], "falling")

    def test_bad_direction(self):
        with pytest.raises(ParameterError):
            MisCurve.from_arrays([0.0], [1.0], "sideways")

    def test_non_increasing_deltas(self):
        with pytest.raises(ParameterError):
            MisCurve.from_arrays([0.0, 0.0], [1.0, 1.0], "rising")

    def test_rejects_multi_dimensional_arrays(self):
        grid = np.arange(4.0).reshape(2, 2)
        with pytest.raises(ParameterError, match="1-dimensional"):
            MisCurve.from_arrays(grid, grid, "falling")


@pytest.fixture()
def vee_curve():
    """A V-shaped falling MIS curve like Fig. 2b."""
    deltas = np.linspace(-60 * PS, 60 * PS, 13)
    delays = 38 * PS - 10 * PS * np.exp(-np.abs(deltas) / (15 * PS))
    return MisCurve.from_arrays(deltas, delays, "falling", label="vee")


class TestMisCurveQueries:
    def test_delay_at_interpolates(self, vee_curve):
        mid = vee_curve.delay_at(5 * PS)
        assert vee_curve.delays[6] <= mid <= vee_curve.delays[-1]

    def test_delay_at_edges_are_in_range(self, vee_curve):
        assert vee_curve.delay_at(-60 * PS) == vee_curve.delays[0]
        assert vee_curve.delay_at(60 * PS) == vee_curve.delays[-1]

    def test_delay_at_rejects_out_of_range(self, vee_curve):
        """No silent np.interp clamping outside the sampled window."""
        with pytest.raises(ValueError, match="outside the sampled"):
            vee_curve.delay_at(61 * PS)
        with pytest.raises(ValueError, match="outside the sampled"):
            vee_curve.delay_at(-1e-9)
        with pytest.raises(ValueError):
            vee_curve.delay_at(float("inf"))

    def test_characteristic_extraction(self, vee_curve):
        ch = vee_curve.characteristic()
        assert ch.zero == pytest.approx(28 * PS, rel=1e-6)
        assert ch.minus_inf == pytest.approx(vee_curve.delays[0])
        assert ch.plus_inf == pytest.approx(vee_curve.delays[-1])

    def test_extreme_near_zero_finds_minimum(self, vee_curve):
        delta, delay = vee_curve.extreme_near_zero()
        assert delta == pytest.approx(0.0)
        assert delay == pytest.approx(28 * PS, rel=1e-6)

    def test_extreme_near_zero_finds_maximum(self):
        deltas = np.linspace(-60 * PS, 60 * PS, 13)
        delays = 54 * PS + 3 * PS * np.exp(-np.abs(deltas) / (15 * PS))
        curve = MisCurve.from_arrays(deltas, delays, "rising")
        _, delay = curve.extreme_near_zero()
        assert delay == pytest.approx(57 * PS, rel=1e-6)

    def test_rows_in_ps(self, vee_curve):
        rows = vee_curve.rows()
        assert rows[0][0] == pytest.approx(-60.0)
        assert rows[6][1] == pytest.approx(28.0, rel=1e-6)

    def test_helper_characteristic_from_samples(self):
        ch = characteristic_from_samples(
            [-1e-12, 0.0, 1e-12], [3e-12, 2e-12, 3e-12], "falling")
        assert ch.zero == pytest.approx(2e-12)


class TestMisCurveComparison:
    def test_identical_curves_zero_difference(self, vee_curve):
        assert vee_curve.max_abs_difference(vee_curve) == 0.0
        assert vee_curve.mean_abs_difference(vee_curve) == 0.0

    def test_shifted_difference(self, vee_curve):
        shifted = vee_curve.shifted(2 * PS)
        assert vee_curve.max_abs_difference(shifted) == pytest.approx(
            2 * PS, rel=1e-9)
        assert vee_curve.mean_abs_difference(shifted) == pytest.approx(
            2 * PS, rel=1e-9)

    def test_non_overlapping_raises(self, vee_curve):
        other = MisCurve.from_arrays([100 * PS, 200 * PS],
                                     [1 * PS, 1 * PS], "falling")
        with pytest.raises(ParameterError):
            vee_curve.max_abs_difference(other)

    @given(st.floats(min_value=-5 * PS, max_value=5 * PS))
    def test_shift_is_exact_offset(self, vee_curve, offset):
        shifted = vee_curve.shifted(offset)
        assert vee_curve.max_abs_difference(shifted) == pytest.approx(
            abs(offset), rel=1e-9, abs=1e-20)

    def test_symmetry(self, vee_curve):
        other = vee_curve.shifted(1 * PS)
        assert vee_curve.mean_abs_difference(other) == pytest.approx(
            other.mean_abs_difference(vee_curve), rel=1e-12)
