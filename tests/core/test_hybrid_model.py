"""Tests for repro.core.hybrid_model — the paper's delay functions."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hybrid_model import HybridNorModel
from repro.core.parameters import PAPER_TABLE_I, NorGateParameters
from repro.units import PS

deltas_st = st.floats(min_value=-80 * PS, max_value=80 * PS)


@pytest.fixture(scope="module")
def model():
    return HybridNorModel(PAPER_TABLE_I)


@pytest.fixture(scope="module")
def bare_model():
    return HybridNorModel(PAPER_TABLE_I.without_delta_min())


class TestClosedFormSisDelays:
    """Paper eqs. (8) and (9) versus the trajectory computation."""

    def test_falling_zero_matches_eq8(self, model):
        p = PAPER_TABLE_I
        expected = math.log(2.0) * p.tau_parallel + p.delta_min
        assert model.delay_falling_zero() == pytest.approx(expected)
        assert model.delay_falling(0.0) == pytest.approx(expected,
                                                         rel=1e-9)

    def test_falling_minus_inf_matches_eq9(self, model):
        p = PAPER_TABLE_I
        expected = math.log(2.0) * p.tau_r4 + p.delta_min
        assert model.delay_falling_minus_inf() == pytest.approx(expected)
        assert model.delay_falling(-math.inf) == pytest.approx(
            expected, rel=1e-9)

    def test_paper_28ps_and_39ps(self, model):
        assert model.delay_falling_zero() == pytest.approx(28.0 * PS,
                                                           abs=0.1 * PS)
        assert model.delay_falling_minus_inf() == pytest.approx(
            38.9 * PS, abs=0.1 * PS)

    def test_falling_plus_inf_exceeds_minus_inf(self, model):
        # T2 couples C_N into the discharge path when A switches first.
        assert model.delay_falling_plus_inf() > \
            model.delay_falling_minus_inf()

    def test_rising_order_dependence(self, model):
        # Early A transition charges N -> faster rising output.
        assert model.delay_rising_plus_inf() < \
            model.delay_rising_minus_inf()


class TestMisBehaviour:
    def test_falling_mis_is_speedup(self, model):
        characteristic = model.characteristic_falling()
        assert characteristic.is_speedup

    def test_falling_minimum_at_zero(self, model):
        deltas = np.linspace(-60 * PS, 60 * PS, 25)
        delays = [model.delay_falling(float(d)) for d in deltas]
        assert min(delays) == pytest.approx(model.delay_falling(0.0))

    def test_falling_monotone_away_from_zero(self, model):
        deltas = np.linspace(0.0, 60 * PS, 15)
        delays = [model.delay_falling(float(d)) for d in deltas]
        assert all(d2 >= d1 - 1e-18 for d1, d2 in zip(delays,
                                                      delays[1:]))
        deltas = np.linspace(-60 * PS, 0.0, 15)
        delays = [model.delay_falling(float(d)) for d in deltas]
        assert all(d2 <= d1 + 1e-18 for d1, d2 in zip(delays,
                                                      delays[1:]))

    def test_falling_limits_settle(self, model):
        assert model.delay_falling(300 * PS) == pytest.approx(
            model.delay_falling_plus_inf(), rel=1e-6)
        assert model.delay_falling(-300 * PS) == pytest.approx(
            model.delay_falling_minus_inf(), rel=1e-6)

    def test_rising_limits_settle(self, model):
        assert model.delay_rising(900 * PS) == pytest.approx(
            model.delay_rising_plus_inf(), rel=1e-6)
        assert model.delay_rising(-900 * PS) == pytest.approx(
            model.delay_rising_minus_inf(), rel=1e-6)

    def test_rising_zero_with_ground_equals_minus_inf(self, model):
        """The identity that breaks peak fitting (paper Section IV)."""
        assert model.delay_rising_zero(0.0) == pytest.approx(
            model.delay_rising_minus_inf(), rel=1e-9)

    def test_rising_zero_with_vdd_equals_plus_inf(self, model):
        """X = VDD makes (0,0) start from a fully charged node."""
        assert model.delay_rising_zero(PAPER_TABLE_I.vdd) == \
            pytest.approx(model.delay_rising_plus_inf(), rel=1e-9)

    def test_rising_flat_for_negative_delta_with_ground(self, model):
        """With X = GND the (1,0) intermediate mode changes nothing."""
        values = [model.delay_rising(d, 0.0)
                  for d in (-5 * PS, -20 * PS, -60 * PS)]
        assert max(values) - min(values) < 1e-15

    def test_rising_decreasing_in_positive_delta(self, model):
        deltas = np.linspace(0.0, 40 * PS, 12)
        delays = [model.delay_rising(float(d), 0.0) for d in deltas]
        assert all(d2 <= d1 + 1e-18 for d1, d2 in zip(delays,
                                                      delays[1:]))

    def test_rising_vn_init_monotone(self, model):
        """Higher initial V_N -> faster rising transition."""
        delays = [model.delay_rising(0.0, x)
                  for x in (0.0, 0.2, 0.4, 0.6, 0.8)]
        assert all(d2 <= d1 + 1e-18 for d1, d2 in zip(delays,
                                                      delays[1:]))

    @given(deltas_st)
    def test_falling_bounded_by_characteristics(self, model, delta):
        delay = model.delay_falling(delta)
        low = model.delay_falling_zero() - 1e-15
        high = model.delay_falling_plus_inf() + 1e-15
        assert low <= delay <= high


class TestDeltaMinHandling:
    def test_delta_min_shifts_all_falling_delays(self, model,
                                                 bare_model):
        for delta in (-40 * PS, 0.0, 15 * PS, math.inf):
            assert model.delay_falling(delta) == pytest.approx(
                bare_model.delay_falling(delta) + 18 * PS, rel=1e-9)

    def test_delta_min_shifts_all_rising_delays(self, model,
                                                bare_model):
        for delta in (-40 * PS, 0.0, 15 * PS):
            assert model.delay_rising(delta) == pytest.approx(
                bare_model.delay_rising(delta) + 18 * PS, rel=1e-9)


class TestDelayComputationObjects:
    def test_falling_computation_contents(self, model):
        comp = model.falling_computation(10 * PS)
        assert comp.delta == 10 * PS
        assert comp.delay == pytest.approx(comp.crossing_time + 18 * PS)
        assert comp.trajectory.vo_at(0.0) == pytest.approx(0.8)

    def test_rising_computation_reference(self, model):
        comp = model.rising_computation(10 * PS)
        assert comp.delay == pytest.approx(
            comp.crossing_time - 10 * PS + 18 * PS)

    def test_trajectory_modes_falling_positive(self, model):
        comp = model.falling_computation(10 * PS)
        modes = [s.mode.value for s in comp.trajectory.segments]
        assert modes == [(1, 0), (1, 1)]

    def test_trajectory_modes_falling_negative(self, model):
        comp = model.falling_computation(-10 * PS)
        modes = [s.mode.value for s in comp.trajectory.segments]
        assert modes == [(0, 1), (1, 1)]

    def test_trajectory_modes_rising(self, model):
        comp = model.rising_computation(10 * PS)
        modes = [s.mode.value for s in comp.trajectory.segments]
        assert modes == [(0, 1), (0, 0)]
        comp = model.rising_computation(-10 * PS)
        modes = [s.mode.value for s in comp.trajectory.segments]
        assert modes == [(1, 0), (0, 0)]


class TestCurves:
    def test_falling_curve(self, model):
        deltas = [d * PS for d in (-40, -20, 0, 20, 40)]
        curve = model.falling_curve(deltas)
        assert curve.direction == "falling"
        assert len(curve) == 5
        assert curve.delay_at(0.0) == pytest.approx(
            model.delay_falling(0.0))

    def test_rising_curve_label_mentions_vn(self, model):
        curve = model.rising_curve([0.0, 10 * PS], vn_init=0.4)
        assert "0.4" in curve.label

    def test_characteristic_falling(self, model):
        ch = model.characteristic_falling()
        assert ch.zero == pytest.approx(model.delay_falling_zero())
        assert ch.minus_inf == pytest.approx(
            model.delay_falling_minus_inf())

    def test_characteristic_rising(self, model):
        ch = model.characteristic_rising(vn_init=0.0)
        assert ch.zero == pytest.approx(ch.minus_inf)


class TestOutputCrossingsForInputs:
    def test_single_falling_event(self, model):
        crossings = model.output_crossings_for_inputs(
            [(100 * PS, 1)], [], a_initial=0, b_initial=0)
        assert len(crossings) == 1
        t, value = crossings[0]
        assert value == 0
        assert t - 100 * PS == pytest.approx(
            model.delay_falling_plus_inf(), rel=1e-9)

    def test_pulse_round_trip(self, model):
        crossings = model.output_crossings_for_inputs(
            [(100 * PS, 1), (1500 * PS, 0)], [],
            a_initial=0, b_initial=0)
        assert [v for _, v in crossings] == [0, 1]
        rising = crossings[1][0] - 1500 * PS
        assert rising == pytest.approx(model.delay_rising_minus_inf(),
                                       rel=1e-6)

    def test_mis_delay_matches_direct_computation(self, model):
        delta = 12 * PS
        crossings = model.output_crossings_for_inputs(
            [(200 * PS, 1)], [(200 * PS + delta, 1)],
            a_initial=0, b_initial=0)
        delay = crossings[0][0] - 200 * PS
        assert delay == pytest.approx(model.delay_falling(delta),
                                      rel=1e-9)

    def test_constant_high_input_blocks_output(self, model):
        crossings = model.output_crossings_for_inputs(
            [(100 * PS, 1), (400 * PS, 0)], [],
            a_initial=0, b_initial=1)
        # B stuck high -> output stays low forever.
        assert crossings == []

    def test_short_glitch_produces_no_output(self, model):
        crossings = model.output_crossings_for_inputs(
            [(100 * PS, 1), (102 * PS, 0)], [],
            a_initial=0, b_initial=0)
        assert crossings == []

    def test_negative_event_time_rejected(self, model):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            model.output_crossings_for_inputs([(-1 * PS, 1)], [],
                                              a_initial=0, b_initial=0)

    def test_t_max_truncates(self, model):
        crossings = model.output_crossings_for_inputs(
            [(100 * PS, 1)], [], a_initial=0, b_initial=0,
            t_max=50 * PS)
        assert crossings == []


class TestParameterSensitivity:
    """Physical sanity of the delay functions under parameter changes."""

    def test_larger_co_slows_everything(self):
        base = HybridNorModel(PAPER_TABLE_I)
        heavy = HybridNorModel(PAPER_TABLE_I.replace(
            co=2 * PAPER_TABLE_I.co))
        assert heavy.delay_falling(0.0) > base.delay_falling(0.0)
        assert heavy.delay_rising_plus_inf() > \
            base.delay_rising_plus_inf()

    def test_r4_only_affects_minus_inf_falling(self):
        base = HybridNorModel(PAPER_TABLE_I)
        changed = HybridNorModel(PAPER_TABLE_I.replace(
            r4=1.5 * PAPER_TABLE_I.r4))
        # δ↓(−∞) scales with R4 ...
        assert changed.delay_falling_minus_inf() > \
            base.delay_falling_minus_inf()
        # ... while δ↑(∞) is R4-independent (paper Section V).
        assert changed.delay_rising_plus_inf() == pytest.approx(
            base.delay_rising_plus_inf(), rel=1e-9)

    def test_r1_does_not_affect_falling(self):
        """Paper: 'characteristic Charlie delays in Fig. 5 are not
        affected by R1 at all'."""
        base = HybridNorModel(PAPER_TABLE_I)
        changed = HybridNorModel(PAPER_TABLE_I.replace(
            r1=3 * PAPER_TABLE_I.r1))
        for delta in (-20 * PS, 0.0, 20 * PS, math.inf, -math.inf):
            assert changed.delay_falling(delta) == pytest.approx(
                base.delay_falling(delta), rel=1e-9)
