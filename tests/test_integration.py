"""End-to-end integration tests: the paper's full workflow.

These tests tie the three subsystems together: the analog substrate
produces golden delays, the parametrization pipeline fits the hybrid
model to them, and the timing layer reproduces the analog behaviour
through the fitted channel.
"""

import pytest

from repro.analysis.accuracy import build_model_suite, reference_output
from repro.analysis.fitting import fit_from_characterization
from repro.core import HybridNorModel
from repro.core.parametrization import infer_delta_min
from repro.spice.technology import FINFET15
from repro.timing.metrics import deviation_area
from repro.timing.trace import DigitalTrace
from repro.units import PS


class TestCharacterizeFitPredict:
    def test_fitted_model_matches_analog_sis(self,
                                             characterization_cache):
        """The full Section V loop: fit targets within a fraction of a
        ps of the analog golden values."""
        fit = fit_from_characterization(characterization_cache)
        model = HybridNorModel(fit.params)
        targets = characterization_cache.targets
        assert model.delay_falling_minus_inf() == pytest.approx(
            targets.falling.minus_inf, abs=0.5 * PS)
        assert model.delay_falling_zero() == pytest.approx(
            targets.falling.zero, abs=0.5 * PS)
        assert model.delay_rising_plus_inf() == pytest.approx(
            targets.rising.plus_inf, abs=0.5 * PS)

    def test_inferred_delta_min_in_paper_range(self,
                                               characterization_cache):
        delta_min = infer_delta_min(
            characterization_cache.targets.falling)
        # The paper finds 18 ps on its 15 nm gate; our substrate lands
        # in the same regime.
        assert 8 * PS < delta_min < 25 * PS

    def test_fitted_curve_tracks_analog_falling_curve(
            self, characterization_cache):
        """Fig. 5's claim: very good falling-curve match."""
        fit = fit_from_characterization(characterization_cache)
        model_curve = HybridNorModel(fit.params).falling_curve(
            characterization_cache.falling.deltas)
        error = model_curve.mean_abs_difference(
            characterization_cache.falling)
        assert error < 2.5 * PS

    def test_without_delta_min_much_worse(self,
                                          characterization_cache):
        """Fig. 8's claim: the pure delay is essential."""
        fit = fit_from_characterization(characterization_cache)
        fit_no = fit_from_characterization(characterization_cache,
                                           delta_min=0.0)
        curve = characterization_cache.falling
        err_with = HybridNorModel(fit.params).falling_curve(
            curve.deltas).mean_abs_difference(curve)
        err_without = HybridNorModel(fit_no.params).falling_curve(
            curve.deltas).mean_abs_difference(curve)
        assert err_without > 1.5 * err_with


class TestChannelAgainstAnalog:
    def test_single_pulse_end_to_end(self, characterization_cache,
                                     fast_transient_options):
        """Digitized analog output vs the fitted hybrid channel."""
        from repro.timing.channels import HybridNorChannel
        fit = fit_from_characterization(characterization_cache,
                                        protocol="toggle")
        channel = HybridNorChannel(fit.params)
        a = DigitalTrace.from_edges(0, [300 * PS, 1300 * PS])
        b = DigitalTrace.constant(0)
        analog = reference_output(FINFET15, a, b, 2100 * PS,
                                  fast_transient_options)
        digital = channel.simulate(a, b)
        assert analog.values == digital.values
        for t_analog, t_digital in zip(analog.times, digital.times):
            assert t_digital == pytest.approx(t_analog, abs=2.5 * PS)

    def test_model_suite_ordering_on_small_trace(
            self, characterization_cache, fast_transient_options):
        """The hybrid channel tracks the analog reference at least as
        well as the inertial baseline on a MIS-rich trace."""
        fit = fit_from_characterization(characterization_cache,
                                        protocol="toggle")
        suite = build_model_suite(
            characterization_cache.targets_toggle, fit.params)
        a = DigitalTrace.from_edges(0, [300 * PS, 500 * PS, 800 * PS,
                                        1400 * PS])
        b = DigitalTrace.from_edges(0, [320 * PS, 530 * PS, 820 * PS,
                                        1500 * PS])
        t_end = 2200 * PS
        analog = reference_output(FINFET15, a, b, t_end,
                                  fast_transient_options)
        areas = {key: deviation_area(runner(a, b), analog, 0.0, t_end)
                 for key, runner in suite.items()}
        assert areas["hm"] <= areas["inertial"] * 1.25
