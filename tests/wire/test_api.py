"""The ``wire`` workflow end to end: envelope, handler, CLI.

``WireRequest`` must run through :class:`repro.api.Session`, return a
typed :class:`WireResult` whose fields are mutually consistent, and be
reachable from the command line with kΩ/fF unit conversion.
"""

import json

import pytest

from repro.api import Session, WireRequest, WireResult, from_json
from repro.cli import build_parser, main, request_from_args
from repro.errors import ParameterError
from repro.units import FF, PS


class TestHandler:
    def test_line_two_pole_defaults(self):
        result = Session().run(WireRequest())
        assert isinstance(result, WireResult)
        assert result.topology == "line"
        assert result.sinks == ("n3",)
        assert len(result.delays) == len(result.sinks)
        assert len(result.slews) == len(result.sinks)
        assert all(d > 0.0 for d in result.delays)
        # Two-pole 50 % crossing sits below the Elmore mean.
        assert result.delays[0] < result.elmore[0]
        assert result.total_capacitance == pytest.approx(1.2e-15)
        assert result.corners == 0
        assert result.corner_delay_min is None
        assert result.max_error is None

    def test_fanout_sinks_are_symmetric(self):
        result = Session().run(
            WireRequest(topology="fanout", branches=3, stages=2))
        assert len(result.sinks) == 3
        assert result.delays[0] == pytest.approx(result.delays[1])
        assert result.delays[0] == pytest.approx(result.delays[2])

    def test_corner_sweep_brackets_nominal(self):
        result = Session().run(WireRequest(corners=32, seed=7))
        assert result.corners == 32
        worst = max(result.delays)
        assert result.corner_delay_min < worst < result.corner_delay_max
        assert f"32 R/C corners" in result.text

    def test_corner_sweep_is_seeded(self):
        one = Session().run(WireRequest(corners=8, seed=1))
        two = Session().run(WireRequest(corners=8, seed=1))
        other = Session().run(WireRequest(corners=8, seed=2))
        assert one.corner_delay_max == two.corner_delay_max
        assert one.corner_delay_max != other.corner_delay_max

    @pytest.mark.parametrize("model,tol", [("elmore", 5e-15),
                                           ("two_pole", 150e-15)])
    def test_validate_cross_checks_against_spice(self, model, tol):
        result = Session().run(
            WireRequest(stages=3, model=model, validate=True))
        assert result.max_error is not None
        assert result.max_error < tol
        assert "cross-validation" in result.text

    def test_unknown_topology_rejected(self):
        with pytest.raises(ParameterError, match="unknown wire"):
            Session().run(WireRequest(topology="mesh"))

    def test_unknown_model_rejected(self):
        with pytest.raises(ParameterError, match="unknown wire model"):
            Session().run(WireRequest(model="pade"))

    def test_result_envelope_round_trips(self):
        result = Session().run(WireRequest(corners=4, validate=True))
        assert from_json(result.to_json()) == result

    def test_wire_is_a_described_workflow(self):
        from repro.api import DescribeRequest
        described = Session().run(DescribeRequest())
        assert "wire" in described.workflows


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["wire"])
        request = request_from_args(args)
        default = WireRequest()
        assert request.topology == default.topology
        assert request.stages == default.stages
        assert request.model == default.model
        assert request.resistance == pytest.approx(default.resistance)
        assert request.capacitance == pytest.approx(
            default.capacitance)
        assert request.corners == 0 and request.validate is False

    def test_unit_conversion(self):
        args = build_parser().parse_args(
            ["wire", "--stages", "4", "--resistance", "1.5",
             "--capacitance", "0.8", "--sink-load", "2.0"])
        request = request_from_args(args)
        assert request.stages == 4
        assert request.resistance == pytest.approx(1.5e3)
        assert request.capacitance == pytest.approx(0.8 * FF)
        assert request.sink_load == pytest.approx(2.0 * FF)

    def test_topology_and_model_choices(self):
        args = build_parser().parse_args(
            ["wire", "--topology", "fanout", "--branches", "3",
             "--model", "elmore", "--corners", "16", "--seed", "9",
             "--validate"])
        request = request_from_args(args)
        assert request.topology == "fanout"
        assert request.branches == 3
        assert request.model == "elmore"
        assert request.corners == 16
        assert request.seed == 9
        assert request.validate is True

    def test_bad_choices_are_cli_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["wire", "--topology", "mesh"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["wire", "--model", "pade"])

    def test_human_output(self, capsys):
        assert main(["wire", "--corners", "4"]) == 0
        out = capsys.readouterr().out
        assert "wire 'line'" in out
        assert "R/C corners" in out

    def test_json_output_decodes(self, capsys):
        assert main(["wire", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "wire_result"
        assert isinstance(from_json(payload), WireResult)

    def test_stats_per_instance_flag(self):
        args = build_parser().parse_args(
            ["stats", "--method", "yield", "--per-instance"])
        request = request_from_args(args)
        assert request.per_instance is True
        default = request_from_args(
            build_parser().parse_args(["stats", "--method", "yield"]))
        assert default.per_instance is False
