"""Wire arcs through the whole timing stack.

``TimingCircuit.add_wire`` must produce instances that (a) lower into
Δ-independent STA arcs, (b) behave as pure-delay identity buffers in
both simulators, and (c) sweep array-natively with exact
vectorized-vs-scalar parity.
"""

import numpy as np
import pytest

from repro.core.parameters import PAPER_TABLE_I
from repro.errors import NetlistError, ParameterError
from repro.sta import (TimingNode, WireArcModel, analyze,
                       build_timing_graph, nor_chain_wire,
                       nor_tree_wire, sta_circuit, sweep_corners,
                       sweep_corners_scalar)
from repro.timing import (DigitalTrace, TimingCircuit, WireInstance,
                          simulate, simulate_events)
from repro.units import PS
from repro.wire import WireTree

#: STA arrivals and simulated transition times must agree to solver
#: tolerance — wires are linear shifts, so no model gap exists.
SIM_TOL = 1e-3 * PS


class TestAddWire:
    def test_single_sink(self):
        circuit = TimingCircuit(["a"])
        instances = circuit.add_wire("w0", "a", WireTree.line(3), "m")
        assert [inst.name for inst in instances] == ["w0"]
        assert instances[0].output == "m"
        assert instances[0].delay > 0.0

    def test_multi_sink_names_and_order(self):
        circuit = TimingCircuit(["a"])
        tree = WireTree.fanout(branches=2)
        instances = circuit.add_wire("w0", "a", tree, ("m1", "m2"))
        assert [inst.name for inst in instances] == ["w0.b1_2",
                                                     "w0.b2_2"]

    def test_mapping_outputs(self):
        circuit = TimingCircuit(["a"])
        tree = WireTree.fanout(branches=2)
        instances = circuit.add_wire(
            "w0", "a", tree, {"b2_2": "m2", "b1_2": "m1"})
        assert [inst.output for inst in instances] == ["m1", "m2"]

    def test_mapping_must_cover_sinks(self):
        circuit = TimingCircuit(["a"])
        tree = WireTree.fanout(branches=2)
        with pytest.raises(NetlistError, match="exactly the"):
            circuit.add_wire("w0", "a", tree, {"b1_2": "m1"})
        with pytest.raises(NetlistError, match="exactly the"):
            circuit.add_wire("w0", "a", tree,
                             {"b1_2": "m1", "b2_2": "m2",
                              "zz": "m3"})

    def test_sequence_length_mismatch(self):
        circuit = TimingCircuit(["a"])
        with pytest.raises(NetlistError, match="output signal"):
            circuit.add_wire("w0", "a", WireTree.line(2),
                             ("m1", "m2"))

    def test_negative_slew_derate_rejected(self):
        circuit = TimingCircuit(["a"])
        with pytest.raises(NetlistError, match="slew_derate"):
            circuit.add_wire("w0", "a", WireTree.line(2), "m",
                             slew_derate=-0.1)

    def test_slew_derate_adds_penalty(self):
        base = TimingCircuit(["a"]).add_wire(
            "w0", "a", WireTree.line(3), "m")[0]
        derated = TimingCircuit(["a"]).add_wire(
            "w0", "a", WireTree.line(3), "m", slew_derate=0.5)[0]
        assert derated.delay == pytest.approx(
            base.delay + 0.5 * base.slew)

    def test_wire_is_identity_function(self):
        instance = TimingCircuit(["a"]).add_wire(
            "w0", "a", WireTree.line(2), "m")[0]
        assert isinstance(instance, WireInstance)
        assert instance.function(0) == 0
        assert instance.function(1) == 1


class TestWireArcModel:
    def test_delay_is_delta_independent(self):
        model = WireArcModel(4.8 * PS, slew=9.0 * PS, sink="n3")
        deltas = np.array([-10.0, 0.0, 25.0]) * PS
        for direction in ("falling", "rising"):
            out = model.delays(direction, deltas)
            assert np.all(out == 4.8 * PS)

    def test_delays_n_shape(self):
        model = WireArcModel(1.0 * PS)
        out = model.delays_n("falling", np.zeros((5, 2)))
        assert out.shape == (5,)

    def test_not_retargetable(self):
        assert WireArcModel(1.0 * PS).retargetable is False

    def test_rejects_bad_values(self):
        with pytest.raises(ParameterError):
            WireArcModel(-1.0 * PS)
        with pytest.raises(ParameterError):
            WireArcModel(float("nan"))
        with pytest.raises(ParameterError):
            WireArcModel(1.0 * PS, slew=-1.0)
        with pytest.raises(ParameterError):
            WireArcModel(1.0 * PS).delays("sideways", [0.0])

    def test_from_instance(self):
        instance = TimingCircuit(["a"]).add_wire(
            "w0", "a", WireTree.line(2), "m")[0]
        model = WireArcModel.from_instance(instance)
        assert model.delay == instance.delay
        assert model.sink == instance.sink


class TestGraphLowering:
    def test_wire_arcs_are_positive_unate(self):
        graph = build_timing_graph(sta_circuit("chain_wire"))
        wire_arcs = [arc for arc in graph.arcs
                     if isinstance(arc.model, WireArcModel)]
        assert len(wire_arcs) == 2  # rise + fall of the one wire
        for arc in wire_arcs:
            assert arc.source.transition == arc.target.transition

    def test_path_report_shows_wire(self):
        graph = build_timing_graph(sta_circuit("chain_wire"))
        result = analyze(graph)
        from repro.sta import render_report
        assert "[wire]" in render_report(result)


class TestSimulationAgreement:
    @pytest.mark.parametrize("name", ["chain_wire", "tree_wire"])
    def test_sta_matches_both_simulators(self, name):
        circuit = sta_circuit(name)
        t0 = 100.0 * PS
        traces = {signal: DigitalTrace(0, [(t0, 1)])
                  for signal in circuit.inputs}
        arrivals = {signal: (t0, t0) for signal in circuit.inputs}
        graph = build_timing_graph(circuit)
        result = analyze(graph, arrivals=arrivals)
        traced = simulate(circuit, traces)
        evented = simulate_events(circuit, traces, 2e-9)
        endpoints = [s for s in ("y", "y1", "y2")
                     if s in circuit.signals]
        for signal in endpoints:
            for sim in (traced, evented):
                trace = sim[signal]
                assert trace.transitions, signal
                t_sim, value = trace.transitions[0]
                transition = "rise" if value == 1 else "fall"
                arrival = result.arrivals[TimingNode(signal,
                                                     transition)]
                assert abs(arrival - t_sim) < SIM_TOL


class TestWireSweeps:
    @pytest.mark.parametrize("name", ["chain_wire", "tree_wire"])
    def test_vectorized_scalar_parity(self, name):
        graph = build_timing_graph(sta_circuit(name))
        slow = PAPER_TABLE_I.replace(r3=PAPER_TABLE_I.r3 * 1.2,
                                     r4=PAPER_TABLE_I.r4 * 1.2)
        params = [PAPER_TABLE_I, slow, PAPER_TABLE_I, slow]
        arrivals = {graph.inputs[0]: np.arange(4.0) * 5.0 * PS}
        fast = sweep_corners(graph, params=params, arrivals=arrivals)
        slow_ref = sweep_corners_scalar(graph, params=params,
                                        arrivals=arrivals)
        for node, values in fast.arrivals.items():
            assert np.array_equal(values, slow_ref.arrivals[node])

    def test_per_instance_parity_and_effect(self):
        graph = build_timing_graph(sta_circuit("chain_wire"))
        slow = PAPER_TABLE_I.replace(
            r1=PAPER_TABLE_I.r1 * 1.4, r2=PAPER_TABLE_I.r2 * 1.4,
            r3=PAPER_TABLE_I.r3 * 1.4, r4=PAPER_TABLE_I.r4 * 1.4)
        params = {"g0": [PAPER_TABLE_I, slow], "g1": slow}
        fast = sweep_corners(graph, params=params)
        ref = sweep_corners_scalar(graph, params=params)
        for node, values in fast.arrivals.items():
            assert np.array_equal(values, ref.arrivals[node])
        # Varying g0 alone must move the endpoint across corners.
        worst = fast.worst_arrival()
        assert worst[0] != worst[1]

    def test_per_instance_unknown_instance_rejected(self):
        graph = build_timing_graph(sta_circuit("chain_wire"))
        with pytest.raises(ParameterError, match="unknown instance"):
            sweep_corners(graph, params={"zz": PAPER_TABLE_I})

    def test_wire_arcs_ignore_corner_params(self):
        # Wire delays are parameter-independent: sweeping gate
        # corners must leave the wire arc contribution unchanged.
        graph = build_timing_graph(sta_circuit("chain_wire"))
        base = sweep_corners(graph)
        swept = sweep_corners(graph, params=[PAPER_TABLE_I])
        o1_rise = TimingNode("o1", "rise")
        m1_rise = TimingNode("m1", "rise")
        wire_delay_base = (base.arrivals[m1_rise]
                           - base.arrivals[o1_rise])
        wire_delay_swept = (swept.arrivals[m1_rise]
                            - swept.arrivals[o1_rise])
        assert np.allclose(wire_delay_base, wire_delay_swept)
