"""SPICE cross-validation — the wire subsystem's acceptance gate.

A :class:`WireTree` lowers exactly into ``Resistor``/``Capacitor``
devices, so the MNA transient solver is ground truth at three levels:

* **pure tree, ideal source** — the reduced-order models in their
  exact regimes: Elmore vs a settled slow ramp (tolerance
  ``TREE_ELMORE_TOL`` = 5 fs; measured 0.01 fs), two-pole vs a
  near-step edge (``TREE_TWO_POLE_TOL`` = 150 fs on a ~3.6 ps wire;
  measured 42 fs — dominated by the finite edge, not the model);
* **gate-driven wire shift** — inside ``wired_nor_chain`` /
  ``wired_nor_tree`` the sink-vs-driving-node crossing shift must
  match the Elmore arc delay within ``WIRE_SHIFT_TOL`` = 1.5 ps
  (measured 0.53/0.75 ps; the residual is the driver's nonlinear
  output impedance interacting with the wire, which the
  driving-point model ignores by construction);
* **end to end** — STA arrivals through gates *and* wires vs the
  transistor-level transient: ``CHAIN_E2E_TOL`` = 0.5 ps on the
  ~210 ps wired chain (measured 0.21 ps) and ``TREE_E2E_TOL`` =
  2.5 ps on the ~230 ps wired fanout (measured 1.25 ps) — within
  the hybrid model's own gate-level accuracy envelope.
"""

import pytest

from repro.core.parameters import PAPER_TABLE_I
from repro.spice.measure import crossing_after
from repro.spice.netlist import Circuit
from repro.spice.technology import FINFET15
from repro.spice.transient import transient_analysis
from repro.spice.waveforms import EdgeTrain
from repro.sta import (TimingNode, analyze, build_timing_graph,
                       nor_chain_wire, nor_tree_wire)
from repro.units import PS
from repro.wire import (WireTree, lower_wire, nor2_input_capacitance,
                        reduce_tree, wired_nor_chain, wired_nor_tree)

TREE_ELMORE_TOL = 5e-15
TREE_TWO_POLE_TOL = 150e-15
WIRE_SHIFT_TOL = 1.5 * PS
CHAIN_E2E_TOL = 0.5 * PS
TREE_E2E_TOL = 2.5 * PS

TECH = FINFET15
HALF = TECH.vdd / 2.0
T_EDGE = 100.0 * PS


def ideal_source_crossings(tree, edge_time, shape):
    """Sink Vdd/2-crossing shifts of the lowered tree driven by an
    ideal voltage source, seconds."""
    t0 = 0.75 * edge_time
    circuit = Circuit("wire_tree")
    circuit.voltage_source(
        "Vin", "in", "0",
        EdgeTrain([(t0, 1)], vdd=1.0, edge_time=edge_time,
                  shape=shape))
    nodes = lower_wire(circuit, tree, "in")
    circuit.validate()
    result = transient_analysis(
        circuit, t0 + edge_time + 20.0 * max(
            tree.elmore_delays().values()))
    return {sink: crossing_after(result, nodes[sink], 0.5, 0.0, 1)
            - t0
            for sink in tree.sinks}


class TestPureTreeModels:
    def test_elmore_exact_for_settled_ramps(self):
        tree = WireTree.line(segments=3, resistance=2e3,
                             capacitance=0.4e-15)
        timing = reduce_tree(tree, model="elmore")
        worst = float(timing.delays().max())
        shifts = ideal_source_crossings(tree, 50.0 * worst, "linear")
        for index, sink in enumerate(tree.sinks):
            error = abs(shifts[sink] - timing.delays()[index])
            assert error < TREE_ELMORE_TOL

    def test_two_pole_matches_near_step(self):
        tree = WireTree.fanout(branches=2, stem=1, segments=2,
                               resistance=2e3, capacitance=0.4e-15,
                               load=0.2e-15)
        timing = reduce_tree(tree, model="two_pole")
        worst = float(timing.delays().max())
        shifts = ideal_source_crossings(tree, worst / 20.0,
                                        "raised-cosine")
        for index, sink in enumerate(tree.sinks):
            error = abs(shifts[sink] - timing.delays()[index])
            assert error < TREE_TWO_POLE_TOL


@pytest.fixture(scope="module")
def chain_setup():
    load = nor2_input_capacitance(TECH, tied=True)
    tree = WireTree.line(segments=3, resistance=2e3,
                         capacitance=0.4e-15, load=load)
    wave = EdgeTrain([(T_EDGE, 1)], vdd=TECH.vdd,
                     edge_time=TECH.input_edge_time)
    wired = wired_nor_chain(TECH, wave, tree, stages=2)
    result = transient_analysis(wired.circuit, 600.0 * PS)
    return tree, wired, result


@pytest.fixture(scope="module")
def tree_setup():
    load = nor2_input_capacitance(TECH, tied=True)
    tree = WireTree.fanout(branches=2, stem=1, segments=2,
                           resistance=2e3, capacitance=0.4e-15,
                           load=load)
    wave_a = EdgeTrain([(T_EDGE, 1)], vdd=TECH.vdd,
                       edge_time=TECH.input_edge_time)
    wave_b = EdgeTrain([(T_EDGE + 10.0 * PS, 1)], vdd=TECH.vdd,
                       edge_time=TECH.input_edge_time)
    wired = wired_nor_tree(TECH, wave_a, wave_b, tree)
    result = transient_analysis(wired.circuit, 600.0 * PS)
    return tree, wired, result


class TestWiredChain:
    def test_gate_driven_wire_shift(self, chain_setup):
        tree, wired, result = chain_setup
        t_drive = crossing_after(result, "o1", HALF, 0.0, -1)
        t_sink = crossing_after(result,
                                wired.sink_nodes["w1.n3"], HALF,
                                0.0, -1)
        timing = reduce_tree(tree, model="elmore")
        error = abs((t_sink - t_drive) - timing.delays()[0])
        assert error < WIRE_SHIFT_TOL

    def test_sta_end_to_end(self, chain_setup):
        tree, wired, result = chain_setup
        t_y = crossing_after(result, wired.outputs[0], HALF, 0.0, 1)
        circuit = nor_chain_wire(PAPER_TABLE_I, stages=2, tree=tree)
        graph = build_timing_graph(circuit)
        sta = analyze(graph, arrivals={"a": (T_EDGE, T_EDGE)})
        arrival = sta.arrivals[TimingNode("y", "rise")]
        assert abs(arrival - t_y) < CHAIN_E2E_TOL


class TestWiredFanout:
    def test_gate_driven_wire_shift(self, tree_setup):
        tree, wired, result = tree_setup
        t_drive = crossing_after(result, "o", HALF, 0.0, -1)
        timing = reduce_tree(tree, model="elmore")
        for index, sink in enumerate(tree.sinks):
            t_sink = crossing_after(result, wired.sink_nodes[sink],
                                    HALF, 0.0, -1)
            error = abs((t_sink - t_drive)
                        - timing.delays()[index])
            assert error < WIRE_SHIFT_TOL

    def test_sta_end_to_end(self, tree_setup):
        tree, wired, result = tree_setup
        circuit = nor_tree_wire(PAPER_TABLE_I, tree=tree)
        graph = build_timing_graph(circuit)
        sta = analyze(graph, arrivals={
            "a": (T_EDGE, T_EDGE),
            "b": (T_EDGE + 10.0 * PS, T_EDGE + 10.0 * PS)})
        for endpoint in wired.outputs:
            t_spice = crossing_after(result, endpoint, HALF, 0.0, 1)
            arrival = sta.arrivals[TimingNode(
                f"y{endpoint[-1]}", "rise")]
            assert abs(arrival - t_spice) < TREE_E2E_TOL

    def test_symmetric_sinks_symmetric_endpoints(self, tree_setup):
        _tree, wired, result = tree_setup
        t_y1 = crossing_after(result, "y1", HALF, 0.0, 1)
        t_y2 = crossing_after(result, "y2", HALF, 0.0, 1)
        assert t_y1 == pytest.approx(t_y2, abs=1e-15)
