"""Tests for repro.wire.tree: topology validation and exact moments."""

import math

import pytest

from repro.errors import NetlistError, ParameterError
from repro.wire import WireSegment, WireTree


class TestWireSegment:
    def test_valid(self):
        segment = WireSegment("n1", "root", 1e3, 1e-15, load=2e-15)
        assert segment.load == 2e-15

    @pytest.mark.parametrize("name", ["", "root"])
    def test_bad_name_rejected(self, name):
        with pytest.raises(ParameterError):
            WireSegment(name, "root", 1e3, 1e-15)

    @pytest.mark.parametrize("resistance",
                             [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_resistance_rejected(self, resistance):
        with pytest.raises(ParameterError):
            WireSegment("n1", "root", resistance, 1e-15)

    @pytest.mark.parametrize("capacitance", [-1e-18, float("nan")])
    def test_bad_capacitance_rejected(self, capacitance):
        with pytest.raises(ParameterError):
            WireSegment("n1", "root", 1e3, capacitance)

    def test_bad_load_rejected(self):
        with pytest.raises(ParameterError):
            WireSegment("n1", "root", 1e3, 1e-15, load=-1e-18)


class TestWireTreeValidation:
    def test_empty_rejected(self):
        with pytest.raises(NetlistError):
            WireTree(segments=())

    def test_duplicate_name_rejected(self):
        with pytest.raises(NetlistError, match="duplicate"):
            WireTree(segments=(
                WireSegment("n1", "root", 1e3, 1e-15),
                WireSegment("n1", "root", 1e3, 1e-15)))

    def test_forward_parent_rejected(self):
        with pytest.raises(NetlistError, match="not declared"):
            WireTree(segments=(
                WireSegment("n2", "n1", 1e3, 1e-15),
                WireSegment("n1", "root", 1e3, 1e-15)))

    def test_unknown_sink_rejected(self):
        with pytest.raises(NetlistError, match="no wire segment"):
            WireTree(segments=(
                WireSegment("n1", "root", 1e3, 1e-15),),
                sinks=("zz",))

    def test_duplicate_sink_rejected(self):
        with pytest.raises(NetlistError, match="duplicate sink"):
            WireTree(segments=(
                WireSegment("n1", "root", 1e3, 1e-15),),
                sinks=("n1", "n1"))

    def test_default_sinks_are_leaves(self):
        tree = WireTree.fanout(branches=2, stem=1, segments=2)
        assert tree.sinks == ("b1_2", "b2_2")

    def test_nodes_root_first(self):
        tree = WireTree.line(segments=2)
        assert tree.nodes == ("root", "n1", "n2")


class TestBuilders:
    def test_line_shape(self):
        tree = WireTree.line(segments=3, resistance=2e3,
                             capacitance=0.4e-15, load=1e-15)
        assert len(tree.segments) == 3
        assert tree.sinks == ("n3",)
        # Load lands on the last segment only.
        assert tree.segments[-1].load == 1e-15
        assert tree.segments[0].load == 0.0

    def test_line_rejects_zero_segments(self):
        with pytest.raises(ParameterError):
            WireTree.line(segments=0)

    def test_fanout_rejects_bad_shape(self):
        with pytest.raises(ParameterError):
            WireTree.fanout(branches=0)
        with pytest.raises(ParameterError):
            WireTree.fanout(stem=-1)
        with pytest.raises(ParameterError):
            WireTree.fanout(segments=0)

    def test_total_capacitance(self):
        tree = WireTree.line(segments=4, capacitance=0.5e-15,
                             load=1e-15)
        assert tree.total_capacitance() == pytest.approx(3e-15)

    def test_describe(self):
        text = WireTree.line(segments=2).describe()
        assert "2 segments" in text and "n2" in text


class TestMoments:
    def test_single_rc(self):
        tree = WireTree(segments=(
            WireSegment("n1", "root", 1e3, 1e-15),))
        assert tree.elmore_delays()["n1"] == pytest.approx(1e-12)
        elmore, m2 = tree.moments()
        assert m2["n1"] == pytest.approx(1e-24)

    def test_uniform_ladder_closed_form(self):
        # T_D(last of N) = R*C * sum_{k=1..N} k  for per-segment R, C.
        n, r, c = 5, 2e3, 0.4e-15
        tree = WireTree.line(segments=n, resistance=r, capacitance=c)
        expected = r * c * sum(range(1, n + 1))
        assert tree.elmore_delays()[f"n{n}"] == pytest.approx(expected)

    def test_two_stage_by_hand(self):
        # R1(C1+C2) + R2*C2 with R=1k, C=1f per stage: 3e-12.
        tree = WireTree.line(segments=2, resistance=1e3,
                             capacitance=1e-15)
        assert tree.elmore_delays()["n2"] == pytest.approx(3e-12)
        # m2(n2) = R1*(C1*T1 + C2*T2) + R2*C2*T2 with T1=2ps, T2=3ps.
        _, m2 = tree.moments()
        t1, t2 = 2e-12, 3e-12
        expected = (1e3 * (1e-15 * t1 + 1e-15 * t2)
                    + 1e3 * 1e-15 * t2)
        assert m2["n2"] == pytest.approx(expected)

    def test_symmetric_fanout_sinks_match(self):
        tree = WireTree.fanout(branches=3, stem=2, segments=2,
                               load=1e-15)
        delays = tree.elmore_delays()
        values = [delays[sink] for sink in tree.sinks]
        assert all(math.isclose(v, values[0]) for v in values)

    def test_downstream_capacitance_root_children(self):
        tree = WireTree.fanout(branches=2, stem=1, segments=1,
                               capacitance=1e-15, load=0.5e-15)
        down = tree.downstream_capacitance()
        assert down["s1"] == pytest.approx(4e-15)
        assert down["b1_1"] == pytest.approx(1.5e-15)
