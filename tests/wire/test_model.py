"""Tests for repro.wire.model: reduced-order delays, exactness, scaling."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.obs.metrics import registry
from repro.wire import (WireSegment, WireTree, reduce_tree,
                        scaled_delays, two_pole_step_crossings)
from repro.wire.coupling import (degraded_slew, effective_load,
                                 loaded_params)

LN2 = math.log(2.0)
LN9 = math.log(9.0)


def single_rc(r=1e3, c=1e-12) -> WireTree:
    return WireTree(segments=(WireSegment("n1", "root", r, c),))


class TestTwoPoleCrossings:
    def test_single_pole_closed_form(self):
        # b2 = 0 collapses to t = -b1 ln(1 - theta).
        tau = 1e-12
        t10, t50, t90 = two_pole_step_crossings(
            np.array([tau]), np.array([0.0]))
        assert t50[0] == pytest.approx(tau * LN2, rel=1e-12)
        assert (t90[0] - t10[0]) == pytest.approx(tau * LN9,
                                                  rel=1e-12)

    def test_two_stage_ladder_is_exact(self):
        # A 2-stage ladder is exactly second order: the crossing of
        # the bisection must match a brute-force pole solve.
        r, c = 1e3, 1e-15
        tree = WireTree.line(segments=2, resistance=r, capacitance=c)
        timing = reduce_tree(tree, model="two_pole")
        # Poles of the ladder: tau^2 - 3RC tau + (RC)^2 = 0.
        rc = r * c
        tau1 = 0.5 * (3.0 * rc + math.sqrt(5.0) * rc)
        tau2 = 0.5 * (3.0 * rc - math.sqrt(5.0) * rc)

        def response(t):
            return 1.0 - (tau1 * math.exp(-t / tau1)
                          - tau2 * math.exp(-t / tau2)) / (tau1 - tau2)

        lo, hi = 0.0, 50.0 * rc
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if response(mid) < 0.5:
                lo = mid
            else:
                hi = mid
        assert timing.delays()[0] == pytest.approx(0.5 * (lo + hi),
                                                   rel=1e-9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            two_pole_step_crossings(np.array([0.0]), np.array([0.0]))
        with pytest.raises(ParameterError):
            two_pole_step_crossings(np.array([1e-12]),
                                    np.array([0.0]),
                                    thresholds=(0.0,))

    def test_monotone_in_threshold(self):
        tree = WireTree.line(segments=4)
        elmore, m2 = tree.moments()
        b1 = np.array([elmore[s] for s in tree.sinks])
        b2 = b1 * b1 - np.array([m2[s] for s in tree.sinks])
        levels = (0.1, 0.3, 0.5, 0.7, 0.9)
        out = two_pole_step_crossings(b1, b2, thresholds=levels)
        assert np.all(np.diff(out[:, 0]) > 0.0)


class TestReduceTree:
    def test_single_rc_both_models(self):
        tree = single_rc(1e3, 1e-12)
        tau = 1e-9
        elmore = reduce_tree(tree, model="elmore")
        assert elmore.delays()[0] == pytest.approx(tau)
        assert elmore.slews()[0] == pytest.approx(tau * LN9)
        two = reduce_tree(tree, model="two_pole")
        assert two.delays()[0] == pytest.approx(tau * LN2, rel=1e-9)

    def test_elmore_below_step_crossing_for_deep_lines(self):
        # The 50 % step crossing of an RC line sits below T_D (the
        # impulse-response mean), and both are positive.
        tree = WireTree.line(segments=6)
        two = reduce_tree(tree, model="two_pole")
        elmore = reduce_tree(tree, model="elmore")
        assert 0.0 < two.delays()[0] < elmore.delays()[0]

    def test_unknown_model_rejected(self):
        with pytest.raises(ParameterError, match="unknown wire model"):
            reduce_tree(single_rc(), model="pade")

    def test_timing_lookup(self):
        timing = reduce_tree(WireTree.fanout(branches=2))
        assert timing.timing("b1_2").sink == "b1_2"
        with pytest.raises(ParameterError, match="unknown sink"):
            timing.timing("zz")

    def test_reduction_counter_increments(self):
        from repro.wire.model import _reduction_counter

        before = _reduction_counter("elmore").value
        reduce_tree(single_rc(), model="elmore")
        assert _reduction_counter("elmore").value == before + 1
        assert ("repro_wire_reductions_total"
                in registry().render())


class TestScaledDelays:
    def test_scaling_law_is_exact(self):
        # Uniform R/C scaling multiplies every crossing by rs*cs:
        # compare against a full re-reduction of the scaled tree.
        tree = WireTree.fanout(branches=2, stem=1, segments=2,
                               load=0.3e-15)
        timing = reduce_tree(tree, model="two_pole")
        rs, cs = 1.3, 0.7
        scaled_tree = WireTree(
            segments=tuple(
                WireSegment(s.name, s.parent, s.resistance * rs,
                            s.capacitance * cs, s.load * cs)
                for s in tree.segments),
            sinks=tree.sinks)
        direct = reduce_tree(scaled_tree, model="two_pole").delays()
        fast = scaled_delays(timing, r_scale=rs, c_scale=cs)
        assert np.allclose(fast, direct, rtol=1e-9)

    def test_corner_axis_shape(self):
        timing = reduce_tree(WireTree.fanout(branches=2))
        out = scaled_delays(timing, r_scale=np.ones(5),
                            c_scale=np.linspace(0.8, 1.2, 5))
        assert out.shape == (5, 2)

    def test_rejects_non_positive_scales(self):
        timing = reduce_tree(single_rc())
        with pytest.raises(ParameterError):
            scaled_delays(timing, r_scale=0.0)


class TestCoupling:
    def test_effective_load_adds_total_capacitance(self):
        from repro.core.parameters import PAPER_TABLE_I
        tree = WireTree.line(segments=3, capacitance=0.4e-15)
        assert effective_load(PAPER_TABLE_I, tree) == pytest.approx(
            PAPER_TABLE_I.co + 1.2e-15)

    def test_loaded_params_only_touches_co(self):
        from repro.core.parameters import PAPER_TABLE_I
        tree = WireTree.line(segments=2)
        loaded = loaded_params(PAPER_TABLE_I, tree)
        assert loaded.co > PAPER_TABLE_I.co
        assert loaded.r1 == PAPER_TABLE_I.r1
        assert loaded.cn == PAPER_TABLE_I.cn

    def test_wire_load_slows_the_gate(self):
        from repro.core.parameters import PAPER_TABLE_I
        from repro.engine import get_engine
        tree = WireTree.line(segments=3)
        engine = get_engine("reference")
        bare = engine.delays_falling(PAPER_TABLE_I,
                                     np.array([0.0]))[0]
        loaded = engine.delays_falling(
            loaded_params(PAPER_TABLE_I, tree), np.array([0.0]))[0]
        assert loaded > bare

    def test_degraded_slew_is_rss(self):
        assert degraded_slew(3e-12, 4e-12) == pytest.approx(5e-12)
        assert degraded_slew(3e-12, 0.0) == pytest.approx(3e-12)
