"""The legacy entry points warn and name their replacement."""

import pytest


class TestExperimentsRegistry:
    def test_module_attribute_warns(self):
        from repro.analysis import experiments
        with pytest.warns(DeprecationWarning) as captured:
            registry = experiments.EXPERIMENTS
        assert "repro.api" in str(captured[0].message)
        assert "ExperimentRequest" in str(captured[0].message)
        assert "fig4" in registry

    def test_package_reexport_still_works_and_warns(self):
        import repro.analysis
        with pytest.warns(DeprecationWarning, match="repro.api"):
            registry = repro.analysis.EXPERIMENTS
        assert "table1" in registry

    def test_other_attributes_raise_attribute_error(self):
        from repro.analysis import experiments
        with pytest.raises(AttributeError):
            experiments.EXPERIMENT  # typo stays an error
        import repro.analysis
        with pytest.raises(AttributeError):
            repro.analysis.EXPERIMENT


class TestResultToJson:
    def test_warns_and_matches_sta_payload(self):
        from repro.sta import (analyze, build_timing_graph,
                               result_to_json, sta_circuit,
                               sta_payload)
        graph = build_timing_graph(sta_circuit("nor2"))
        result = analyze(graph, top_paths=1)
        with pytest.warns(DeprecationWarning) as captured:
            legacy = result_to_json(result)
        assert "sta_payload" in str(captured[0].message)
        assert legacy == sta_payload(result)
