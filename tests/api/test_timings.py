"""Per-request ``timings`` breakdowns on session results.

While tracing is enabled, :meth:`repro.api.Session.run` attaches a
span-name -> seconds breakdown to freshly computed results; with
tracing off (the default) the field is ``None`` and the envelope is
byte-identical to the pre-observability schema.
"""

import dataclasses
import json

import pytest

from repro.api import DelayRequest, Session, StaRequest, from_json
from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_activation(monkeypatch):
    monkeypatch.delenv(trace.ENV_VAR, raising=False)
    trace.unconfigure()
    yield
    trace.unconfigure()


REQUEST = DelayRequest(deltas=((0.0,), (5e-12,)))


class TestDisabled:
    def test_timings_absent_by_default(self):
        result = Session().run(REQUEST)
        assert result.timings is None

    def test_envelope_omits_null_timings(self):
        """Schema compatibility: no ``"timings"`` key at all."""
        envelope = json.loads(Session().run(REQUEST).to_json())
        assert "timings" not in envelope

    def test_pre_observability_envelope_still_decodes(self):
        envelope = json.loads(Session().run(REQUEST).to_json())
        envelope.pop("timings", None)
        record = from_json(json.dumps(envelope))
        assert record.timings is None


class TestEnabled:
    def test_traced_run_attaches_breakdown(self):
        session = Session(trace=trace.Tracer())
        result = session.run(REQUEST)
        assert result.timings is not None
        assert result.timings["session.run"] > 0.0
        assert any(name.startswith("engine.")
                   for name in result.timings)
        # Child spans are covered by the dispatch total.
        assert sum(v for k, v in result.timings.items()
                   if k != "session.run") \
            <= result.timings["session.run"] * 1.001

    def test_timings_round_trip_through_the_envelope(self):
        session = Session(trace=trace.Tracer())
        result = session.run(StaRequest(circuit="nor2", top=1))
        decoded = from_json(result.to_json())
        assert decoded.timings == pytest.approx(result.timings)

    def test_memo_hit_does_not_replay_first_timings(self):
        """A cache hit did no work; it must not claim the first
        computation's breakdown."""
        session = Session(trace=trace.Tracer())
        first = session.run(REQUEST)
        second = session.run(REQUEST)
        assert first.timings
        assert second.timings is None
        assert dataclasses.replace(first, timings=None) == second

    def test_equality_ignores_presence_via_replace_only(self):
        """Timings are data: two results differing only in timings
        compare unequal (replace() strips them when needed)."""
        session = Session(trace=trace.Tracer())
        traced = session.run(REQUEST)
        trace.configure(None)  # Session(trace=...) is process-wide
        untraced = Session().run(REQUEST)
        assert traced != untraced
        assert dataclasses.replace(traced, timings=None) == untraced
