"""Property tests: every request/result round-trips through JSON.

The contract of :mod:`repro.api.serialization`:
``from_json(to_json(x)) == x`` for every registered record type, for
arbitrary field values (non-finite floats included — strict JSON has
no literal for them, so they travel as spelled strings).
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (API_SCHEMA, API_SCHEMA_VERSION, ApiRecord,
                       CharacterizeRequest, CharacterizeResult,
                       DelayRequest, DelayResult, DescribeRequest,
                       DescribeResult, ErrorResult,
                       ExperimentRequest,
                       ExperimentResult, LibraryInspectResult,
                       LibraryRequest, MultiInputRequest,
                       MultiInputResult, StaRequest, StaRunResult,
                       StatsRequest, StatsResult, SweepRequest,
                       SweepResult, VersionRequest,
                       VersionResult, WireRequest, WireResult,
                       from_json, known_kinds)
from repro.errors import ParameterError

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
maybe_inf = st.floats(allow_nan=False, allow_infinity=True, width=64)
names = st.text(max_size=24)
counts = st.integers(min_value=0, max_value=10**6)
seeds = st.integers(min_value=-2**31, max_value=2**31)

#: Δ-vectors: tuples of tuples of (possibly infinite) floats.
delta_vectors = st.lists(
    st.lists(maybe_inf, min_size=1, max_size=3).map(tuple),
    min_size=1, max_size=4).map(tuple)

#: JSON-shaped data for ``Any``-typed payload fields.  Finite floats
#: only: inside an untyped payload there is no annotation to restore
#: an ``inf`` spelling from.
_json_scalar = (st.none() | st.booleans()
                | st.integers(-10**9, 10**9) | finite | names)
json_payload = st.dictionaries(
    names,
    st.recursive(_json_scalar,
                 lambda inner: (st.lists(inner, max_size=3)
                                | st.dictionaries(names, inner,
                                                  max_size=3)),
                 max_leaves=6),
    max_size=4)

str_dicts = st.dictionaries(names, names, max_size=4)
float_dicts = st.dictionaries(names, maybe_inf, max_size=4)
name_tuples = st.lists(names, max_size=4).map(tuple)
float_tuples = st.lists(maybe_inf, max_size=5).map(tuple)
gates = st.sampled_from(["nor2", "nor3", "nor4"])

STRATEGIES = {
    DescribeRequest: st.builds(DescribeRequest),
    VersionRequest: st.builds(VersionRequest),
    DelayRequest: st.builds(
        DelayRequest,
        direction=st.sampled_from(["falling", "rising"]),
        deltas=delta_vectors, gate=gates, vn_init=finite),
    SweepRequest: st.builds(SweepRequest, points=counts,
                            repeats=counts),
    MultiInputRequest: st.builds(MultiInputRequest, gate=gates,
                                 points=counts),
    CharacterizeRequest: st.builds(
        CharacterizeRequest, gate=gates, fit=st.booleans(),
        core_points=st.none() | counts,
        state_points=st.none() | counts, library_name=names),
    LibraryRequest: st.builds(LibraryRequest, path=names,
                              cell=st.none() | names,
                              verify=st.booleans()),
    StaRequest: st.builds(
        StaRequest, circuit=names,
        library_path=st.none() | names, cell=st.none() | names,
        required=st.none() | maybe_inf, top=counts,
        corners=st.none() | counts, seed=seeds,
        validate=st.booleans()),
    ExperimentRequest: st.builds(
        ExperimentRequest, name=names, with_analog=st.booleans(),
        transitions=st.none() | counts,
        repetitions=st.none() | counts, seed=seeds),
    DescribeResult: st.builds(
        DescribeResult, version=names, engines=name_tuples,
        experiments=str_dicts, workflows=str_dicts, text=names),
    ErrorResult: st.builds(
        ErrorResult, error=names, exception=names,
        request_kind=st.none() | names,
        status=st.integers(min_value=0, max_value=599), text=names),
    VersionResult: st.builds(VersionResult, version=names,
                             text=names),
    DelayResult: st.builds(
        DelayResult, gate=gates,
        direction=st.sampled_from(["falling", "rising"]),
        engine=names, deltas=delta_vectors, delays=float_tuples,
        text=names),
    SweepResult: st.builds(
        SweepResult, points=counts, seconds=float_dicts,
        points_per_second=float_dicts, speedup=maybe_inf,
        max_abs_difference=maybe_inf, text=names),
    MultiInputResult: st.builds(
        MultiInputResult, gate=gates, reduction_error=maybe_inf,
        batch_error=maybe_inf, speedup=maybe_inf, text=names),
    CharacterizeResult: st.builds(
        CharacterizeResult, cells=name_tuples,
        worst_error=maybe_inf, engine=names, library=json_payload,
        text=names),
    LibraryInspectResult: st.builds(
        LibraryInspectResult, name=names, cells=name_tuples,
        text=names),
    StaRunResult: st.builds(
        StaRunResult, circuit=st.none() | names, engine=names,
        analysis=st.none() | json_payload,
        max_error=st.none() | maybe_inf, text=names),
    ExperimentResult: st.builds(ExperimentResult, name=names,
                                text=names),
    StatsRequest: st.builds(
        StatsRequest,
        method=st.sampled_from(["mc", "surrogate", "yield"]),
        gate=gates,
        direction=st.sampled_from(["falling", "rising"]),
        deltas=float_tuples, samples=counts, seed=seeds,
        sigma=st.lists(st.tuples(names, maybe_inf),
                       max_size=4).map(tuple),
        distribution=st.sampled_from(["lognormal", "normal"]),
        correlation=finite, vn_init=finite,
        percentiles=float_tuples, bins=counts,
        degree=st.integers(min_value=1, max_value=5),
        circuit=names, required=st.none() | maybe_inf,
        arrival_sigma=finite, per_instance=st.booleans()),
    StatsResult: st.builds(
        StatsResult,
        method=st.sampled_from(["mc", "surrogate", "yield"]),
        gate=gates,
        direction=st.sampled_from(["falling", "rising"]),
        circuit=st.none() | names, samples=counts,
        deltas=float_tuples, mean=float_tuples, std=float_tuples,
        minimum=float_tuples, maximum=float_tuples,
        percentile_levels=float_tuples,
        percentile_values=st.lists(float_tuples,
                                   max_size=3).map(tuple),
        histogram_edges=st.none() | st.lists(
            float_tuples, max_size=3).map(tuple),
        histogram_counts=st.none() | st.lists(
            float_tuples, max_size=3).map(tuple),
        yield_fraction=st.none() | finite,
        required=st.none() | maybe_inf, text=names),
    WireRequest: st.builds(
        WireRequest,
        topology=st.sampled_from(["line", "fanout"]),
        stages=counts, branches=counts,
        resistance=finite, capacitance=finite, sink_load=finite,
        model=st.sampled_from(["elmore", "two_pole"]),
        corners=counts, seed=seeds, validate=st.booleans()),
    WireResult: st.builds(
        WireResult,
        topology=names, model=names, sinks=name_tuples,
        elmore=float_tuples, delays=float_tuples,
        slews=float_tuples, total_capacitance=maybe_inf,
        corners=counts,
        corner_delay_min=st.none() | maybe_inf,
        corner_delay_max=st.none() | maybe_inf,
        max_error=st.none() | maybe_inf, text=names),
}

ALL_TYPES = sorted(STRATEGIES, key=lambda cls: cls.__name__)


@pytest.mark.parametrize(
    "cls", ALL_TYPES, ids=[cls.__name__ for cls in ALL_TYPES])
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_roundtrip_identity(cls, data):
    """``from_json(to_json(x)) == x`` — typed and generic decode."""
    record = data.draw(STRATEGIES[cls])
    text = record.to_json()
    json.loads(text)  # strict JSON (no NaN/Infinity literals)
    assert cls.from_json(text) == record
    assert from_json(text) == record
    assert from_json(record.to_dict()) == record


def test_every_kind_is_registered():
    kinds = known_kinds()
    assert len(kinds) == len(ALL_TYPES)
    assert {cls.kind for cls in ALL_TYPES} == set(kinds)


def test_error_result_wraps_exceptions():
    error = ErrorResult.from_exception(ValueError("bad input"),
                                       request_kind="delay",
                                       status=400)
    assert error.error == "bad input"
    assert error.exception == "ValueError"
    assert error.request_kind == "delay"
    assert error.status == 400
    assert error.text == "error: bad input"
    assert from_json(error.to_json()) == error
    # Message-less exceptions fall back to the class name.
    assert ErrorResult.from_exception(RuntimeError()).error \
        == "RuntimeError"


def test_infinities_travel_as_strings():
    record = StaRequest(required=math.inf)
    payload = json.loads(record.to_json())
    assert payload["data"]["required"] == "Infinity"
    back = StaRequest.from_json(payload)
    assert back.required == math.inf
    assert back == record


def test_schema_version_is_checked():
    payload = json.loads(VersionRequest().to_json())
    payload["schema"] = f"{API_SCHEMA}/{API_SCHEMA_VERSION + 1}"
    with pytest.raises(ParameterError, match="schema version"):
        from_json(payload)
    payload["schema"] = "someone-else/1"
    with pytest.raises(ParameterError, match="not a repro.api"):
        from_json(payload)
    with pytest.raises(ParameterError, match="not a repro.api"):
        from_json({"kind": "version", "data": {}})


def test_unknown_kind_and_fields_are_rejected():
    payload = json.loads(VersionRequest().to_json())
    payload["kind"] = "teleport"
    with pytest.raises(ParameterError, match="unknown payload kind"):
        from_json(payload)
    payload = json.loads(SweepRequest().to_json())
    payload["data"]["burst"] = 3
    with pytest.raises(ParameterError, match="unknown field"):
        from_json(payload)


def test_kind_mismatch_in_typed_decode():
    with pytest.raises(ParameterError, match="expected a 'sweep'"):
        SweepRequest.from_json(VersionRequest().to_json())


def test_malformed_json_is_a_parameter_error():
    with pytest.raises(ParameterError, match="not a JSON payload"):
        from_json("{nope")
    with pytest.raises(ParameterError, match="JSON object"):
        from_json("[1, 2]")


def test_field_type_enforcement():
    payload = json.loads(SweepRequest().to_json())
    payload["data"]["points"] = "many"
    with pytest.raises(ParameterError):
        from_json(payload)


def test_base_class_is_abstractly_decodable():
    record = DelayRequest()
    assert ApiRecord.from_json(record.to_json()) == record
