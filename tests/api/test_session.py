"""Behavior of the :class:`repro.api.Session` facade."""

import numpy as np
import pytest

from repro.api import (DelayRequest, DescribeRequest,
                       ExperimentRequest, LibraryRequest, Session,
                       StaRequest, VersionRequest, VersionResult,
                       from_json)
from repro.core.parameters import PAPER_TABLE_I
from repro.engine import get_engine
from repro.errors import ParameterError


class TestBindings:
    def test_defaults(self):
        session = Session()
        assert session.tech_name == "finfet15"
        assert session.engine.name == "vectorized"
        assert session.parameters == PAPER_TABLE_I

    def test_engine_by_name_and_instance(self):
        assert Session(engine="reference").engine.name == "reference"
        backend = get_engine("reference")
        assert Session(engine=backend).engine is backend

    def test_unknown_engine_raises_on_first_use(self):
        session = Session(engine="gpu")  # construction stays cheap
        with pytest.raises(ValueError, match="unknown delay engine"):
            session.engine

    def test_unknown_tech_rejected(self):
        with pytest.raises(ParameterError, match="unknown technology"):
            Session(tech="tsmc3")

    def test_tech_card_instance(self):
        from repro.spice.technology import BULK65
        session = Session(tech=BULK65)
        assert session.technology is BULK65

    def test_generalized_widening(self):
        session = Session()
        assert session.generalized(3).num_inputs == 3

    def test_repr_is_compact(self):
        session = Session(engine="reference")
        assert "finfet15" in repr(session)
        session.engine
        assert "reference" in repr(session)


class TestDispatch:
    def test_delay_matches_direct_engine_call(self):
        session = Session()
        deltas = ((0.0,), (10e-12,), (float("inf"),))
        result = session.run(DelayRequest(deltas=deltas))
        direct = session.engine.delays_falling(
            PAPER_TABLE_I, np.array([0.0, 10e-12, float("inf")]))
        assert np.allclose(result.delays, direct, atol=0.0)

    def test_run_rejects_non_requests(self):
        with pytest.raises(ParameterError, match="not a known"):
            Session().run("fig4")

    def test_run_json_round_trip(self):
        session = Session()
        result = session.run_json(VersionRequest().to_json())
        assert isinstance(result, VersionResult)
        assert result.version

    def test_run_json_rejects_results(self):
        session = Session()
        result = session.run(VersionRequest())
        with pytest.raises(ParameterError, match="not a request"):
            session.run_json(result.to_json())

    def test_result_envelope_round_trips(self):
        session = Session()
        result = session.run(DescribeRequest())
        assert from_json(result.to_json()) == result

    def test_experiment_unknown_name(self):
        with pytest.raises(ParameterError, match="unknown experiment"):
            Session().run(ExperimentRequest(name="fig99"))

    def test_every_catalog_name_is_runnable(self):
        """experiment_names() is the ExperimentRequest contract —
        the probe-style names must not be rejected."""
        from repro.api import experiment_names
        session = Session()
        for name in ("engines", "multi_input"):
            assert name in experiment_names()
        result = session.run(ExperimentRequest(name="multi_input"))
        assert "n=2 reduction" in result.text

    def test_sta_honors_the_session_parameters(self):
        """StaRequest must analyze the *bound* parameter set."""
        from repro.api import StaRequest
        default = Session().run(StaRequest(circuit="nor2"))
        slowed = Session(
            parameters=PAPER_TABLE_I.replace(
                r3=4.0 * PAPER_TABLE_I.r3,
                r4=4.0 * PAPER_TABLE_I.r4))
        other = slowed.run(StaRequest(circuit="nor2"))
        assert other.analysis != default.analysis

    def test_sta_reuses_the_memoized_graph(self):
        from repro.api import StaRequest
        session = Session()
        graph = session.timing_graph("nor2")
        session.run(StaRequest(circuit="nor2", top=1))
        assert session.timing_graph("nor2") is graph

    def test_delay_arity_validation(self):
        with pytest.raises(ParameterError, match="sibling offset"):
            Session().run(DelayRequest(gate="nor3",
                                       deltas=((1e-12,),)))


class TestCaching:
    def test_repeats_are_cache_hits(self):
        session = Session()
        request = DelayRequest(deltas=((5e-12,),))
        first = session.run(request)
        second = session.run(request)
        assert second is first
        info = session.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1

    def test_equal_requests_share_one_entry(self):
        session = Session()
        first = session.run(DelayRequest(deltas=((5e-12,),)))
        second = session.run(DelayRequest(deltas=((5e-12,),)))
        assert second is first

    def test_cache_can_be_disabled(self):
        session = Session(cache=False)
        request = VersionRequest()
        assert session.run(request) is not session.run(request)
        info = session.cache_info()
        assert info["size"] == 0
        assert info["misses"] == 2  # dispatches still counted

    def test_cache_false_covers_files_and_graphs(self, tmp_path):
        """cache=False must re-read files, as the docstring says."""
        from repro.library import GateLibrary, characterize_gate
        from repro.library.characterize import CharacterizationJob
        table = characterize_gate(
            CharacterizationJob("nor2_paper", PAPER_TABLE_I,
                                deltas=(0.0, 1e-12),
                                state_grid=(0.0,)))
        path = tmp_path / "lib.json"
        GateLibrary("first", {"nor2_paper": table}).save(path)
        session = Session(cache=False)
        assert session.load_library(path).name == "first"
        GateLibrary("second", {"nor2_paper": table}).save(path)
        assert session.load_library(path).name == "second"
        assert session.timing_graph("nor2") \
            is not session.timing_graph("nor2")

    def test_clear_cache(self):
        session = Session()
        session.run(VersionRequest())
        session.clear_cache()
        assert session.cache_info() == {"hits": 0, "misses": 0,
                                        "size": 0}

    def test_timing_graph_memoized(self):
        session = Session()
        assert session.timing_graph("nor2") \
            is session.timing_graph("nor2")


class TestLibraryAccess:
    def test_missing_file_is_one_line_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="no such file"):
            Session().load_library(tmp_path / "nope.json")

    def test_foreign_json_is_one_line_value_error(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="cannot read"):
            Session().load_library(path)

    def test_sta_library_requires_cell(self, tmp_path):
        request = StaRequest(circuit="nor2",
                             library_path=str(tmp_path / "x.json"))
        with pytest.raises(ParameterError, match="--cell"):
            Session().run(request)

    def test_library_request_missing_file(self, tmp_path):
        request = LibraryRequest(path=str(tmp_path / "nope.json"))
        with pytest.raises(ValueError, match="no such file"):
            Session().run(request)
