"""Golden parity: the rebuilt CLI prints what the old CLI printed.

Every subcommand of the rebuilt :mod:`repro.cli` is a thin adapter
over ``Session.run(request)``.  These tests pin the adapter to the
pre-redesign behavior two ways:

* **byte-identical human output** — each subcommand's stdout is
  compared against a *legacy replica*: the exact rendering the old
  CLI assembled from the kernel calls (``experiment_*``, the
  characterize/library/sta runners).  Timing-laden kernels (engines,
  runtime, the analog figures) are stubbed identically on both sides,
  which proves the routing without the nondeterminism.
* **valid ``--json`` output** — each subcommand's envelope parses as
  strict JSON, carries the schema tag, and decodes back to its typed
  result.
"""

import json
import types

import pytest

import repro.analysis.experiments as exp
from repro.api import from_json
from repro.cli import main
from repro.units import PS


def run_cli(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


# ----------------------------------------------------------------------
# deterministic subcommands: compare against the kernel rendering
# ----------------------------------------------------------------------

class TestDeterministicParity:
    def test_version(self, capsys):
        from repro._version import __version__
        assert run_cli(capsys, ["version"]) == f"repro {__version__}\n"

    def test_fig4(self, capsys):
        assert run_cli(capsys, ["fig4"]) \
            == exp.experiment_fig4().text + "\n"

    def test_table1(self, capsys):
        assert run_cli(capsys, ["table1"]) \
            == exp.experiment_table1().text + "\n"

    def test_analytic(self, capsys):
        assert run_cli(capsys, ["analytic"]) \
            == exp.experiment_analytic().text + "\n"

    def test_faithfulness(self, capsys):
        assert run_cli(capsys, ["faithfulness"]) \
            == exp.experiment_faithfulness().text + "\n"

    @pytest.mark.parametrize("figure,runner", [
        ("fig5", exp.experiment_fig5),
        ("fig6", exp.experiment_fig6),
        ("fig8", exp.experiment_fig8),
    ])
    def test_engine_figures(self, capsys, figure, runner):
        for engine in ("vectorized", "reference"):
            golden = runner(characterization=None,
                            engine=engine).text + "\n"
            assert run_cli(capsys, [figure, "--engine",
                                    engine]) == golden

    def test_sta_validate(self, capsys):
        golden = exp.experiment_sta(engine=None).text + "\n"
        assert run_cli(capsys, ["sta", "--validate"]) == golden


def _legacy_sta_text(circuit="tree", engine=None, required=None,
                     top=3, corners=None, seed=0):
    """The old ``_run_sta`` rendering, kept verbatim as the golden."""
    from repro.engine import get_engine
    from repro.sta import (analyze, build_timing_graph, demo_corners,
                           render_report, render_sweep_summary,
                           sta_circuit, sweep_corners)

    backend = get_engine(engine)
    graph = build_timing_graph(sta_circuit(circuit), engine=backend)
    result = analyze(graph, required=required, top_paths=top)
    lines = [render_report(result,
                           title=f"STA report: circuit '{circuit}' "
                                 f"via '{backend.name}'")]
    if corners is not None:
        params_axis, corner_arrivals = demo_corners(
            corners, [graph.inputs[0]], seed=seed)
        sweep = sweep_corners(graph, params=params_axis,
                              arrivals=corner_arrivals,
                              required=required)
        lines.append("")
        lines.append(render_sweep_summary(sweep))
    return "\n".join(lines)


class TestStaParity:
    def test_default_report(self, capsys):
        assert run_cli(capsys, ["sta"]) \
            == _legacy_sta_text() + "\n"

    def test_options_report(self, capsys):
        golden = _legacy_sta_text(circuit="chain",
                                  required=250.0 * PS, top=2,
                                  corners=8, seed=3)
        out = run_cli(capsys, ["sta", "--circuit", "chain",
                               "--required", "250", "--top", "2",
                               "--corners", "8", "--seed", "3"])
        assert out == golden + "\n"


def _legacy_characterize_text(gate, engine_name, core_points,
                              state_points, name, out_path):
    """The old ``_run_characterize`` rendering (paper-parameter
    path), kept verbatim as the golden."""
    import dataclasses

    from repro.core.multi_input import paper_generalized
    from repro.core.parameters import PAPER_TABLE_I
    from repro.library import (characterize_library,
                               default_delta_grid, default_state_grid,
                               default_vector_delta_grid,
                               generalized_jobs, paper_jobs,
                               verify_table)
    from repro.library.characterize import (DEFAULT_CORE_POINTS,
                                            DEFAULT_STATE_POINTS)
    from repro.units import to_ps

    params, suffix = PAPER_TABLE_I, "paper"
    if gate != "nor2":
        num_inputs = int(gate[len("nor"):])
        wide = paper_generalized(num_inputs, params)
        jobs = generalized_jobs(num_inputs, wide,
                                technology="finfet15", suffix=suffix)
        if core_points is not None:
            deltas = tuple(default_vector_delta_grid(
                wide, core_points=core_points))
            jobs = tuple(dataclasses.replace(job, deltas=deltas)
                         for job in jobs)
    else:
        jobs = paper_jobs(params, technology="finfet15",
                          suffix=suffix)
        if core_points is not None or state_points is not None:
            deltas = tuple(default_delta_grid(
                params,
                core_points=core_points or DEFAULT_CORE_POINTS))
            states = tuple(default_state_grid(
                params, points=state_points or DEFAULT_STATE_POINTS))
            jobs = tuple(dataclasses.replace(job, deltas=deltas,
                                             state_grid=states)
                         for job in jobs)
    library = characterize_library(jobs, engine=engine_name,
                                   name=name)
    path = library.save(out_path)
    lines = [f"characterized {len(library)} cells via "
             f"'{engine_name}':"]
    worst = 0.0
    for cell in library.cells:
        accuracy = verify_table(library[cell], engine=engine_name)
        worst = max(worst, accuracy.max_error)
        lines.append(f"  {library[cell].describe()}")
        lines.append(f"    interpolation error: falling "
                     f"{to_ps(accuracy.falling_error) * 1000.0:.2f} "
                     f"fs, rising "
                     f"{to_ps(accuracy.rising_error) * 1000.0:.2f} fs")
    if gate == "nor2":
        lines.append(f"worst interpolation error "
                     f"{to_ps(worst) * 1000.0:.2f} fs "
                     "(acceptance: <= 100 fs)")
    else:
        lines.append(f"worst interpolation error "
                     f"{to_ps(worst) * 1000.0:.2f} fs "
                     "(multilinear on the tensor grid; raise "
                     "--core-points to tighten)")
    lines.append(f"wrote {path}")
    return "\n".join(lines)


class TestCharacterizeAndLibraryParity:
    def test_characterize_nor2(self, capsys, tmp_path):
        golden = _legacy_characterize_text(
            "nor2", "vectorized", 33, 2, "repro-hybrid",
            tmp_path / "golden.json")
        out = run_cli(capsys, ["characterize", "--core-points", "33",
                               "--state-points", "2", "--out",
                               str(tmp_path / "cli.json")])
        assert out == golden.replace("golden.json",
                                     "cli.json") + "\n"
        assert ((tmp_path / "cli.json").read_text()
                == (tmp_path / "golden.json").read_text())

    def test_characterize_nor3(self, capsys, tmp_path):
        golden = _legacy_characterize_text(
            "nor3", "vectorized", 9, None, "repro-hybrid",
            tmp_path / "golden.json")
        out = run_cli(capsys, ["characterize", "--gate", "nor3",
                               "--core-points", "9", "--out",
                               str(tmp_path / "cli.json")])
        assert out == golden.replace("golden.json",
                                     "cli.json") + "\n"

    def test_library_inspection(self, capsys, tmp_path):
        from repro.library import GateLibrary, verify_table
        from repro.units import to_ps

        lib_path = tmp_path / "gates.json"
        run_cli(capsys, ["characterize", "--core-points", "33",
                         "--state-points", "2", "--out",
                         str(lib_path)])

        # Legacy replica of the old `_run_library` listing.
        library = GateLibrary.load(lib_path)
        lines = [f"library '{library.name}' ({len(library)} cells)"]
        for cell in library.cells:
            lines.append(f"  {library[cell].describe()}")
        golden = "\n".join(lines) + "\n"
        assert run_cli(capsys, ["library", str(lib_path)]) == golden

        cell = library.cells[0]
        table = library[cell]
        fall = table.falling.characteristic()
        rise = table.rising.characteristic()
        accuracy = verify_table(table, engine="vectorized")
        detail = "\n".join([
            f"library '{library.name}' ({len(library)} cells)",
            f"  {table.describe()}",
            "    " + fall.describe("delta_fall"),
            "    " + rise.describe("delta_rise"),
            f"    characterized by engine '{table.engine}'",
            f"    verify vs 'vectorized': max "
            f"{to_ps(accuracy.max_error) * 1000.0:.2f} fs",
        ]) + "\n"
        assert run_cli(capsys, ["library", str(lib_path), "--cell",
                                cell, "--verify"]) == detail


class TestStatsParity:
    """``repro stats`` prints the kernel statistics verbatim."""

    def test_mc_matches_kernel_rendering(self, capsys):
        from repro.analysis.reporting import ascii_table
        from repro.core.parameters import PAPER_TABLE_I
        from repro.stats import ParameterDistribution, monte_carlo
        from repro.stats.distributions import VARIABLE_PARAMS
        from repro.units import to_ps

        distribution = ParameterDistribution(
            PAPER_TABLE_I,
            {name: 0.05 for name in VARIABLE_PARAMS})
        summary = monte_carlo(distribution, (-10.0 * PS, 10.0 * PS),
                              samples=200, seed=11)
        headers = ["Δ [ps]", "mean [ps]", "std [ps]"]
        headers += [f"p{level:g} [ps]"
                    for level in summary.percentile_levels]
        rows = []
        for j, delta in enumerate(summary.deltas):
            row = [f"{to_ps(delta):+.2f}",
                   f"{to_ps(summary.mean[j]):.3f}",
                   f"{to_ps(summary.std[j]):.4f}"]
            row += [f"{to_ps(summary.percentile_values[i][j]):.3f}"
                    for i in range(len(summary.percentile_levels))]
            rows.append(tuple(row))
        golden = ascii_table(
            headers, rows,
            title="Monte-Carlo delay statistics: nor2 falling, "
                  "200 samples, seed 11")
        out = run_cli(capsys, ["stats", "--delta", "-10", "--delta",
                               "10", "--samples", "200", "--seed",
                               "11"])
        assert out == golden + "\n"

    def test_yield_matches_kernel_rendering(self, capsys):
        from repro.api import Session
        from repro.core.parameters import PAPER_TABLE_I
        from repro.stats import ParameterDistribution, timing_yield
        from repro.stats.distributions import VARIABLE_PARAMS
        from repro.units import to_ps

        distribution = ParameterDistribution(
            PAPER_TABLE_I,
            {name: 0.05 for name in VARIABLE_PARAMS})
        graph = Session().timing_graph("tree")
        outcome = timing_yield(graph, distribution, samples=64,
                               seed=5, required=90.0 * PS)
        stats = outcome.arrival_stats()
        golden = "\n".join([
            "statistical STA: circuit 'tree', 64 corners "
            "(shared variation), seed 5",
            f"  worst arrival: mean {to_ps(stats['mean']):.3f} ps, "
            f"std {to_ps(stats['std']):.4f} ps, range "
            f"[{to_ps(stats['min']):.3f}, "
            f"{to_ps(stats['max']):.3f}] ps",
            f"  required 90.000 ps -> timing yield "
            f"{outcome.yield_fraction:.4f}",
        ]) + "\n"
        out = run_cli(capsys, ["stats", "--method", "yield",
                               "--samples", "64", "--seed", "5",
                               "--required", "90"])
        assert out == golden


# ----------------------------------------------------------------------
# timing-laden subcommands: identical stub on both sides
# ----------------------------------------------------------------------

class TestStubbedParity:
    """The routing is proven with deterministic kernel stubs."""

    def test_engines(self, capsys, monkeypatch):
        stub = exp.EngineComparisonResult(
            points=64, seconds={"vectorized": 0.25, "reference": 2.5},
            points_per_second={"vectorized": 512.0,
                               "reference": 51.2},
            speedup=10.0, max_abs_difference=1e-15,
            text="ENGINE TABLE GOLDEN")
        calls = []

        def fake(params=None, points=4096, span=None, repeats=1):
            calls.append(points)
            return stub

        monkeypatch.setattr(exp, "experiment_engines", fake)
        out = run_cli(capsys, ["engines", "--points", "64"])
        assert out == stub.text + "\n"
        assert calls == [64]

    def test_multi_input(self, capsys, monkeypatch):
        stub = exp.MultiInputResult(num_inputs=4,
                                    reduction_error=1e-13,
                                    batch_error=1e-16, speedup=18.0,
                                    text="NOR4 GOLDEN")
        calls = []

        def fake(params=None, num_inputs=3, grid_points=25,
                 engine=None):
            calls.append((num_inputs, grid_points))
            return stub

        monkeypatch.setattr(exp, "experiment_multi_input", fake)
        out = run_cli(capsys, ["multi_input", "--gate", "nor4",
                               "--points", "7"])
        assert out == stub.text + "\n"
        assert calls == [(4, 7)]

    def test_runtime(self, capsys, monkeypatch):
        stub = types.SimpleNamespace(text="RUNTIME GOLDEN")
        monkeypatch.setattr(exp, "experiment_runtime",
                            lambda tech: stub)
        assert run_cli(capsys, ["runtime"]) == stub.text + "\n"

    def test_fig2_routes_the_tech_card(self, capsys, monkeypatch):
        from repro.spice.technology import BULK65
        seen = []

        def fake(tech):
            seen.append(tech)
            return types.SimpleNamespace(text="FIG2 GOLDEN")

        monkeypatch.setattr(exp, "experiment_fig2", fake)
        out = run_cli(capsys, ["fig2", "--tech", "bulk65"])
        assert out == "FIG2 GOLDEN\n"
        assert seen == [BULK65]

    def test_fig7_routes_the_effort_options(self, capsys,
                                            monkeypatch):
        seen = {}

        def fake(tech, seed=0, transitions=None, repetitions=None):
            seen.update(transitions=transitions,
                        repetitions=repetitions, seed=seed)
            return types.SimpleNamespace(text="FIG7 GOLDEN")

        monkeypatch.setattr(exp, "experiment_fig7", fake)
        out = run_cli(capsys, ["fig7", "--transitions", "12",
                               "--repetitions", "3", "--seed", "9"])
        assert out == "FIG7 GOLDEN\n"
        assert seen == {"transitions": 12, "repetitions": 3,
                        "seed": 9}

    def test_library_experiment(self, capsys, monkeypatch):
        stub = types.SimpleNamespace(text="LIBRARY GOLDEN")
        monkeypatch.setattr(exp, "experiment_library",
                            lambda engine=None: stub)
        assert run_cli(capsys, ["library"]) == stub.text + "\n"


# ----------------------------------------------------------------------
# --json envelopes: valid strict JSON for every subcommand
# ----------------------------------------------------------------------

class TestJsonMode:
    FAST = [
        ["list"],
        ["version"],
        ["fig4"],
        ["table1"],
        ["analytic"],
        ["faithfulness"],
        ["fig5"],
        ["fig6"],
        ["fig8"],
        ["delay", "--delta", "10", "--delta", "0"],
        ["engines", "--points", "64"],
        ["multi_input", "--points", "5"],
        ["sta", "--circuit", "nor2"],
        ["sta", "--circuit", "chain", "--corners", "4"],
        ["stats", "--delta", "0", "--samples", "64"],
        ["stats", "--method", "yield", "--samples", "32",
         "--required", "250"],
        ["stats", "--method", "yield", "--samples", "32",
         "--per-instance"],
        ["wire", "--stages", "2", "--corners", "4"],
        ["wire", "--topology", "fanout", "--model", "elmore",
         "--validate"],
    ]

    @pytest.mark.parametrize("argv", FAST,
                             ids=[" ".join(a) for a in FAST])
    def test_envelope_is_valid_and_typed(self, capsys, argv):
        out = run_cli(capsys, argv + ["--json"])
        payload = json.loads(out)   # strict JSON
        assert payload["schema"] == "repro.api/1"
        result = from_json(payload)
        assert result.text

    @pytest.mark.parametrize("name", ["fig2", "fig7", "runtime"])
    def test_slow_experiments_envelope(self, capsys, monkeypatch,
                                       name):
        stub = types.SimpleNamespace(text=f"{name} GOLDEN")
        monkeypatch.setattr(
            exp, f"experiment_{name}",
            lambda *args, **kwargs: stub)
        payload = json.loads(run_cli(capsys, [name, "--json"]))
        result = from_json(payload)
        assert result.text == stub.text

    def test_characterize_envelope_carries_the_library(self, capsys,
                                                       tmp_path):
        from repro.library import GateLibrary
        out_path = tmp_path / "lib.json"
        assert main(["characterize", "--core-points", "33",
                     "--state-points", "2", "--out", str(out_path),
                     "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout stays pure JSON
        result = from_json(payload)
        library = GateLibrary.from_dict(result.library)
        assert library.cells == result.cells
        # The --out side effect still happened — and is announced on
        # stderr so the write is traceable without corrupting stdout.
        assert (GateLibrary.load(out_path).cells == library.cells)
        assert f"wrote {out_path}" in captured.err

    def test_library_inspection_envelope(self, capsys, tmp_path):
        lib_path = tmp_path / "gates.json"
        run_cli(capsys, ["characterize", "--core-points", "33",
                         "--state-points", "2", "--out",
                         str(lib_path)])
        payload = json.loads(
            run_cli(capsys, ["library", str(lib_path), "--json"]))
        result = from_json(payload)
        assert result.cells
