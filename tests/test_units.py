"""Tests for repro.units."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConstants:
    def test_prefix_values(self):
        assert units.PICO == 1e-12
        assert units.FEMTO == 1e-15
        assert units.ATTO == 1e-18
        assert units.KILO == 1e3

    def test_shorthands(self):
        assert units.PS == units.PICO
        assert units.NS == units.NANO
        assert units.FF == units.FEMTO
        assert units.AF == units.ATTO
        assert units.KOHM == units.KILO


class TestConversions:
    def test_to_ps(self):
        assert units.to_ps(38e-12) == pytest.approx(38.0)

    def test_from_ps(self):
        assert units.from_ps(38.0) == pytest.approx(38e-12)

    @given(st.floats(min_value=-1e6, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    def test_round_trip(self, value):
        assert units.to_ps(units.from_ps(value)) == pytest.approx(
            value, rel=1e-12, abs=1e-12)


class TestEngFormat:
    def test_picoseconds(self):
        assert units.eng_format(38e-12, "s") == "38.0 ps"

    def test_attofarads(self):
        assert units.eng_format(617.259e-18, "F") == "617.259 aF"

    def test_kilo_ohms(self):
        assert units.eng_format(45.15e3, "Ohm") == "45.15 kOhm"

    def test_zero(self):
        assert units.eng_format(0.0, "V") == "0 V"

    def test_zero_without_unit(self):
        assert units.eng_format(0.0) == "0"

    def test_nan(self):
        assert units.eng_format(float("nan"), "V") == "nan V"

    def test_infinity(self):
        assert units.eng_format(math.inf, "s") == "inf s"
        assert units.eng_format(-math.inf, "s") == "-inf s"

    def test_negative_value(self):
        text = units.eng_format(-1.5e-9, "s")
        assert text.startswith("-1.5")
        assert text.endswith("ns")

    def test_plain_units_range(self):
        assert units.eng_format(2.5, "V") == "2.5 V"

    def test_format_time(self):
        assert units.format_time(38.125e-12) == "38.12 ps"
        assert units.format_time(38.125e-12, digits=1) == "38.1 ps"


class TestPercentChange:
    def test_paper_annotation(self):
        # Fig. 2b: 28 ps vs ~38.9 ps is about -28 %.
        assert units.percent_change(28.0, 38.9) == pytest.approx(
            -28.0, abs=0.1)

    def test_positive(self):
        assert units.percent_change(56.5, 52.7) == pytest.approx(
            7.21, abs=0.01)

    def test_zero_reference_raises(self):
        with pytest.raises(ZeroDivisionError):
            units.percent_change(1.0, 0.0)

    @given(st.floats(min_value=0.1, max_value=1e3),
           st.floats(min_value=0.1, max_value=1e3))
    def test_sign_convention(self, value, reference):
        change = units.percent_change(value, reference)
        if value > reference:
            assert change > 0
        elif value < reference:
            assert change < 0
        else:
            assert change == 0
