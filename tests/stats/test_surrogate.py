"""Collocation surrogate: accuracy acceptance + persistent fits.

Pins the ISSUE 9 surrogate criteria as tests: moments within 1 % of
a same-seed Monte-Carlo at >= 20x fewer model evaluations, and
fitted coefficients that persist in the :mod:`repro.cache` disk
store so a second process pays zero engine evaluations (asserted via
the ``repro_stats_surrogate_total{outcome=hit}`` counter).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import cache
from repro.core.parameters import PAPER_TABLE_I
from repro.errors import ParameterError
from repro.stats import (VARIABLE_PARAMS, ParameterDistribution,
                         fit_surrogate, monte_carlo)
from repro.stats.surrogate import _design, _multi_indices
from repro.units import PS

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

DIST = ParameterDistribution(
    PAPER_TABLE_I, {name: 0.08 for name in VARIABLE_PARAMS})
DELTAS = (-20.0 * PS, 0.0, 20.0 * PS)


@pytest.fixture(autouse=True)
def _clean_cache_state(monkeypatch):
    """Every test starts unconfigured and without the env override."""
    monkeypatch.delenv(cache.ENV_VAR, raising=False)
    cache.unconfigure()
    yield
    cache.unconfigure()


class TestDesign:
    def test_oversampled_and_deterministic(self):
        for k, degree in ((2, 2), (6, 3)):
            basis = len(_multi_indices(k, degree))
            design = _design(k, degree)
            assert design.shape == (int(1.5 * basis), k)
            assert np.array_equal(design, _design(k, degree))

    def test_sign_symmetric_nodes(self):
        design = _design(3, 2)
        assert np.allclose(np.unique(design),
                           -np.unique(design)[::-1])


class TestAccuracy:
    def test_moments_within_tolerance_at_20x(self):
        """The headline acceptance, at the benchmark's workload."""
        reference = monte_carlo(DIST, DELTAS, samples=4000, seed=7)
        surrogate = fit_surrogate(DIST, DELTAS, use_cache=False)
        assert 4000 / surrogate.design_points >= 20.0
        summary = surrogate.summarize(samples=4000, seed=7)
        mean_err = np.max(np.abs(summary.mean - reference.mean)
                          / reference.mean)
        std_err = np.max(np.abs(summary.std - reference.std)
                         / reference.std)
        assert mean_err <= 0.01
        assert std_err <= 0.01
        assert summary.method == "surrogate"
        assert summary.samples == surrogate.design_points

    def test_analytic_moments_match_resampling(self):
        surrogate = fit_surrogate(DIST, (0.0,), degree=2,
                                  use_cache=False)
        summary = surrogate.summarize(samples=60_000, seed=3)
        assert np.allclose(surrogate.mean(), summary.mean,
                           rtol=5e-3)
        assert np.allclose(surrogate.std(), summary.std, rtol=5e-2)

    def test_rising_direction_fits(self):
        surrogate = fit_surrogate(DIST, (0.0, 10.0 * PS),
                                  direction="rising", vn_init=0.35,
                                  degree=2, use_cache=False)
        assert np.isfinite(surrogate.mean()).all()
        assert (surrogate.std() > 0.0).all()


class TestCachePersistence:
    def test_refit_hits_the_store(self, tmp_path):
        from repro.stats.surrogate import _fit_counter
        cache.configure(tmp_path)
        misses, hits = (_fit_counter("miss").value,
                        _fit_counter("hit").value)
        first = fit_surrogate(DIST, DELTAS, degree=2)
        assert _fit_counter("miss").value == misses + 1
        second = fit_surrogate(DIST, DELTAS, degree=2)
        assert _fit_counter("hit").value == hits + 1
        assert second.coefficients.tobytes() \
            == first.coefficients.tobytes()

    def test_fit_inputs_key_the_store(self, tmp_path):
        cache.configure(tmp_path)
        fit_surrogate(DIST, DELTAS, degree=2)
        entries = cache.get_store().info()["entries"]
        fit_surrogate(DIST, DELTAS, degree=3)
        assert cache.get_store().info()["entries"] == entries + 1

    def test_second_process_pays_zero_evaluations(self, tmp_path):
        """ISSUE acceptance: the cross-process fit is a cache hit."""
        cache.configure(tmp_path)
        local = fit_surrogate(DIST, DELTAS, degree=2)
        script = (
            "import json\n"
            "import numpy as np\n"
            "from repro.core.parameters import PAPER_TABLE_I\n"
            "from repro.stats import (VARIABLE_PARAMS,\n"
            "                         ParameterDistribution,\n"
            "                         fit_surrogate)\n"
            "from repro.stats.surrogate import _fit_counter\n"
            "from repro.units import PS\n"
            "dist = ParameterDistribution(\n"
            "    PAPER_TABLE_I,\n"
            "    {name: 0.08 for name in VARIABLE_PARAMS})\n"
            "fit = fit_surrogate(dist, (-20.0 * PS, 0.0, 20.0 * PS),\n"
            "                    degree=2)\n"
            "print(json.dumps({\n"
            "    'hits': _fit_counter('hit').value,\n"
            "    'misses': _fit_counter('miss').value,\n"
            "    'mean': [float(v) for v in fit.mean()]}))\n")
        env = dict(os.environ, PYTHONPATH=SRC_DIR,
                   REPRO_CACHE_DIR=str(tmp_path))
        result = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, text=True,
                                env=env, check=True, timeout=120)
        payload = json.loads(result.stdout.strip().splitlines()[-1])
        assert payload["hits"] == 1 and payload["misses"] == 0
        assert payload["mean"] == [float(v) for v in local.mean()]


class TestErrors:
    @pytest.mark.parametrize("degree", [0, 6])
    def test_degree_range(self, degree):
        with pytest.raises(ParameterError, match="degree"):
            fit_surrogate(DIST, (0.0,), degree=degree,
                          use_cache=False)

    def test_bad_direction(self):
        with pytest.raises(ParameterError, match="direction"):
            fit_surrogate(DIST, (0.0,), direction="up",
                          use_cache=False)

    def test_nan_deltas(self):
        with pytest.raises(ParameterError, match="NaN"):
            fit_surrogate(DIST, (float("nan"),), use_cache=False)
