"""ISSUE 9 determinism acceptance: seeds pin bytes, not just values.

An identical seed must produce a **byte-identical** ``StatsResult``
envelope across the ``reference`` / ``vectorized`` / ``parallel``
backends *and* across processes.  Backends agree only to ~1e-24 s at
the raw-delay level (lockstep-Newton rounding), so the contract holds
because every reduction happens on the canonical 1e-16 s quantization
grid — and because the envelope deliberately carries no engine name.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import Session, StatsRequest
from repro.core.parameters import PAPER_TABLE_I
from repro.engine import available_engines
from repro.stats import (ParameterDistribution, fit_surrogate,
                         sample_delays)
from repro.units import PS

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])
BACKENDS = ("reference", "vectorized", "parallel")

REQUEST = StatsRequest(deltas=(-15.0 * PS, 0.0, 15.0 * PS),
                       samples=96, seed=21,
                       sigma=(("r1", 0.1), ("co", 0.06)))

DIST = ParameterDistribution(PAPER_TABLE_I,
                             {"r1": 0.1, "co": 0.06})


def test_backends_are_registered():
    assert set(BACKENDS) <= set(available_engines())


@pytest.mark.parametrize("backend", BACKENDS)
def test_sample_matrix_is_backend_invariant(backend):
    baseline = sample_delays(DIST, REQUEST.deltas, samples=64,
                             seed=21, engine="reference")
    matrix = sample_delays(DIST, REQUEST.deltas, samples=64,
                           seed=21, engine=backend)
    assert matrix.tobytes() == baseline.tobytes()


@pytest.mark.parametrize("backend", BACKENDS)
def test_envelope_is_backend_invariant(backend):
    baseline = Session(engine="reference").run(REQUEST).to_json()
    envelope = Session(engine=backend).run(REQUEST).to_json()
    assert envelope.encode() == baseline.encode()
    # The envelope must not leak which backend produced it.
    assert backend not in envelope


@pytest.mark.parametrize("backend", BACKENDS)
def test_surrogate_coefficients_are_backend_invariant(backend):
    baseline = fit_surrogate(DIST, REQUEST.deltas, degree=2,
                             engine="reference", use_cache=False)
    fitted = fit_surrogate(DIST, REQUEST.deltas, degree=2,
                           engine=backend, use_cache=False)
    assert fitted.coefficients.tobytes() \
        == baseline.coefficients.tobytes()


def test_envelope_is_process_invariant():
    """A fresh interpreter reproduces the exact envelope bytes."""
    local = Session().run(REQUEST).to_json()
    script = (
        "from repro.api import Session, StatsRequest, from_json\n"
        "import sys\n"
        f"request = from_json({REQUEST.to_json()!r})\n"
        "sys.stdout.write(Session().run(request).to_json())\n")
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    env.pop("REPRO_CACHE_DIR", None)
    result = subprocess.run([sys.executable, "-c", script],
                            capture_output=True, text=True,
                            env=env, check=True, timeout=120)
    assert result.stdout == local
    # Sanity: the shared bytes decode to real statistics.
    payload = json.loads(local)
    assert payload["kind"] == "stats_result"
    assert len(payload["data"]["mean"]) == 3


def test_yield_envelope_repeats():
    request = StatsRequest(method="yield", samples=48, seed=13,
                           required=260.0 * PS,
                           arrival_sigma=2.0 * PS)
    first = Session().run(request)
    second = Session().run(request)
    assert first.to_json() == second.to_json()
    assert 0.0 <= first.yield_fraction <= 1.0


def test_different_seeds_differ():
    import dataclasses
    base = Session().run(REQUEST)
    other = Session().run(dataclasses.replace(REQUEST, seed=22))
    assert not np.array_equal(base.mean, other.mean)
