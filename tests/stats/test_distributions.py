"""Parameter distributions: validation, determinism, moments.

The contract of :class:`repro.stats.ParameterDistribution`: seeded
draws are a pure function of ``(distribution, seed)``, the lognormal
family preserves the nominal mean exactly, the normal family never
produces non-positive R/C values, and equicorrelation really
correlates the underlying normals.
"""

import numpy as np
import pytest

from repro.core.parameters import PAPER_TABLE_I
from repro.errors import ParameterError
from repro.stats import VARIABLE_PARAMS, ParameterDistribution


def make(sigma=None, **kwargs):
    return ParameterDistribution(
        PAPER_TABLE_I, sigma or {"r1": 0.1, "co": 0.05}, **kwargs)


class TestValidation:
    def test_unknown_parameter(self):
        with pytest.raises(ParameterError, match="unknown"):
            make({"vdd": 0.1})

    @pytest.mark.parametrize("rel", [0.0, -0.1, float("inf"),
                                     float("nan")])
    def test_bad_sigma(self, rel):
        with pytest.raises(ParameterError, match="positive"):
            make({"r1": rel})

    def test_duplicate_sigma(self):
        with pytest.raises(ParameterError, match="duplicate"):
            make([("r1", 0.1), ("r1", 0.2)])

    def test_empty_sigma(self):
        with pytest.raises(ParameterError, match="at least one"):
            ParameterDistribution(PAPER_TABLE_I, {})

    def test_unknown_kind(self):
        with pytest.raises(ParameterError, match="unknown"):
            make(kind="uniform")

    @pytest.mark.parametrize("rho", [-0.1, 1.0, float("nan")])
    def test_bad_correlation(self, rho):
        with pytest.raises(ParameterError, match="correlation"):
            make(correlation=rho)

    def test_transform_shape(self):
        with pytest.raises(ParameterError, match="shape"):
            make().transform(np.zeros((4, 3)))

    def test_sample_count(self):
        with pytest.raises(ParameterError, match="at least one"):
            make().draw_normals(0, seed=1)


class TestCanonicalForm:
    def test_sigma_order_is_canonical(self):
        forward = make([("r1", 0.1), ("co", 0.05)])
        backward = make([("co", 0.05), ("r1", 0.1)])
        from_dict = make({"co": 0.05, "r1": 0.1})
        assert forward == backward == from_dict
        assert forward.varied == ("r1", "co")
        assert forward.descriptor() == from_dict.descriptor()

    def test_dimension(self):
        assert make().dimension == 2
        full = make({name: 0.05 for name in VARIABLE_PARAMS})
        assert full.dimension == len(VARIABLE_PARAMS)


class TestDraws:
    def test_seeded_draws_are_reproducible(self):
        dist = make()
        a = dist.sample_block(64, seed=3)
        b = dist.sample_block(64, seed=3)
        assert a.tobytes() == b.tobytes()
        c = dist.sample_block(64, seed=4)
        assert a.tobytes() != c.tobytes()

    def test_unvaried_fields_stay_nominal(self):
        block = make().sample_block(16, seed=0)
        for name in ("r2", "r3", "r4", "cn", "vdd", "delta_min"):
            assert np.all(block[name]
                          == getattr(PAPER_TABLE_I, name))

    def test_lognormal_preserves_the_mean(self):
        dist = make({"r1": 0.1})
        block = dist.sample_block(200_000, seed=11)
        mean = block["r1"].mean()
        # SE of the mean ~ 0.02 %; 0.2 % is a 10-sigma band.
        assert abs(mean / PAPER_TABLE_I.r1 - 1.0) < 2e-3

    def test_lognormal_is_positive(self):
        block = make({"r1": 1.5}).sample_block(5000, seed=2)
        assert np.all(block["r1"] > 0.0)

    def test_normal_floor(self):
        dist = make({"r1": 5.0}, kind="normal")
        block = dist.sample_block(5000, seed=2)
        assert np.all(block["r1"] > 0.0)
        assert block["r1"].min() \
            == pytest.approx(PAPER_TABLE_I.r1 * 1e-6)

    def test_equicorrelation_correlates(self):
        dist = make({"r1": 0.1, "r2": 0.1}, correlation=0.9)
        block = dist.sample_block(20_000, seed=5)
        logs = np.log(np.stack([block["r1"], block["r2"]]))
        rho = np.corrcoef(logs)[0, 1]
        assert rho > 0.85
        independent = make({"r1": 0.1, "r2": 0.1})
        block = independent.sample_block(20_000, seed=5)
        logs = np.log(np.stack([block["r1"], block["r2"]]))
        assert abs(np.corrcoef(logs)[0, 1]) < 0.05
