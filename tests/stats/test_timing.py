"""Statistical STA: yield semantics and backend-invariant bytes.

:func:`repro.stats.timing_yield` rides the array-native corner axis
of ``sweep_corners``; these tests pin the vectorized sweep to the
per-corner scalar loop byte-for-byte, and the yield fraction to its
definition.
"""

import numpy as np
import pytest

from repro.api import Session
from repro.core.parameters import PAPER_TABLE_I
from repro.errors import ParameterError
from repro.stats import ParameterDistribution, timing_yield
from repro.units import PS

DIST = ParameterDistribution(PAPER_TABLE_I,
                             {"r1": 0.1, "co": 0.08})


@pytest.fixture(scope="module")
def tree_graph():
    return Session().timing_graph("tree")


class TestParity:
    def test_vectorized_matches_scalar_loop(self, tree_graph):
        fast = timing_yield(tree_graph, DIST, samples=24, seed=17,
                            required=260.0 * PS)
        slow = timing_yield(tree_graph, DIST, samples=24, seed=17,
                            required=260.0 * PS, scalar=True)
        assert fast.worst_arrival.tobytes() \
            == slow.worst_arrival.tobytes()
        assert fast.worst_slack.tobytes() \
            == slow.worst_slack.tobytes()
        assert fast.yield_fraction == slow.yield_fraction

    def test_seed_reproducibility(self, tree_graph):
        a = timing_yield(tree_graph, DIST, samples=16, seed=2,
                         arrival_sigma=3.0 * PS)
        b = timing_yield(tree_graph, DIST, samples=16, seed=2,
                         arrival_sigma=3.0 * PS)
        assert a.worst_arrival.tobytes() == b.worst_arrival.tobytes()
        c = timing_yield(tree_graph, DIST, samples=16, seed=3,
                         arrival_sigma=3.0 * PS)
        assert a.worst_arrival.tobytes() != c.worst_arrival.tobytes()


class TestYieldSemantics:
    def test_unconstrained_yield_is_one(self, tree_graph):
        outcome = timing_yield(tree_graph, DIST, samples=12, seed=1)
        assert outcome.required is None
        assert outcome.yield_fraction == 1.0
        assert np.all(outcome.worst_slack == np.inf)

    def test_impossible_requirement_fails_every_corner(
            self, tree_graph):
        outcome = timing_yield(tree_graph, DIST, samples=12, seed=1,
                               required=0.0)
        assert outcome.yield_fraction == 0.0

    def test_generous_requirement_passes_every_corner(
            self, tree_graph):
        outcome = timing_yield(tree_graph, DIST, samples=12, seed=1,
                               required=1.0)
        assert outcome.yield_fraction == 1.0

    def test_yield_is_the_slack_fraction(self, tree_graph):
        outcome = timing_yield(tree_graph, DIST, samples=64, seed=8,
                               required=260.0 * PS)
        assert outcome.yield_fraction \
            == np.mean(outcome.worst_slack >= 0.0)

    def test_arrival_stats_are_reduced_moments(self, tree_graph):
        outcome = timing_yield(tree_graph, DIST, samples=32, seed=4)
        stats = outcome.arrival_stats()
        assert stats["mean"] \
            == pytest.approx(outcome.worst_arrival.mean())
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["std"] > 0.0


class TestPerInstanceVariation:
    """Independent per-instance draws: block-sliced, deterministic."""

    def test_scalar_parity(self, tree_graph):
        fast = timing_yield(tree_graph, DIST, samples=12, seed=5,
                            per_instance=True)
        slow = timing_yield(tree_graph, DIST, samples=12, seed=5,
                            per_instance=True, scalar=True)
        assert fast.worst_arrival.tobytes() \
            == slow.worst_arrival.tobytes()

    def test_differs_from_shared_variation(self, tree_graph):
        shared = timing_yield(tree_graph, DIST, samples=16, seed=9)
        per = timing_yield(tree_graph, DIST, samples=16, seed=9,
                           per_instance=True)
        assert shared.worst_arrival.tobytes() \
            != per.worst_arrival.tobytes()

    def test_seed_reproducibility(self, tree_graph):
        a = timing_yield(tree_graph, DIST, samples=16, seed=2,
                         per_instance=True)
        b = timing_yield(tree_graph, DIST, samples=16, seed=2,
                         per_instance=True)
        assert a.worst_arrival.tobytes() == b.worst_arrival.tobytes()

    def test_identical_across_engines(self):
        """The block-slicing draw scheme fixes each instance's rows
        up front, so every delay backend sees the same parameters
        and must produce byte-identical arrivals."""
        from repro.engine import available_engines
        from repro.sta import build_timing_graph, sta_circuit

        circuit = sta_circuit("tree")
        outcomes = []
        for name in available_engines():
            graph = build_timing_graph(circuit, engine=name)
            outcomes.append(timing_yield(
                graph, DIST, samples=12, seed=11,
                per_instance=True))
        baseline = outcomes[0].worst_arrival.tobytes()
        for outcome in outcomes[1:]:
            assert outcome.worst_arrival.tobytes() == baseline

    def test_api_passthrough(self):
        from repro.api import StatsRequest

        result = Session().run(StatsRequest(
            method="yield", samples=16, seed=5, per_instance=True))
        assert "(per-instance variation)" in result.text
        shared = Session().run(StatsRequest(
            method="yield", samples=16, seed=5))
        assert "(shared variation)" in shared.text
        assert result.maximum != shared.maximum

    def test_narrows_the_worst_arrival_spread(self, tree_graph):
        """Independent draws average out across the path, so the
        per-instance worst-arrival std must sit below the fully
        correlated (shared) one for the same distribution."""
        shared = timing_yield(tree_graph, DIST, samples=256, seed=3)
        per = timing_yield(tree_graph, DIST, samples=256, seed=3,
                           per_instance=True)
        assert per.arrival_stats()["std"] \
            < shared.arrival_stats()["std"]


class TestErrors:
    def test_sample_count(self, tree_graph):
        with pytest.raises(ParameterError, match="at least one"):
            timing_yield(tree_graph, DIST, samples=0)

    def test_negative_jitter(self, tree_graph):
        with pytest.raises(ParameterError, match="arrival_sigma"):
            timing_yield(tree_graph, DIST, samples=4,
                         arrival_sigma=-1.0)
