"""Statistical STA: yield semantics and backend-invariant bytes.

:func:`repro.stats.timing_yield` rides the array-native corner axis
of ``sweep_corners``; these tests pin the vectorized sweep to the
per-corner scalar loop byte-for-byte, and the yield fraction to its
definition.
"""

import numpy as np
import pytest

from repro.api import Session
from repro.core.parameters import PAPER_TABLE_I
from repro.errors import ParameterError
from repro.stats import ParameterDistribution, timing_yield
from repro.units import PS

DIST = ParameterDistribution(PAPER_TABLE_I,
                             {"r1": 0.1, "co": 0.08})


@pytest.fixture(scope="module")
def tree_graph():
    return Session().timing_graph("tree")


class TestParity:
    def test_vectorized_matches_scalar_loop(self, tree_graph):
        fast = timing_yield(tree_graph, DIST, samples=24, seed=17,
                            required=260.0 * PS)
        slow = timing_yield(tree_graph, DIST, samples=24, seed=17,
                            required=260.0 * PS, scalar=True)
        assert fast.worst_arrival.tobytes() \
            == slow.worst_arrival.tobytes()
        assert fast.worst_slack.tobytes() \
            == slow.worst_slack.tobytes()
        assert fast.yield_fraction == slow.yield_fraction

    def test_seed_reproducibility(self, tree_graph):
        a = timing_yield(tree_graph, DIST, samples=16, seed=2,
                         arrival_sigma=3.0 * PS)
        b = timing_yield(tree_graph, DIST, samples=16, seed=2,
                         arrival_sigma=3.0 * PS)
        assert a.worst_arrival.tobytes() == b.worst_arrival.tobytes()
        c = timing_yield(tree_graph, DIST, samples=16, seed=3,
                         arrival_sigma=3.0 * PS)
        assert a.worst_arrival.tobytes() != c.worst_arrival.tobytes()


class TestYieldSemantics:
    def test_unconstrained_yield_is_one(self, tree_graph):
        outcome = timing_yield(tree_graph, DIST, samples=12, seed=1)
        assert outcome.required is None
        assert outcome.yield_fraction == 1.0
        assert np.all(outcome.worst_slack == np.inf)

    def test_impossible_requirement_fails_every_corner(
            self, tree_graph):
        outcome = timing_yield(tree_graph, DIST, samples=12, seed=1,
                               required=0.0)
        assert outcome.yield_fraction == 0.0

    def test_generous_requirement_passes_every_corner(
            self, tree_graph):
        outcome = timing_yield(tree_graph, DIST, samples=12, seed=1,
                               required=1.0)
        assert outcome.yield_fraction == 1.0

    def test_yield_is_the_slack_fraction(self, tree_graph):
        outcome = timing_yield(tree_graph, DIST, samples=64, seed=8,
                               required=260.0 * PS)
        assert outcome.yield_fraction \
            == np.mean(outcome.worst_slack >= 0.0)

    def test_arrival_stats_are_reduced_moments(self, tree_graph):
        outcome = timing_yield(tree_graph, DIST, samples=32, seed=4)
        stats = outcome.arrival_stats()
        assert stats["mean"] \
            == pytest.approx(outcome.worst_arrival.mean())
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["std"] > 0.0


class TestErrors:
    def test_sample_count(self, tree_graph):
        with pytest.raises(ParameterError, match="at least one"):
            timing_yield(tree_graph, DIST, samples=0)

    def test_negative_jitter(self, tree_graph):
        with pytest.raises(ParameterError, match="arrival_sigma"):
            timing_yield(tree_graph, DIST, samples=4,
                         arrival_sigma=-1.0)
