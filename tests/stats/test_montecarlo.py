"""Vectorized Monte-Carlo sampling: parity, reductions, wiring.

The sampling path flattens N samples x M Δ-points into one block-
kernel engine call; these tests pin it to the ground truth (the
per-sample scalar loop over the reference engine), exercise the
summary reductions, and assert the observability counter.
"""

import numpy as np
import pytest

from repro.core.parameters import PAPER_TABLE_I
from repro.engine import get_engine
from repro.engine.blocks import block_delays_loop
from repro.errors import ParameterError
from repro.stats import (QUANT_STEP, ParameterDistribution,
                         monte_carlo, quantize, sample_delays)
from repro.units import PS

DIST = ParameterDistribution(
    PAPER_TABLE_I, {"r1": 0.08, "r2": 0.08, "cn": 0.08, "co": 0.08})
#: Both falling branches, the SIS point, and the infinite-separation
#: limits.
DELTAS = (-30.0 * PS, 0.0, 25.0 * PS, float("inf"), float("-inf"))


class TestQuantize:
    def test_snaps_to_the_grid(self):
        values = np.array([1.23456789e-12, 7.7e-11, 3.21e-13])
        q = quantize(values)
        ratio = q / QUANT_STEP
        assert np.array_equal(ratio, np.round(ratio))
        assert np.allclose(q, values, rtol=1e-3)

    def test_infinities_pass_through(self):
        q = quantize(np.array([np.inf, -np.inf, 5e-12]))
        assert q[0] == np.inf and q[1] == -np.inf

    def test_idempotent(self):
        values = quantize(np.array([4.2e-12, 9.9e-13]))
        assert np.array_equal(quantize(values), values)


class TestBlockParity:
    """Vectorized sampling == scalar reference loop, byte-for-byte."""

    @pytest.mark.parametrize("direction,vn_init", [
        ("falling", 0.0), ("rising", 0.0), ("rising", 0.35),
    ])
    def test_matches_reference_loop(self, direction, vn_init):
        fast = sample_delays(DIST, DELTAS, samples=48, seed=9,
                             direction=direction, vn_init=vn_init)
        block = DIST.sample_block(48, seed=9)
        grid = np.broadcast_to(np.asarray(DELTAS), (48, len(DELTAS)))
        slow = quantize(block_delays_loop(
            get_engine("reference"), direction, block, grid,
            vn_init))
        assert fast.shape == (48, len(DELTAS))
        assert np.array_equal(fast, slow)

    def test_wider_gates_sample(self):
        matrix = sample_delays(DIST, (0.0, 10.0 * PS), samples=16,
                               seed=1, gate="nor3")
        again = sample_delays(DIST, (0.0, 10.0 * PS), samples=16,
                              seed=1, gate="nor3")
        assert matrix.shape == (16, 2)
        assert np.isfinite(matrix).all()
        assert np.array_equal(matrix, again)


class TestSummaries:
    def test_moments_match_numpy(self):
        summary = monte_carlo(DIST, DELTAS[:3], samples=256, seed=4)
        matrix = sample_delays(DIST, DELTAS[:3], samples=256, seed=4)
        assert summary.method == "mc"
        assert summary.samples == 256
        assert np.array_equal(summary.mean, matrix.mean(axis=0))
        assert np.array_equal(summary.std, matrix.std(axis=0,
                                                      ddof=1))
        assert np.array_equal(summary.minimum, matrix.min(axis=0))
        assert np.array_equal(summary.maximum, matrix.max(axis=0))

    def test_percentiles_are_ordered(self):
        summary = monte_carlo(DIST, (0.0,), samples=128, seed=4,
                              percentiles=(5.0, 50.0, 95.0))
        column = [row[0] for row in summary.percentile_values]
        assert column == sorted(column)
        assert np.array_equal(summary.percentile_levels,
                              (5.0, 50.0, 95.0))

    def test_histograms_are_optional(self):
        plain = monte_carlo(DIST, (0.0,), samples=64, seed=4)
        assert plain.histogram_edges is None
        binned = monte_carlo(DIST, (0.0,), samples=64, seed=4,
                             bins=8)
        assert len(binned.histogram_edges[0]) == 9
        assert sum(binned.histogram_counts[0]) == 64

    def test_samples_counter_increments(self):
        from repro.stats.montecarlo import _counter
        counter = _counter("mc")
        before = counter.value
        monte_carlo(DIST, (0.0,), samples=32, seed=0)
        assert counter.value == before + 32


class TestErrors:
    def test_unknown_gate(self):
        with pytest.raises(ParameterError, match="unknown gate"):
            sample_delays(DIST, (0.0,), samples=4, gate="nand2")

    def test_bad_direction(self):
        with pytest.raises(ParameterError, match="direction"):
            sample_delays(DIST, (0.0,), samples=4,
                          direction="sideways")

    def test_bad_sample_count(self):
        with pytest.raises(ParameterError, match="at least one"):
            sample_delays(DIST, (0.0,), samples=0)

    def test_nan_delta(self):
        with pytest.raises(ParameterError, match="NaN"):
            sample_delays(DIST, (float("nan"),), samples=4)
