"""Execute the tutorial pages so the documentation cannot rot.

Every fenced ``python`` block of each tutorial is executed in order
in one shared namespace per page — the pages promise exactly this in
their prose.  The narrated blocks carry their own assertions; this
harness only adds "it runs".
"""

import pathlib
import re

import pytest

DOCS = pathlib.Path(__file__).parents[2] / "docs"

_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.S)

TUTORIALS = sorted(
    path.relative_to(DOCS).as_posix()
    for path in (DOCS / "tutorials").glob("*.md"))


def _python_blocks(page: str) -> list[str]:
    return _PYTHON_BLOCK.findall((DOCS / page).read_text())


def test_tutorial_pages_exist():
    assert "tutorials/quickstart.md" in TUTORIALS
    assert "tutorials/timing-accuracy.md" in TUTORIALS


@pytest.mark.parametrize("page", TUTORIALS)
def test_tutorial_blocks_execute(page):
    blocks = _python_blocks(page)
    assert blocks, f"{page} has no executable python blocks"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{page}[block {index}]", "exec"),
                 namespace)
        except Exception as error:  # pragma: no cover - failure path
            pytest.fail(f"{page} block {index} failed: {error!r}")


def test_examples_referenced_by_tutorials_exist():
    """Tutorials point readers at the standalone example scripts."""
    examples = pathlib.Path(__file__).parents[2] / "examples"
    quickstart = (DOCS / "tutorials/quickstart.md").read_text()
    accuracy = (DOCS / "tutorials/timing-accuracy.md").read_text()
    assert "examples/quickstart.py" in quickstart
    assert (examples / "quickstart.py").exists()
    assert "examples/timing_accuracy.py" in accuracy
    assert (examples / "timing_accuracy.py").exists()
