"""The documentation site must build clean in strict mode.

This is the same invocation CI's ``docs`` job runs; a broken internal
link, an orphaned page, or a public symbol losing its docstring fails
here first.
"""

import importlib.util
import pathlib
import sys

import pytest

REPO = pathlib.Path(__file__).parents[2]


@pytest.fixture(scope="module")
def build_module():
    spec = importlib.util.spec_from_file_location(
        "docs_build", REPO / "docs" / "build.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def site(build_module, tmp_path_factory):
    output = tmp_path_factory.mktemp("site")
    code = build_module.main(["--output", str(output), "--strict"])
    assert code == 0, "strict docs build reported warnings"
    return output


def test_strict_build_succeeds(site):
    assert (site / "index.html").exists()
    assert (site / "style.css").exists()


def test_api_pages_cover_all_packages(build_module, site):
    for module_name in ("repro", "repro.core", "repro.engine",
                        "repro.library", "repro.spice", "repro.timing",
                        "repro.models", "repro.analysis"):
        page = site / "api" / f"{module_name}.html"
        assert page.exists(), f"missing API page for {module_name}"
        assert module_name in build_module.API_MODULES


def test_api_reference_mentions_key_symbols(site):
    engine = (site / "api" / "repro.engine.html").read_text()
    for symbol in ("DelayEngine", "ParallelEngine", "register_engine",
                   "available_engines"):
        assert symbol in engine
    library = (site / "api" / "repro.library.html").read_text()
    for symbol in ("GateDelayTable", "GateLibrary",
                   "characterize_library", "verify_table"):
        assert symbol in library


def test_guides_link_to_api(site):
    architecture = (site / "architecture.html").read_text()
    assert 'href="api/repro.engine.html"' in architecture


def test_broken_link_is_detected(build_module, tmp_path):
    """The link checker must actually catch a dangling reference."""
    builder = build_module.Builder()
    builder._links = {"index.md": ["no-such-page.md"]}
    builder._check_links(tmp_path, [])
    assert any("broken internal link" in warning
               for warning in builder.warnings)


def test_missing_docstring_is_detected(build_module):
    builder = build_module.Builder()

    class Undocumented:
        pass

    Undocumented.__doc__ = None
    builder._docstring_block(Undocumented, "repro.Ghost", True)
    assert any("missing docstring" in warning
               for warning in builder.warnings)
