"""Tests for repro.timing.circuit and repro.timing.simulator."""

import pytest

from repro.core import PAPER_TABLE_I
from repro.errors import NetlistError
from repro.timing.channels import (HybridNorChannel,
                                   InertialDelayChannel,
                                   PureDelayChannel)
from repro.timing.circuit import TimingCircuit
from repro.timing.simulator import simulate, simulate_single_channel
from repro.timing.trace import DigitalTrace
from repro.units import PS


class TestCircuitConstruction:
    def test_duplicate_inputs_rejected(self):
        with pytest.raises(NetlistError):
            TimingCircuit(["a", "a"])

    def test_multiple_drivers_rejected(self):
        circuit = TimingCircuit(["a"])
        circuit.add_gate("g1", "inv", ["a"], "y",
                         PureDelayChannel(1 * PS))
        with pytest.raises(NetlistError):
            circuit.add_gate("g2", "buf", ["a"], "y",
                             PureDelayChannel(1 * PS))

    def test_driving_an_input_rejected(self):
        circuit = TimingCircuit(["a", "b"])
        with pytest.raises(NetlistError):
            circuit.add_gate("g1", "inv", ["a"], "b",
                             PureDelayChannel(1 * PS))

    def test_duplicate_instance_name_rejected(self):
        circuit = TimingCircuit(["a"])
        circuit.add_gate("g1", "inv", ["a"], "x",
                         PureDelayChannel(1 * PS))
        with pytest.raises(NetlistError):
            circuit.add_gate("g1", "inv", ["x"], "y",
                             PureDelayChannel(1 * PS))

    def test_signals_listing(self):
        circuit = TimingCircuit(["a"])
        circuit.add_gate("g1", "inv", ["a"], "x",
                         PureDelayChannel(1 * PS))
        assert circuit.signals == ["a", "x"]

    def test_undriven_signal_detected(self):
        circuit = TimingCircuit(["a"])
        circuit.add_gate("g1", "and", ["a", "ghost"], "y",
                         PureDelayChannel(1 * PS))
        with pytest.raises(NetlistError):
            circuit.topological_order()

    def test_loop_detected(self):
        circuit = TimingCircuit(["a"])
        circuit.add_gate("g1", "and", ["a", "y2"], "y1",
                         PureDelayChannel(1 * PS))
        circuit.add_gate("g2", "buf", ["y1"], "y2",
                         PureDelayChannel(1 * PS))
        with pytest.raises(NetlistError):
            circuit.topological_order()

    def test_topological_order(self):
        circuit = TimingCircuit(["a"])
        circuit.add_gate("late", "inv", ["mid"], "out",
                         PureDelayChannel(1 * PS))
        circuit.add_gate("early", "inv", ["a"], "mid",
                         PureDelayChannel(1 * PS))
        order = [inst.name for inst in circuit.topological_order()]
        assert order == ["early", "late"]


class TestSimulation:
    def test_inverter_chain_delays_accumulate(self):
        circuit = TimingCircuit(["a"])
        circuit.add_gate("g1", "inv", ["a"], "x",
                         PureDelayChannel(5 * PS))
        circuit.add_gate("g2", "inv", ["x"], "y",
                         PureDelayChannel(7 * PS))
        traces = simulate(circuit, {
            "a": DigitalTrace.from_edges(0, [100 * PS])})
        assert traces["x"].transitions == [(105 * PS, 0)]
        assert traces["y"].transitions == [(112 * PS, 1)]
        assert traces["y"].initial == 0

    def test_missing_input_trace(self):
        circuit = TimingCircuit(["a", "b"])
        with pytest.raises(NetlistError):
            simulate(circuit, {"a": DigitalTrace.constant(0)})

    def test_extra_trace_rejected(self):
        circuit = TimingCircuit(["a"])
        with pytest.raises(NetlistError):
            simulate(circuit, {"a": DigitalTrace.constant(0),
                               "zz": DigitalTrace.constant(0)})

    def test_hand_computed_nor_inv_circuit(self):
        """NOR feeding an inverter, all pure delays."""
        circuit = TimingCircuit(["a", "b"])
        circuit.add_gate("nor", "nor", ["a", "b"], "n1",
                         PureDelayChannel(10 * PS))
        circuit.add_gate("inv", "inv", ["n1"], "out",
                         PureDelayChannel(5 * PS))
        traces = simulate(circuit, {
            "a": DigitalTrace.from_edges(0, [100 * PS]),
            "b": DigitalTrace.from_edges(0, [300 * PS, 400 * PS]),
        })
        # n1: falls 10 ps after a rises; stays low (a stays high).
        assert traces["n1"].values == (0,)
        assert traces["n1"].times == pytest.approx((110 * PS,))
        assert traces["out"].values == (1,)
        assert traces["out"].times == pytest.approx((115 * PS,))

    def test_inertial_channel_filters_in_circuit(self):
        circuit = TimingCircuit(["a"])
        circuit.add_gate("buf", "buf", ["a"], "y",
                         InertialDelayChannel(50 * PS))
        traces = simulate(circuit, {
            "a": DigitalTrace.from_edges(0, [100 * PS, 120 * PS])})
        assert len(traces["y"]) == 0

    def test_hybrid_instance_in_circuit(self):
        circuit = TimingCircuit(["a", "b"])
        channel = HybridNorChannel(PAPER_TABLE_I)
        circuit.add_hybrid_nor("nor", "a", "b", "y", channel)
        circuit.add_gate("inv", "inv", ["y"], "z",
                         PureDelayChannel(5 * PS))
        traces = simulate(circuit, {
            "a": DigitalTrace.from_edges(0, [100 * PS]),
            "b": DigitalTrace.constant(0)})
        direct = channel.simulate(
            DigitalTrace.from_edges(0, [100 * PS]),
            DigitalTrace.constant(0))
        assert traces["y"] == direct
        assert traces["z"].times[0] == pytest.approx(
            direct.times[0] + 5 * PS)

    def test_inputs_passed_through_unchanged(self):
        circuit = TimingCircuit(["a"])
        circuit.add_gate("g", "buf", ["a"], "y",
                         PureDelayChannel(1 * PS))
        trace = DigitalTrace.from_edges(0, [10 * PS])
        traces = simulate(circuit, {"a": trace})
        assert traces["a"] is trace

    def test_simulate_single_channel_helper(self):
        channel = PureDelayChannel(3 * PS)
        trace = DigitalTrace.from_edges(0, [10 * PS])
        out = simulate_single_channel(channel, trace)
        assert out.times[0] == pytest.approx(13 * PS)
