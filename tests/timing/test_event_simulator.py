"""Tests for the discrete-event engine (repro.timing.event_simulator)."""

import pytest

from repro.core import PAPER_TABLE_I
from repro.errors import SimulationError
from repro.timing.channels import (ExpChannel, HybridNorChannel,
                                   InertialDelayChannel,
                                   PureDelayChannel)
from repro.timing.circuit import TimingCircuit
from repro.timing.event_simulator import (EventDrivenSimulator,
                                          simulate_events)
from repro.timing.events import EventQueue
from repro.timing.simulator import simulate
from repro.timing.trace import DigitalTrace
from repro.timing.tracegen import WaveformConfig, generate_traces
from repro.units import PS


class TestEventQueue:
    def test_fires_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda t: fired.append(("b", t)))
        queue.schedule(1.0, lambda t: fired.append(("a", t)))
        queue.run_until(10.0)
        assert fired == [("a", 1.0), ("b", 2.0)]

    def test_simultaneous_events_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda t: fired.append("first"))
        queue.schedule(1.0, lambda t: fired.append("second"))
        queue.run_until(10.0)
        assert fired == ["first", "second"]

    def test_cancellation(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, lambda t: fired.append("x"))
        event.cancel()
        queue.run_until(10.0)
        assert fired == []

    def test_run_until_stops_at_t_stop(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda t: fired.append(1))
        queue.schedule(5.0, lambda t: fired.append(5))
        assert queue.run_until(2.0) == 1
        assert fired == [1]

    def test_scheduling_into_past_rejected(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda t: None)
        queue.run_until(10.0)
        with pytest.raises(SimulationError):
            queue.schedule(0.5, lambda t: None)

    def test_event_budget(self):
        queue = EventQueue()

        def reschedule(t):
            queue.schedule(t + 1.0, reschedule)

        queue.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            queue.run_until(1e9, max_events=50)

    def test_len_skips_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda t: None)
        queue.schedule(2.0, lambda t: None)
        event.cancel()
        assert len(queue) == 1


class TestFeedForwardEquivalence:
    """The event engine must agree with the topological engine."""

    def build_circuit(self):
        circuit = TimingCircuit(["a", "b"])
        circuit.add_gate("nor", "nor", ["a", "b"], "n1",
                         PureDelayChannel(10 * PS))
        circuit.add_gate("inv", "inv", ["n1"], "n2",
                         InertialDelayChannel(25 * PS))
        circuit.add_gate("exp", "buf", ["n2"], "out",
                         ExpChannel(delay_up_inf=30 * PS,
                                    delay_down_inf=20 * PS,
                                    pure_delay=5 * PS))
        return circuit

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_traces_match(self, seed):
        circuit = self.build_circuit()
        config = WaveformConfig(mu=120 * PS, sigma=60 * PS,
                                mode="local", transitions=30)
        traces_in = generate_traces(config, ["a", "b"], seed=seed,
                                    t_start=200 * PS)
        topo = simulate(circuit, traces_in)
        event = simulate_events(circuit, traces_in, 1.0)
        for signal in ("n1", "n2", "out"):
            assert topo[signal] == event[signal], signal

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_hybrid_channel_matches(self, seed):
        circuit = TimingCircuit(["a", "b"])
        circuit.add_hybrid_nor("g", "a", "b", "y",
                               HybridNorChannel(PAPER_TABLE_I))
        config = WaveformConfig(mu=150 * PS, sigma=70 * PS,
                                mode="local", transitions=20)
        traces_in = generate_traces(config, ["a", "b"], seed=seed,
                                    t_start=300 * PS)
        topo = simulate(circuit, traces_in)
        event = simulate_events(circuit, traces_in, 1.0)
        assert topo["y"].values == event["y"].values
        for t_topo, t_event in zip(topo["y"].times, event["y"].times):
            assert t_event == pytest.approx(t_topo, abs=1e-16)

    def test_missing_inputs(self):
        circuit = self.build_circuit()
        with pytest.raises(SimulationError):
            simulate_events(circuit, {"a": DigitalTrace.constant(0)},
                            1.0)


class TestFeedbackCircuits:
    def test_ring_oscillator(self):
        circuit = TimingCircuit([])
        circuit.add_gate("inv", "inv", ["r"], "r",
                         PureDelayChannel(50 * PS))
        out = simulate_events(circuit, {}, 1000 * PS)
        # Period = 2 * 50 ps; ~19-20 transitions in 1 ns.
        assert 18 <= len(out["r"]) <= 21
        gaps = [t2 - t1 for t1, t2 in zip(out["r"].times,
                                          out["r"].times[1:])]
        assert all(g == pytest.approx(50 * PS) for g in gaps)

    def test_sr_latch_from_hybrid_nors(self):
        """Cross-coupled hybrid NOR gates implement a working latch."""
        circuit = TimingCircuit(["s", "r"])
        circuit.add_hybrid_nor("n1", "r", "qb", "q",
                               HybridNorChannel(PAPER_TABLE_I))
        circuit.add_hybrid_nor("n2", "s", "q", "qb",
                               HybridNorChannel(PAPER_TABLE_I))
        traces = {
            "s": DigitalTrace.from_edges(0, [500 * PS, 700 * PS]),
            "r": DigitalTrace.from_edges(0, [1500 * PS, 1700 * PS]),
        }
        out = simulate_events(circuit, traces, 3000 * PS,
                              initial_values={"q": 0, "qb": 1})
        # Set pulse stores q = 1; reset pulse clears it.
        assert out["q"].values == (1, 0)
        assert out["qb"].values == (0, 1)
        assert 500 * PS < out["q"].times[0] < 700 * PS
        assert 1500 * PS < out["q"].times[1] < 1800 * PS
        # The latch *holds* after the set pulse ends.
        assert out["q"].value_at(1200 * PS) == 1

    def test_sr_latch_ignores_glitch(self):
        """A too-short set pulse does not flip the hybrid latch."""
        circuit = TimingCircuit(["s", "r"])
        circuit.add_hybrid_nor("n1", "r", "qb", "q",
                               HybridNorChannel(PAPER_TABLE_I))
        circuit.add_hybrid_nor("n2", "s", "q", "qb",
                               HybridNorChannel(PAPER_TABLE_I))
        traces = {
            "s": DigitalTrace.from_edges(0, [500 * PS, 503 * PS]),
            "r": DigitalTrace.constant(0),
        }
        out = simulate_events(circuit, traces, 2000 * PS,
                              initial_values={"q": 0, "qb": 1})
        assert len(out["q"]) == 0
        assert len(out["qb"]) == 0

    def test_relaxation_initializes_consistent_logic(self):
        """Feed-forward initial values need no explicit overrides."""
        circuit = TimingCircuit(["a"])
        circuit.add_gate("i1", "inv", ["a"], "x",
                         PureDelayChannel(5 * PS))
        circuit.add_gate("i2", "inv", ["x"], "y",
                         PureDelayChannel(5 * PS))
        simulator = EventDrivenSimulator(circuit)
        out = simulator.run({"a": DigitalTrace.constant(1)}, 100 * PS)
        assert out["x"].initial == 0
        assert out["y"].initial == 1
        assert len(out["y"]) == 0
