"""Tests for repro.timing.power — switching activity metrics."""

import pytest

from repro.errors import ParameterError, TraceError
from repro.timing.power import (PowerReport, dynamic_energy,
                                glitch_count, power_report,
                                transition_count,
                                transition_count_error)
from repro.timing.trace import DigitalTrace
from repro.units import FF, PS


@pytest.fixture()
def busy_trace():
    return DigitalTrace.from_edges(
        0, [100 * PS, 110 * PS, 300 * PS, 500 * PS, 505 * PS,
            800 * PS])


class TestTransitionCount:
    def test_full_trace(self, busy_trace):
        assert transition_count(busy_trace) == 6

    def test_window(self, busy_trace):
        assert transition_count(busy_trace, 200 * PS, 600 * PS) == 3

    def test_window_half_open(self, busy_trace):
        assert transition_count(busy_trace, 100 * PS, 110 * PS) == 1

    def test_empty_trace(self):
        assert transition_count(DigitalTrace.constant(1)) == 0

    def test_bad_window(self, busy_trace):
        with pytest.raises(TraceError):
            transition_count(busy_trace, 1.0, 0.0)


class TestGlitchCount:
    def test_counts_narrow_pulses(self, busy_trace):
        # 10 ps and 5 ps pulses are narrower than 20 ps.
        assert glitch_count(busy_trace, 20 * PS) == 2

    def test_threshold_excludes_wide(self, busy_trace):
        assert glitch_count(busy_trace, 7 * PS) == 1

    def test_no_glitches(self):
        trace = DigitalTrace.from_edges(0, [100 * PS, 400 * PS])
        assert glitch_count(trace, 50 * PS) == 0

    def test_bad_width(self, busy_trace):
        with pytest.raises(ParameterError):
            glitch_count(busy_trace, 0.0)


class TestDynamicEnergy:
    def test_half_cv2_per_transition(self):
        trace = DigitalTrace.from_edges(0, [1e-10, 2e-10])
        energy = dynamic_energy(trace, capacitance=1 * FF, vdd=0.8)
        assert energy == pytest.approx(2 * 0.5 * 1e-15 * 0.64)

    def test_windowed(self, busy_trace):
        full = dynamic_energy(busy_trace, 1 * FF, 0.8)
        half = dynamic_energy(busy_trace, 1 * FF, 0.8,
                              t_start=0.0, t_end=400 * PS)
        assert half == pytest.approx(full / 2.0)

    def test_validation(self, busy_trace):
        with pytest.raises(ParameterError):
            dynamic_energy(busy_trace, -1 * FF, 0.8)
        with pytest.raises(ParameterError):
            dynamic_energy(busy_trace, 1 * FF, 0.0)


class TestPowerReport:
    def test_report_contents(self, busy_trace):
        report = power_report({"o": busy_trace}, {"o": 1.5 * FF},
                              vdd=0.8, t_start=0.0, t_end=1000 * PS,
                              glitch_width=20 * PS)
        assert report.counts["o"] == 6
        assert report.glitches["o"] == 2
        assert report.total_transitions == 6
        assert report.total_energy == pytest.approx(
            6 * 0.5 * 1.5e-15 * 0.64)

    def test_average_power(self, busy_trace):
        report = power_report({"o": busy_trace}, {"o": 1 * FF},
                              vdd=0.8, t_start=0.0, t_end=1000 * PS)
        assert report.average_power == pytest.approx(
            report.total_energy / (1000 * PS))

    def test_zero_window_rejected(self, busy_trace):
        report = PowerReport(counts={}, glitches={}, energies={},
                             window=(1.0, 1.0))
        with pytest.raises(ParameterError):
            _ = report.average_power

    def test_missing_trace(self, busy_trace):
        with pytest.raises(TraceError):
            power_report({"o": busy_trace}, {"zz": 1 * FF}, vdd=0.8,
                         t_start=0.0, t_end=1.0)


class TestTransitionCountError:
    def test_inertial_swallows_glitches(self, busy_trace):
        """The power-relevant failure mode of inertial delay."""
        from repro.timing.channels import InertialDelayChannel
        filtered = InertialDelayChannel(30 * PS).apply(busy_trace)
        error = transition_count_error(filtered, busy_trace, 0.0,
                                       1200 * PS)
        assert error == -4  # both narrow pulses vanished

    def test_exact_model_has_zero_error(self, busy_trace):
        from repro.timing.channels import PureDelayChannel
        shifted = PureDelayChannel(10 * PS).apply(busy_trace)
        assert transition_count_error(shifted, busy_trace, 0.0,
                                      1200 * PS) == 0
