"""TableDelayChannel vs the closed-form hybrid model and ODE channel.

For well-separated events the table channel must reproduce the
model's MIS delays to the table interpolation error; for glitches it
must keep the qualitative cancellation behaviour (short pulses
vanish).
"""

import math

import numpy as np
import pytest

from repro.core.duality import HybridNandModel
from repro.core.hybrid_model import HybridNorModel
from repro.core.parameters import PAPER_TABLE_I
from repro.errors import TraceError
from repro.library import CharacterizationJob, characterize_gate
from repro.timing import DigitalTrace, HybridNorChannel, TableDelayChannel
from repro.units import PS

#: Interpolation slack for delay comparisons, seconds.
TOL = 0.1 * PS

T0 = 500.0 * PS


@pytest.fixture(scope="module")
def nor_table():
    return characterize_gate(
        CharacterizationJob("nor2_paper", PAPER_TABLE_I))


@pytest.fixture(scope="module")
def nand_table():
    return characterize_gate(
        CharacterizationJob("nand2_paper", PAPER_TABLE_I,
                            gate="nand2"))


@pytest.fixture(scope="module")
def nor_channel(nor_table):
    return TableDelayChannel(nor_table)


@pytest.fixture(scope="module")
def model():
    return HybridNorModel(PAPER_TABLE_I)


class TestNorFalling:
    """Both inputs rise; output falls referenced to the earlier."""

    @pytest.mark.parametrize("delta_ps", [-40.0, -12.0, 0.0, 7.0, 35.0])
    def test_mis_delay_matches_model(self, nor_channel, model,
                                     delta_ps):
        delta = delta_ps * PS
        t_a = T0 + max(0.0, -delta)
        t_b = t_a + delta
        out = nor_channel.simulate(DigitalTrace.from_edges(0, [t_a]),
                                   DigitalTrace.from_edges(0, [t_b]))
        assert out.initial == 1
        assert len(out.transitions) == 1
        t_cross, value = out.transitions[0]
        assert value == 0
        expected = min(t_a, t_b) + model.delay_falling(delta)
        assert t_cross == pytest.approx(expected, abs=TOL)

    def test_sis_single_input(self, nor_channel, model):
        """Only input A rises: the SIS edge δ↓(+inf)."""
        out = nor_channel.simulate(DigitalTrace.from_edges(0, [T0]),
                                   DigitalTrace.constant(0))
        t_cross, value = out.transitions[0]
        assert value == 0
        assert t_cross == pytest.approx(
            T0 + model.delay_falling(math.inf), abs=TOL)

    def test_sis_other_input(self, nor_channel, model):
        """Only input B rises: the SIS edge δ↓(−inf)."""
        out = nor_channel.simulate(DigitalTrace.constant(0),
                                   DigitalTrace.from_edges(0, [T0]))
        t_cross, _ = out.transitions[0]
        assert t_cross == pytest.approx(
            T0 + model.delay_falling(-math.inf), abs=TOL)

    def test_mis_reschedule_speeds_up_pending_fall(self, nor_channel,
                                                   model):
        """The second rise must pull the crossing to the MIS value."""
        delta = 5.0 * PS
        sis = model.delay_falling(math.inf)
        mis = model.delay_falling(delta)
        assert mis < sis  # NOR falling MIS is a speed-up
        out = nor_channel.simulate(
            DigitalTrace.from_edges(0, [T0]),
            DigitalTrace.from_edges(0, [T0 + delta]))
        t_cross, _ = out.transitions[0]
        assert t_cross == pytest.approx(T0 + mis, abs=TOL)


class TestNorRising:
    """Both inputs fall; output rises referenced to the later."""

    @pytest.mark.parametrize("delta_ps", [-60.0, -15.0, 0.0, 15.0,
                                          60.0])
    def test_mis_delay_matches_model(self, nor_channel, model,
                                     delta_ps):
        delta = delta_ps * PS
        t_a = T0 + max(0.0, -delta)
        t_b = t_a + delta
        out = nor_channel.simulate(
            DigitalTrace.from_edges(1, [t_a]),
            DigitalTrace.from_edges(1, [t_b]))
        assert out.initial == 0
        t_cross, value = out.transitions[-1]
        assert value == 1
        expected = max(t_a, t_b) + model.delay_rising(delta,
                                                      vn_init=0.0)
        assert t_cross == pytest.approx(expected, abs=TOL)

    def test_sis_release(self, nor_channel, model):
        """A held high forever releases: δ↑ at the −inf edge."""
        out = nor_channel.simulate(DigitalTrace.from_edges(1, [T0]),
                                   DigitalTrace.constant(0))
        t_cross, value = out.transitions[-1]
        assert value == 1
        assert t_cross == pytest.approx(
            T0 + model.delay_rising(-math.inf), abs=TOL)


class TestPulseBehaviour:
    def test_full_pulse_matches_hybrid_channel(self, nor_channel):
        """A NOR of two generous pulses: same transitions as the ODE
        channel to within the table tolerance."""
        ode = HybridNorChannel(PAPER_TABLE_I)
        trace_a = DigitalTrace.from_edges(0, [100 * PS, 400 * PS])
        trace_b = DigitalTrace.from_edges(0, [130 * PS, 450 * PS])
        expected = ode.simulate(trace_a, trace_b)
        actual = nor_channel.simulate(trace_a, trace_b)
        assert actual.initial == expected.initial
        assert len(actual.transitions) == len(expected.transitions)
        for (t_act, v_act), (t_exp, v_exp) in zip(
                actual.transitions, expected.transitions):
            assert v_act == v_exp
            # The ODE channel carries continuous-state memory between
            # transitions that the table cannot; allow a few ps.
            assert t_act == pytest.approx(t_exp, abs=5.0 * PS)

    def test_short_pulse_is_filtered(self, nor_channel, model):
        """An input pulse shorter than the gate delay vanishes."""
        width = 5.0 * PS
        assert width < model.delay_falling(math.inf)
        out = nor_channel.simulate(
            DigitalTrace.from_edges(0, [T0, T0 + width]),
            DigitalTrace.constant(0))
        assert out.transitions == []

    def test_t_max_truncates(self, nor_channel):
        out = nor_channel.simulate(DigitalTrace.from_edges(0, [T0]),
                                   DigitalTrace.constant(0),
                                   t_max=T0)
        assert out.transitions == []

    def test_negative_times_rejected(self, nor_channel):
        with pytest.raises(TraceError):
            nor_channel.simulate(
                DigitalTrace.from_edges(0, [-1.0 * PS]),
                DigitalTrace.constant(0))


class TestNandChannel:
    def test_series_falling_and_parallel_rising(self, nand_table):
        """NAND conventions: falling referenced to the later rise,
        rising to the earlier fall."""
        channel = TableDelayChannel(nand_table)
        model = HybridNandModel(PAPER_TABLE_I)
        delta = 10.0 * PS
        t_a = T0
        t_b = T0 + delta
        out = channel.simulate(
            DigitalTrace.from_edges(0, [t_a]),
            DigitalTrace.from_edges(0, [t_b]))
        assert out.initial == 1
        t_cross, value = out.transitions[0]
        assert value == 0
        assert t_cross == pytest.approx(
            max(t_a, t_b) + model.delay_falling(delta), abs=TOL)

        # Both fall back: rising output from the earlier fall.
        t_a2, t_b2 = T0 + 600 * PS, T0 + 590 * PS
        out = channel.simulate(
            DigitalTrace.from_edges(0, [t_a, t_a2]),
            DigitalTrace.from_edges(0, [t_b, t_b2]))
        t_rise, value = out.transitions[-1]
        assert value == 1
        delta_fall = t_b2 - t_a2
        assert t_rise == pytest.approx(
            min(t_a2, t_b2) + model.delay_rising(delta_fall), abs=TOL)

    def test_worst_case_state_defaults_to_vdd(self, nand_table):
        channel = TableDelayChannel(nand_table)
        assert channel.state == PAPER_TABLE_I.vdd

    def test_initial_output(self, nand_table):
        channel = TableDelayChannel(nand_table)
        assert channel.initial_output(1, 1) == 0
        assert channel.initial_output(0, 1) == 1


class TestRandomTraceSanity:
    def test_alternation_and_bounds_on_random_traces(self, nor_channel):
        from repro.timing.tracegen import WaveformConfig, generate_traces
        config = WaveformConfig(mu=120 * PS, sigma=40 * PS,
                                mode="local", transitions=40)
        traces = generate_traces(config, ["a", "b"], seed=7,
                                 t_start=300 * PS)
        out = nor_channel.simulate(traces["a"], traces["b"])
        values = [v for _, v in out.transitions]
        times = [t for t, _ in out.transitions]
        assert times == sorted(times)
        for first, second in zip(values, values[1:]):
            assert first != second
