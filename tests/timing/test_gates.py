"""Tests for repro.timing.gates."""

import pytest

from repro.errors import TraceError
from repro.timing.gates import GATE_FUNCTIONS, gate_function, zero_time_gate
from repro.timing.trace import DigitalTrace
from repro.units import PS


class TestGateFunctions:
    def test_nor_truth_table(self):
        nor = gate_function("nor")
        assert nor(0, 0) == 1
        assert nor(0, 1) == 0
        assert nor(1, 0) == 0
        assert nor(1, 1) == 0

    def test_nand(self):
        nand = gate_function("nand")
        assert nand(1, 1) == 0
        assert nand(0, 1) == 1

    def test_and_or_xor(self):
        assert gate_function("and")(1, 1, 1) == 1
        assert gate_function("and")(1, 0, 1) == 0
        assert gate_function("or")(0, 0, 1) == 1
        assert gate_function("xor")(1, 1) == 0
        assert gate_function("xor")(1, 0, 1) == 0
        assert gate_function("xor")(1, 0, 0) == 1

    def test_inverter_aliases(self):
        assert gate_function("not")(1) == 0
        assert gate_function("inv")(0) == 1
        assert gate_function("buf")(1) == 1

    def test_unknown_gate(self):
        with pytest.raises(TraceError):
            gate_function("mux")

    def test_registry_complete(self):
        assert {"nor", "nand", "and", "or", "xor", "not", "inv",
                "buf"} <= set(GATE_FUNCTIONS)


class TestZeroTimeGate:
    def test_inverter(self):
        trace = DigitalTrace.from_edges(0, [10 * PS, 20 * PS])
        out = zero_time_gate(gate_function("inv"), [trace])
        assert out.initial == 1
        assert out.transitions == [(10 * PS, 0), (20 * PS, 1)]

    def test_nor_of_two_traces(self):
        a = DigitalTrace.from_edges(0, [10 * PS, 40 * PS])
        b = DigitalTrace.from_edges(0, [20 * PS, 30 * PS])
        out = zero_time_gate(gate_function("nor"), [a, b])
        assert out.initial == 1
        # Output: 1 until a rises (10), 0 until a falls at 40 with b
        # already low again.
        assert out.transitions == [(10 * PS, 0), (40 * PS, 1)]

    def test_no_spurious_transitions(self):
        a = DigitalTrace.from_edges(0, [10 * PS])
        b = DigitalTrace.from_edges(0, [20 * PS])
        out = zero_time_gate(gate_function("or"), [a, b])
        # OR already 1 after a rises; b rising changes nothing.
        assert out.transitions == [(10 * PS, 1)]

    def test_simultaneous_transitions_atomic(self):
        """Inputs swapping 01 -> 10 at the same instant: no glitch."""
        a = DigitalTrace.from_edges(0, [10 * PS])
        b = DigitalTrace.from_edges(1, [10 * PS])
        out = zero_time_gate(gate_function("nor"), [a, b])
        assert out.initial == 0
        assert out.transitions == []

    def test_empty_inputs_rejected(self):
        with pytest.raises(TraceError):
            zero_time_gate(gate_function("nor"), [])

    def test_constant_inputs(self):
        a = DigitalTrace.constant(0)
        b = DigitalTrace.constant(0)
        out = zero_time_gate(gate_function("nor"), [a, b])
        assert out.initial == 1
        assert len(out) == 0

    def test_three_input_gate(self):
        a = DigitalTrace.from_edges(0, [10 * PS])
        b = DigitalTrace.from_edges(0, [20 * PS])
        c = DigitalTrace.from_edges(0, [30 * PS])
        out = zero_time_gate(gate_function("and"), [a, b, c])
        assert out.transitions == [(30 * PS, 1)]
