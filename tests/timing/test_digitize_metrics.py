"""Tests for repro.timing.digitize and repro.timing.metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.timing.digitize import digitize
from repro.timing.metrics import (AccuracyReport, deviation_area,
                                  normalized_deviation)
from repro.timing.trace import DigitalTrace
from repro.units import PS

edge_times = st.lists(
    st.floats(min_value=1e-12, max_value=9e-10), min_size=0,
    max_size=10).map(lambda xs: sorted(set(xs)))


class TestDigitize:
    def test_simple_ramp(self):
        times = np.linspace(0.0, 1.0, 11)
        volts = times.copy()  # 0 -> 1 ramp
        trace = digitize(times, volts, threshold=0.5)
        assert trace.initial == 0
        assert len(trace) == 1
        assert trace.times[0] == pytest.approx(0.5)
        assert trace.values[0] == 1

    def test_interpolated_crossing(self):
        trace = digitize([0.0, 1.0], [0.0, 1.0], threshold=0.25)
        assert trace.times[0] == pytest.approx(0.25)

    def test_initial_value_above_threshold(self):
        trace = digitize([0.0, 1.0], [1.0, 0.0], threshold=0.5)
        assert trace.initial == 1
        assert trace.values[0] == 0

    def test_pulse(self):
        times = np.array([0.0, 1.0, 2.0])
        volts = np.array([0.0, 1.0, 0.0])
        trace = digitize(times, volts, threshold=0.5)
        assert trace.values == (1, 0)

    def test_hysteresis_suppresses_chatter(self):
        times = np.linspace(0.0, 1.0, 9)
        # Noise oscillating +-0.06 V around the 0.5 V threshold.
        volts = 0.5 + 0.06 * np.array([-1, 1, -1, 1, -1, 1, -1, 1, -1])
        noisy = digitize(times, volts, threshold=0.5)
        clean = digitize(times, volts, threshold=0.5, hysteresis=0.3)
        assert len(noisy) >= 4
        assert len(clean) == 0

    def test_hysteresis_keeps_real_transitions(self):
        times = np.linspace(0.0, 1.0, 11)
        volts = times.copy()
        trace = digitize(times, volts, threshold=0.5, hysteresis=0.2)
        assert len(trace) == 1
        assert trace.times[0] == pytest.approx(0.6)  # upper band edge

    def test_shape_validation(self):
        with pytest.raises(TraceError):
            digitize([0.0, 1.0], [0.0], 0.5)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            digitize([], [], 0.5)

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(TraceError):
            digitize([0.0, 1.0], [0.0, 1.0], 0.5, hysteresis=-0.1)


class TestDeviationArea:
    def test_identical_traces(self):
        trace = DigitalTrace.from_edges(0, [10 * PS, 20 * PS])
        assert deviation_area(trace, trace, 0.0, 100 * PS) == 0.0

    def test_hand_computed(self):
        a = DigitalTrace.from_edges(0, [10 * PS])
        b = DigitalTrace.from_edges(0, [15 * PS])
        # Disagreement exactly on [10, 15] ps.
        assert deviation_area(a, b, 0.0, 100 * PS) == pytest.approx(
            5 * PS)

    def test_constant_difference(self):
        a = DigitalTrace.constant(0)
        b = DigitalTrace.constant(1)
        assert deviation_area(a, b, 0.0, 50 * PS) == pytest.approx(
            50 * PS)

    def test_window_clipping(self):
        a = DigitalTrace.from_edges(0, [10 * PS])
        b = DigitalTrace.constant(0)
        assert deviation_area(a, b, 0.0, 30 * PS) == pytest.approx(
            20 * PS)
        assert deviation_area(a, b, 20 * PS, 30 * PS) == pytest.approx(
            10 * PS)

    def test_invalid_window(self):
        a = DigitalTrace.constant(0)
        with pytest.raises(TraceError):
            deviation_area(a, a, 10.0, 0.0)

    @given(edge_times, edge_times)
    def test_symmetry(self, times_a, times_b):
        a = DigitalTrace.from_edges(0, times_a)
        b = DigitalTrace.from_edges(0, times_b)
        t_end = 1e-9
        assert deviation_area(a, b, 0.0, t_end) == pytest.approx(
            deviation_area(b, a, 0.0, t_end))

    @given(edge_times, edge_times)
    def test_bounded_by_window(self, times_a, times_b):
        a = DigitalTrace.from_edges(0, times_a)
        b = DigitalTrace.from_edges(1, times_b)
        t_end = 1e-9
        area = deviation_area(a, b, 0.0, t_end)
        assert 0.0 <= area <= t_end

    @given(edge_times, edge_times, edge_times)
    def test_triangle_inequality(self, ta, tb, tc):
        a = DigitalTrace.from_edges(0, ta)
        b = DigitalTrace.from_edges(0, tb)
        c = DigitalTrace.from_edges(0, tc)
        t_end = 1e-9
        ab = deviation_area(a, b, 0.0, t_end)
        bc = deviation_area(b, c, 0.0, t_end)
        ac = deviation_area(a, c, 0.0, t_end)
        assert ac <= ab + bc + 1e-24

    def test_identity_of_indiscernibles(self):
        a = DigitalTrace.from_edges(0, [10 * PS, 20 * PS])
        b = DigitalTrace.from_edges(0, [10 * PS, 20 * PS])
        assert deviation_area(a, b, 0.0, 100 * PS) == 0.0


class TestNormalization:
    def test_normalized_deviation(self):
        ref = DigitalTrace.from_edges(0, [10 * PS])
        model = DigitalTrace.from_edges(0, [12 * PS])
        baseline = DigitalTrace.from_edges(0, [14 * PS])
        value = normalized_deviation(model, ref, baseline, 0.0,
                                     100 * PS)
        assert value == pytest.approx(0.5)

    def test_zero_baseline_raises(self):
        ref = DigitalTrace.from_edges(0, [10 * PS])
        with pytest.raises(TraceError):
            normalized_deviation(ref, ref, ref, 0.0, 100 * PS)

    def test_accuracy_report(self):
        report = AccuracyReport(areas={"inertial": 4.0, "hm": 1.0},
                                t_start=0.0, t_end=1.0)
        assert report.normalized("inertial") == {"inertial": 1.0,
                                                 "hm": 0.25}
        assert report.best() == "hm"

    def test_accuracy_report_zero_baseline(self):
        report = AccuracyReport(areas={"inertial": 0.0}, t_start=0.0,
                                t_end=1.0)
        with pytest.raises(TraceError):
            report.normalized("inertial")
