"""Tests for repro.timing.tracegen — Section VI workload generation."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.timing.tracegen import (PAPER_CONFIGS, WaveformConfig,
                                   generate_traces)
from repro.units import PS


class TestWaveformConfig:
    def test_paper_configs(self):
        labels = [config.label for config in PAPER_CONFIGS]
        assert labels == ["100/50 - LOCAL", "200/100 - LOCAL",
                          "2000/1000 - GLOBAL", "5000/5 - GLOBAL"]

    def test_paper_transition_counts(self):
        counts = [config.transitions for config in PAPER_CONFIGS]
        assert counts == [500, 500, 500, 250]

    def test_bad_mode(self):
        with pytest.raises(ParameterError):
            WaveformConfig(mu=1e-10, sigma=1e-11, mode="hybrid")

    def test_bad_mu(self):
        with pytest.raises(ParameterError):
            WaveformConfig(mu=0.0, sigma=1e-11, mode="local")

    def test_bad_transitions(self):
        with pytest.raises(ParameterError):
            WaveformConfig(mu=1e-10, sigma=0.0, mode="local",
                           transitions=0)


class TestGeneration:
    def config(self, mode="local", transitions=100):
        return WaveformConfig(mu=100 * PS, sigma=50 * PS, mode=mode,
                              transitions=transitions)

    def test_total_transition_count_local(self):
        traces = generate_traces(self.config("local", 101), ["a", "b"],
                                 seed=0)
        assert len(traces["a"]) + len(traces["b"]) == 101

    def test_total_transition_count_global(self):
        traces = generate_traces(self.config("global", 100),
                                 ["a", "b"], seed=0)
        assert len(traces["a"]) + len(traces["b"]) == 100

    def test_deterministic_with_seed(self):
        one = generate_traces(self.config(), ["a", "b"], seed=7)
        two = generate_traces(self.config(), ["a", "b"], seed=7)
        assert one["a"] == two["a"]
        assert one["b"] == two["b"]

    def test_different_seeds_differ(self):
        one = generate_traces(self.config(), ["a"], seed=1)
        two = generate_traces(self.config(), ["a"], seed=2)
        assert one["a"] != two["a"]

    def test_t_start_respected(self):
        traces = generate_traces(self.config(), ["a"], seed=0,
                                 t_start=1000 * PS)
        assert traces["a"].times[0] >= 1000 * PS

    def test_min_gap_enforced(self):
        config = WaveformConfig(mu=5 * PS, sigma=100 * PS,
                                mode="local", transitions=200)
        traces = generate_traces(config, ["a"], seed=0,
                                 min_gap=2 * PS)
        gaps = np.diff(traces["a"].times)
        assert np.all(gaps >= 2 * PS - 1e-18)

    def test_initial_values(self):
        traces = generate_traces(self.config(), ["a", "b"], seed=0,
                                 initial_values={"a": 1})
        assert traces["a"].initial == 1
        assert traces["b"].initial == 0

    def test_local_mean_interval(self):
        """LOCAL inter-transition times average to roughly mu."""
        config = WaveformConfig(mu=100 * PS, sigma=10 * PS,
                                mode="local", transitions=2000)
        traces = generate_traces(config, ["a"], seed=0)
        gaps = np.diff(traces["a"].times)
        assert np.mean(gaps) == pytest.approx(100 * PS, rel=0.05)

    def test_global_spreads_over_inputs(self):
        traces = generate_traces(self.config("global", 400),
                                 ["a", "b"], seed=0)
        assert len(traces["a"]) > 100
        assert len(traces["b"]) > 100

    def test_global_interleaves_more_sparsely_than_local(self):
        """GLOBAL: consecutive cross-input separations follow the
        global stream, so near-coincident transitions are rare."""
        local = generate_traces(self.config("local", 400), ["a", "b"],
                                seed=0)
        global_ = generate_traces(self.config("global", 400),
                                  ["a", "b"], seed=0)

        def min_cross_separation(traces):
            a = np.asarray(traces["a"].times)
            b = np.asarray(traces["b"].times)
            return min(float(np.min(np.abs(a[:, None] - b[None, :])))
                       for _ in [0])

        assert min_cross_separation(global_) > \
            min_cross_separation(local) * 0.5

    def test_empty_names_rejected(self):
        with pytest.raises(ParameterError):
            generate_traces(self.config(), [], seed=0)

    def test_generator_object_accepted(self):
        rng = np.random.default_rng(3)
        traces = generate_traces(self.config(), ["a"], seed=rng)
        assert len(traces["a"]) == 100
