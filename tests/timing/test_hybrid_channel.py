"""Tests for the two-input hybrid NOR channel."""

import pytest

from repro.core import HybridNorModel, PAPER_TABLE_I
from repro.errors import TraceError
from repro.timing.channels import HybridNorChannel
from repro.timing.trace import DigitalTrace
from repro.units import PS


@pytest.fixture(scope="module")
def channel():
    return HybridNorChannel(PAPER_TABLE_I)


@pytest.fixture(scope="module")
def model():
    return HybridNorModel(PAPER_TABLE_I)


class TestInitialOutput:
    def test_truth_table(self, channel):
        assert channel.initial_output(0, 0) == 1
        assert channel.initial_output(0, 1) == 0
        assert channel.initial_output(1, 0) == 0
        assert channel.initial_output(1, 1) == 0


class TestSingleTransitions:
    def test_falling_sis_delay(self, channel, model):
        a = DigitalTrace.from_edges(0, [100 * PS])
        b = DigitalTrace.constant(0)
        out = channel.simulate(a, b)
        assert out.initial == 1
        assert out.values == (0,)
        assert out.times[0] - 100 * PS == pytest.approx(
            model.delay_falling_plus_inf(), rel=1e-9)

    def test_falling_sis_delay_b_input(self, channel, model):
        a = DigitalTrace.constant(0)
        b = DigitalTrace.from_edges(0, [100 * PS])
        out = channel.simulate(a, b)
        assert out.times[0] - 100 * PS == pytest.approx(
            model.delay_falling_minus_inf(), rel=1e-9)

    def test_mis_falling_delay(self, channel, model):
        delta = 15 * PS
        a = DigitalTrace.from_edges(0, [200 * PS])
        b = DigitalTrace.from_edges(0, [200 * PS + delta])
        out = channel.simulate(a, b)
        assert out.times[0] - 200 * PS == pytest.approx(
            model.delay_falling(delta), rel=1e-9)

    def test_mis_rising_delay(self, channel, model):
        """Inputs fall with separation Δ after being high."""
        delta = 10 * PS
        t_a = 2000 * PS
        a = DigitalTrace.from_edges(0, [100 * PS, t_a])
        b = DigitalTrace.from_edges(0, [100 * PS + 1 * PS,
                                        t_a + delta])
        out = channel.simulate(a, b)
        assert out.values[-1] == 1
        rising = out.times[-1] - (t_a + delta)
        # VN is tracked through the whole history; after 1.9 ns in
        # (1,1) preceded by a short MIS event, VN has partially drained
        # via the (1,0)/(0,1) dwell — compare against the direct model
        # with that exact VN.
        assert rising == pytest.approx(model.delay_rising(delta,
                                                          vn_init=out_vn(
                                                              channel, a,
                                                              b, t_a)),
                                       rel=1e-6)

    def test_output_stays_low_with_stuck_high_input(self, channel):
        a = DigitalTrace.from_edges(0, [100 * PS, 300 * PS])
        b = DigitalTrace.constant(1)
        out = channel.simulate(a, b)
        assert out.initial == 0
        assert len(out) == 0


def out_vn(channel, a, b, t_query):
    """Helper: VN right when the first falling input arrives."""
    from repro.core.modes import Mode
    from repro.core.trajectory import PiecewiseTrajectory
    params = channel.params
    # Rebuild the mode schedule exactly as the channel does.
    events = sorted([(t, "a", v) for t, v in a.transitions]
                    + [(t, "b", v) for t, v in b.transitions])
    state_a, state_b = a.initial, b.initial
    switches = []
    for t, which, value in events:
        if which == "a":
            state_a = value
        else:
            state_b = value
        switches.append((t + params.delta_min,
                         Mode.from_inputs(state_a, state_b)))
    trajectory = PiecewiseTrajectory(
        params, Mode.from_inputs(a.initial, b.initial),
        (params.vdd, params.vdd), switches)
    return trajectory.vn_at(t_query + params.delta_min)


class TestGlitchBehaviour:
    def test_short_pulse_produces_nothing(self, channel):
        a = DigitalTrace.from_edges(0, [100 * PS, 103 * PS])
        b = DigitalTrace.constant(0)
        assert len(channel.simulate(a, b)) == 0

    def test_long_pulse_produces_pulse(self, channel):
        a = DigitalTrace.from_edges(0, [100 * PS, 600 * PS])
        b = DigitalTrace.constant(0)
        out = channel.simulate(a, b)
        assert out.values == (0, 1)

    def test_output_width_shrinks_with_input_width(self, channel):
        widths = []
        for w in (300, 60, 40, 30):
            a = DigitalTrace.from_edges(0, [100 * PS,
                                            (100 + w) * PS])
            out = channel.simulate(a, DigitalTrace.constant(0))
            widths.append(out.times[1] - out.times[0]
                          if len(out) == 2 else 0.0)
        assert widths == sorted(widths, reverse=True)

    def test_overlapping_pulses_on_both_inputs(self, channel):
        """Two staggered pulses keep the output low longer."""
        a = DigitalTrace.from_edges(0, [100 * PS, 300 * PS])
        b = DigitalTrace.from_edges(0, [250 * PS, 500 * PS])
        out = channel.simulate(a, b)
        assert out.values == (0, 1)
        # Recovery only after B falls at 500 ps.
        assert out.times[1] > 500 * PS


class TestValidation:
    def test_negative_times_rejected(self, channel):
        a = DigitalTrace.from_edges(0, [-5 * PS])
        with pytest.raises(TraceError):
            channel.simulate(a, DigitalTrace.constant(0))

    def test_t_max_truncates(self, channel):
        a = DigitalTrace.from_edges(0, [100 * PS])
        out = channel.simulate(a, DigitalTrace.constant(0),
                               t_max=50 * PS)
        assert len(out) == 0

    def test_without_delta_min_is_faster(self):
        fast = HybridNorChannel(PAPER_TABLE_I.without_delta_min())
        slow = HybridNorChannel(PAPER_TABLE_I)
        a = DigitalTrace.from_edges(0, [100 * PS])
        b = DigitalTrace.constant(0)
        t_fast = fast.simulate(a, b).times[0]
        t_slow = slow.simulate(a, b).times[0]
        assert t_slow - t_fast == pytest.approx(18 * PS, rel=1e-9)
