"""n-input MIS channels and circuit instances."""

import numpy as np
import pytest

from repro.core import PAPER_TABLE_I
from repro.core.multi_input import (GeneralizedNorParameters,
                                    generalized_model,
                                    paper_generalized)
from repro.errors import NetlistError, SimulationError, TraceError
from repro.library import CharacterizationJob, characterize_gate
from repro.timing.channels import (GeneralizedNorChannel,
                                   HybridNorChannel,
                                   TableDelayChannel)
from repro.timing.circuit import (HybridInstance, MultiInputInstance,
                                  TimingCircuit)
from repro.timing.event_simulator import simulate_events
from repro.timing.simulator import simulate
from repro.timing.trace import DigitalTrace
from repro.units import PS


@pytest.fixture(scope="module")
def p3():
    return paper_generalized(3)


@pytest.fixture(scope="module")
def channel3(p3):
    return GeneralizedNorChannel(p3)


@pytest.fixture(scope="module")
def nor3_table(p3):
    axis = tuple(np.linspace(-80 * PS, 80 * PS, 41))
    return characterize_gate(
        CharacterizationJob("nor3_t", p3, "nor3", deltas=axis))


class TestGeneralizedNorChannel:
    def test_two_input_matches_hybrid_channel(self):
        narrow = GeneralizedNorParameters.from_two_input(
            PAPER_TABLE_I)
        general = GeneralizedNorChannel(narrow)
        hybrid = HybridNorChannel(PAPER_TABLE_I)
        a = DigitalTrace(0, [(100 * PS, 1), (700 * PS, 0)])
        b = DigitalTrace(0, [(112 * PS, 1), (800 * PS, 0)])
        out_general = general.simulate(a, b)
        out_hybrid = hybrid.simulate(a, b)
        assert out_general.initial == out_hybrid.initial
        assert len(out_general.transitions) == \
            len(out_hybrid.transitions)
        for (tg, vg), (th, vh) in zip(out_general.transitions,
                                      out_hybrid.transitions):
            assert vg == vh
            assert tg == pytest.approx(th, abs=1e-5 * PS)

    def test_matches_model_crossings(self, channel3, p3):
        events = [[(100 * PS, 1)], [(109 * PS, 1)], [(125 * PS, 1)]]
        traces = [DigitalTrace(0, e) for e in events]
        out = channel3.simulate(*traces)
        exact = generalized_model(p3).output_crossings_for_inputs(
            events, initial_inputs=[0, 0, 0])
        assert out.transitions == exact

    def test_initial_output(self, channel3):
        assert channel3.initial_output(0, 0, 0) == 1
        assert channel3.initial_output(0, 1, 0) == 0
        with pytest.raises(TraceError):
            channel3.initial_output(0, 0)

    def test_trace_count_checked(self, channel3):
        with pytest.raises(TraceError):
            channel3.simulate(DigitalTrace(0, []),
                              DigitalTrace(0, []))

    def test_negative_events_rejected(self, channel3):
        with pytest.raises(TraceError):
            channel3.simulate(DigitalTrace(0, [(-1 * PS, 1)]),
                              DigitalTrace(0, []),
                              DigitalTrace(0, []))

    def test_inputs_property(self, channel3):
        assert channel3.inputs == 3


class TestNInputTableChannel:
    def test_tracks_exact_channel(self, channel3, nor3_table):
        table_channel = TableDelayChannel(nor3_table)
        assert table_channel.inputs == 3
        traces = (DigitalTrace(0, [(100 * PS, 1)]),
                  DigitalTrace(0, [(108 * PS, 1)]),
                  DigitalTrace(0, [(115 * PS, 1)]))
        exact = channel3.simulate(*traces)
        replay = table_channel.simulate(*traces)
        assert [v for _, v in replay.transitions] == \
            [v for _, v in exact.transitions]
        # Agreement to the table's interpolation error (coarse grid).
        for (tr, _), (te, _) in zip(replay.transitions,
                                    exact.transitions):
            assert tr == pytest.approx(te, abs=2.0 * PS)

    def test_mis_rescheduling_uses_vector_lookup(self, nor3_table,
                                                 p3):
        """Two controlling inputs inside the pending window: the
        rescheduled crossing reads the Δ-vector interior, not an SIS
        edge."""
        table_channel = TableDelayChannel(nor3_table)
        traces = (DigitalTrace(0, [(100 * PS, 1)]),
                  DigitalTrace(0, [(104 * PS, 1)]),
                  DigitalTrace(0, []))
        out = table_channel.simulate(*traces)
        assert len(out.transitions) == 1
        t, value = out.transitions[0]
        assert value == 0
        expected = 100 * PS + nor3_table.delay_falling(
            [4 * PS, np.inf], clamp=True)
        assert t == pytest.approx(expected, abs=1e-18)

    def test_series_rising_vector(self, channel3, nor3_table):
        table_channel = TableDelayChannel(nor3_table)
        traces = (DigitalTrace(1, [(100 * PS, 0)]),
                  DigitalTrace(1, [(104 * PS, 0)]),
                  DigitalTrace(1, [(112 * PS, 0)]))
        out = table_channel.simulate(*traces)
        exact = channel3.simulate(*traces)
        assert [v for _, v in out.transitions] == [1]
        assert out.transitions[0][0] == pytest.approx(
            exact.transitions[0][0], abs=2.0 * PS)

    def test_trace_count_checked(self, nor3_table):
        with pytest.raises(TraceError):
            TableDelayChannel(nor3_table).simulate(
                DigitalTrace(0, []), DigitalTrace(0, []))


class TestCircuitInstances:
    def test_n_input_form_builds_multi_instance(self, channel3):
        circuit = TimingCircuit(["a", "b", "c"])
        instance = circuit.add_mis_gate("g0", ["a", "b", "c"], "y",
                                        channel3)
        assert isinstance(instance, MultiInputInstance)
        assert circuit.instance_inputs(instance) == ("a", "b", "c")

    def test_n_input_form_accepts_keywords(self, channel3):
        circuit = TimingCircuit(["a", "b", "c"])
        kw = circuit.add_mis_gate("g0", ["a", "b", "c"], output="y",
                                  channel=channel3)
        mixed = circuit.add_mis_gate("g1", ["a", "b", "c"], "z",
                                     channel=channel3)
        assert isinstance(kw, MultiInputInstance)
        assert (kw.output, mixed.output) == ("y", "z")
        with pytest.raises(NetlistError):
            circuit.add_mis_gate("g2", ["a", "b", "c"],
                                 channel=channel3)

    def test_legacy_form_still_builds_hybrid_instance(self):
        circuit = TimingCircuit(["a", "b"])
        instance = circuit.add_mis_gate(
            "g0", "a", "b", "y", HybridNorChannel(PAPER_TABLE_I))
        assert isinstance(instance, HybridInstance)
        assert instance.inputs == ("a", "b")

    def test_channel_width_mismatch_rejected(self, channel3):
        circuit = TimingCircuit(["a", "b"])
        with pytest.raises(NetlistError):
            circuit.add_mis_gate("g0", "a", "b", "y", channel3)
        with pytest.raises(NetlistError):
            circuit.add_mis_gate("g1", ["a", "b"], "y", channel3)

    def test_non_mis_channel_rejected(self):
        circuit = TimingCircuit(["a", "b", "c"])
        with pytest.raises(NetlistError):
            circuit.add_mis_gate("g0", ["a", "b", "c"], "y", object())

    def test_feed_forward_simulation(self, channel3, p3):
        circuit = TimingCircuit(["a", "b", "c"])
        circuit.add_mis_gate("g0", ["a", "b", "c"], "y", channel3)
        traces = {"a": DigitalTrace(0, [(100 * PS, 1)]),
                  "b": DigitalTrace(0, [(110 * PS, 1)]),
                  "c": DigitalTrace(0, [(130 * PS, 1)])}
        out = simulate(circuit, traces)["y"]
        exact = generalized_model(p3).output_crossings_for_inputs(
            [[(100 * PS, 1)], [(110 * PS, 1)], [(130 * PS, 1)]],
            initial_inputs=[0, 0, 0])
        assert out.transitions == exact

    def test_event_simulator_rejects_cleanly(self, channel3):
        circuit = TimingCircuit(["a", "b", "c"])
        circuit.add_mis_gate("g0", ["a", "b", "c"], "y", channel3)
        traces = {"a": DigitalTrace(0, []), "b": DigitalTrace(0, []),
                  "c": DigitalTrace(0, [])}
        with pytest.raises(SimulationError):
            simulate_events(circuit, traces, t_stop=1000 * PS)
