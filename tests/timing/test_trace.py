"""Tests for repro.timing.trace."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.timing.trace import DigitalTrace
from repro.units import PS

def _well_separated(times, min_gap=1e-14):
    """Drop entries closer than *min_gap* to their predecessor."""
    out = []
    for t in sorted(times):
        if not out or t - out[-1] >= min_gap:
            out.append(t)
    return out


edge_times = st.lists(
    st.floats(min_value=1e-12, max_value=1e-8), min_size=0,
    max_size=12).map(_well_separated)


class TestConstruction:
    def test_constant(self):
        trace = DigitalTrace.constant(1)
        assert trace.initial == 1
        assert len(trace) == 0
        assert trace.final_value == 1

    def test_basic(self):
        trace = DigitalTrace(0, [(1e-12, 1), (2e-12, 0)])
        assert trace.times == (1e-12, 2e-12)
        assert trace.values == (1, 0)

    def test_bad_initial(self):
        with pytest.raises(TraceError):
            DigitalTrace(2, [])

    def test_bad_value(self):
        with pytest.raises(TraceError):
            DigitalTrace(0, [(1e-12, 5)])

    def test_non_alternating(self):
        with pytest.raises(TraceError):
            DigitalTrace(0, [(1e-12, 1), (2e-12, 1)])

    def test_first_must_differ_from_initial(self):
        with pytest.raises(TraceError):
            DigitalTrace(1, [(1e-12, 1)])

    def test_non_increasing_times(self):
        with pytest.raises(TraceError):
            DigitalTrace(0, [(2e-12, 1), (1e-12, 0)])

    def test_infinite_time_rejected(self):
        with pytest.raises(TraceError):
            DigitalTrace(0, [(float("inf"), 1)])

    def test_from_transitions_inferred_initial(self):
        trace = DigitalTrace.from_transitions([(1e-12, 0)])
        assert trace.initial == 1

    def test_from_transitions_empty(self):
        trace = DigitalTrace.from_transitions([])
        assert trace.initial == 0

    def test_from_edges(self):
        trace = DigitalTrace.from_edges(0, [1e-12, 3e-12, 7e-12])
        assert trace.values == (1, 0, 1)

    @given(edge_times, st.integers(min_value=0, max_value=1))
    def test_from_edges_always_valid(self, times, initial):
        trace = DigitalTrace.from_edges(initial, times)
        assert len(trace) == len(times)
        if times:
            assert trace.values[0] == 1 - initial


class TestQueries:
    @pytest.fixture()
    def trace(self):
        return DigitalTrace(0, [(10 * PS, 1), (30 * PS, 0),
                                (70 * PS, 1)])

    def test_value_at(self, trace):
        assert trace.value_at(0.0) == 0
        assert trace.value_at(10 * PS) == 1  # right-continuous
        assert trace.value_at(20 * PS) == 1
        assert trace.value_at(30 * PS) == 0
        assert trace.value_at(100 * PS) == 1

    def test_value_before(self, trace):
        assert trace.value_before(10 * PS) == 0
        assert trace.value_before(30 * PS) == 1
        assert trace.value_before(5 * PS) == 0

    def test_final_value(self, trace):
        assert trace.final_value == 1

    def test_transitions_property(self, trace):
        assert trace.transitions == [(10 * PS, 1), (30 * PS, 0),
                                     (70 * PS, 1)]

    def test_pulses(self, trace):
        pulses = trace.pulses()
        assert pulses == [(10 * PS, 30 * PS, 1), (30 * PS, 70 * PS, 0)]

    def test_equality_and_hash(self, trace):
        same = DigitalTrace(0, [(10 * PS, 1), (30 * PS, 0),
                                (70 * PS, 1)])
        assert trace == same
        assert hash(trace) == hash(same)
        assert trace != DigitalTrace.constant(0)

    def test_eq_other_type(self, trace):
        assert trace != 42

    def test_repr(self, trace):
        assert "3 transitions" in repr(trace)


class TestTransforms:
    @pytest.fixture()
    def trace(self):
        return DigitalTrace(0, [(10 * PS, 1), (30 * PS, 0)])

    def test_shifted(self, trace):
        shifted = trace.shifted(5 * PS)
        assert shifted.times == (15 * PS, 35 * PS)
        assert shifted.initial == 0

    def test_inverted(self, trace):
        inv = trace.inverted()
        assert inv.initial == 1
        assert inv.values == (0, 1)

    def test_double_inversion_is_identity(self, trace):
        assert trace.inverted().inverted() == trace

    def test_windowed_keeps_interior(self, trace):
        window = trace.windowed(5 * PS, 20 * PS)
        assert window.transitions == [(10 * PS, 1)]
        assert window.initial == 0

    def test_windowed_reanchors_initial(self, trace):
        window = trace.windowed(20 * PS, 50 * PS)
        assert window.initial == 1
        assert window.transitions == [(30 * PS, 0)]

    def test_windowed_invalid(self, trace):
        with pytest.raises(TraceError):
            trace.windowed(10 * PS, 5 * PS)

    @given(edge_times, st.integers(min_value=0, max_value=1),
           st.floats(min_value=-1e-9, max_value=1e-9))
    def test_shift_preserves_values(self, times, initial, dt):
        trace = DigitalTrace.from_edges(initial, times)
        shifted = trace.shifted(dt)
        assert shifted.values == trace.values
        assert shifted.initial == trace.initial

    @given(edge_times, st.integers(min_value=0, max_value=1))
    def test_value_at_matches_manual_walk(self, times, initial):
        trace = DigitalTrace.from_edges(initial, times)
        probe = 5e-10
        expected = initial
        for t in times:
            if t <= probe:
                expected = 1 - expected
        assert trace.value_at(probe) == expected
