"""Tests for the pure, inertial and involution delay channels."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.timing.channels import (ExpChannel, InertialDelayChannel,
                                   PureDelayChannel, SumExpChannel,
                                   WaveformChannel)
from repro.timing.trace import DigitalTrace
from repro.units import PS

histories = st.floats(min_value=-10 * PS, max_value=500 * PS)


class TestPureDelayChannel:
    def test_shifts_all_transitions(self):
        channel = PureDelayChannel(10 * PS)
        trace = DigitalTrace.from_edges(0, [100 * PS, 105 * PS,
                                            200 * PS])
        out = channel.apply(trace)
        assert out.times == pytest.approx((110 * PS, 115 * PS,
                                           210 * PS))
        assert out.values == trace.values

    def test_preserves_short_pulses(self):
        channel = PureDelayChannel(50 * PS)
        trace = DigitalTrace.from_edges(0, [100 * PS, 101 * PS])
        assert len(channel.apply(trace)) == 2

    def test_separate_rise_fall(self):
        channel = PureDelayChannel(delay_up=10 * PS,
                                   delay_down=20 * PS)
        trace = DigitalTrace.from_edges(0, [100 * PS, 200 * PS])
        out = channel.apply(trace)
        assert out.times[0] == pytest.approx(110 * PS)
        assert out.times[1] == pytest.approx(220 * PS)

    def test_unequal_delays_cancel_reordered_pulse(self):
        """Rise delay >> fall delay: a narrow high pulse annihilates."""
        channel = PureDelayChannel(delay_up=30 * PS, delay_down=1 * PS)
        trace = DigitalTrace.from_edges(0, [100 * PS, 105 * PS])
        out = channel.apply(trace)
        assert len(out) == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ParameterError):
            PureDelayChannel(-1 * PS)

    def test_empty_trace(self):
        channel = PureDelayChannel(10 * PS)
        out = channel.apply(DigitalTrace.constant(1))
        assert out == DigitalTrace.constant(1)


class TestInertialDelayChannel:
    def test_long_pulse_passes(self):
        channel = InertialDelayChannel(30 * PS)
        trace = DigitalTrace.from_edges(0, [100 * PS, 200 * PS])
        out = channel.apply(trace)
        assert out.times == pytest.approx((130 * PS, 230 * PS))

    def test_short_pulse_removed(self):
        channel = InertialDelayChannel(30 * PS)
        trace = DigitalTrace.from_edges(0, [100 * PS, 120 * PS])
        assert len(channel.apply(trace)) == 0

    def test_boundary_pulse_passes(self):
        """A pulse just longer than the delay survives.

        (The exact-equality boundary is not tested: it sits on a float
        comparison and is ambiguous in every simulator.)"""
        channel = InertialDelayChannel(30 * PS)
        trace = DigitalTrace.from_edges(0, [100 * PS, 131 * PS])
        assert len(channel.apply(trace)) == 2

    def test_filtering_is_cascaded(self):
        """Pulse train with alternating widths filters pairwise."""
        channel = InertialDelayChannel(30 * PS)
        trace = DigitalTrace.from_edges(
            0, [100 * PS, 110 * PS,      # 10 ps pulse: dropped
                200 * PS, 260 * PS,      # 60 ps pulse: kept
                300 * PS, 305 * PS])     # 5 ps pulse: dropped
        out = channel.apply(trace)
        assert out.times == pytest.approx((230 * PS, 290 * PS))

    def test_negative_delay_rejected(self):
        with pytest.raises(ParameterError):
            InertialDelayChannel(-1 * PS)


class TestExpChannel:
    def test_sis_delays(self):
        channel = ExpChannel(delay_up_inf=40 * PS,
                             delay_down_inf=30 * PS,
                             pure_delay=10 * PS)
        assert channel.delay(1, math.inf) == pytest.approx(40 * PS)
        assert channel.delay(0, math.inf) == pytest.approx(30 * PS)

    def test_delay_increases_with_history(self):
        channel = ExpChannel(delay_up_inf=40 * PS,
                             delay_down_inf=30 * PS)
        d_short = channel.delay_up(5 * PS)
        d_long = channel.delay_up(200 * PS)
        assert d_short < d_long

    @given(histories)
    def test_involution_property_up(self, history):
        """−δ↓(−δ↑(T)) = T — the defining IDM axiom."""
        channel = ExpChannel(delay_up_inf=40 * PS,
                             delay_down_inf=30 * PS,
                             pure_delay=8 * PS)
        d_up = channel.delay_up(history)
        if d_up is None:
            return
        back = channel.delay_down(-d_up)
        if back is None:
            return
        assert -back == pytest.approx(history, rel=1e-9, abs=1e-18)

    @given(histories)
    def test_involution_property_down(self, history):
        channel = ExpChannel(delay_up_inf=35 * PS,
                             delay_down_inf=55 * PS,
                             pure_delay=5 * PS)
        d_down = channel.delay_down(history)
        if d_down is None:
            return
        back = channel.delay_up(-d_down)
        if back is None:
            return
        assert -back == pytest.approx(history, rel=1e-9, abs=1e-18)

    def test_out_of_domain_returns_none(self):
        channel = ExpChannel(delay_up_inf=40 * PS,
                             delay_down_inf=30 * PS)
        assert channel.delay_up(-100 * PS) is None

    def test_pure_delay_exceeding_delay_rejected(self):
        with pytest.raises(ParameterError):
            ExpChannel(delay_up_inf=10 * PS, pure_delay=15 * PS)

    def test_glitch_filtering_in_apply(self):
        channel = ExpChannel(delay_up_inf=40 * PS,
                             delay_down_inf=40 * PS)
        wide = DigitalTrace.from_edges(0, [100 * PS, 400 * PS])
        narrow = DigitalTrace.from_edges(0, [100 * PS, 101 * PS])
        assert len(channel.apply(wide)) == 2
        assert len(channel.apply(narrow)) == 0

    def test_output_pulse_shrinks_continuously(self):
        """Unlike inertial delay, pulse width decays gradually."""
        channel = ExpChannel(delay_up_inf=40 * PS,
                             delay_down_inf=40 * PS)
        widths = []
        for w in (200, 100, 60, 45):
            trace = DigitalTrace.from_edges(0, [100 * PS,
                                                (100 + w) * PS])
            out = channel.apply(trace)
            widths.append(out.times[1] - out.times[0]
                          if len(out) == 2 else 0.0)
        assert widths[0] > widths[1] > widths[2] > widths[3] > 0.0


class TestWaveformChannel:
    def exp_waveforms(self, tau):
        return (lambda t: 1.0 - math.exp(-t / tau),
                lambda t: math.exp(-t / tau))

    def test_matches_exp_channel(self):
        tau = 30 * PS / math.log(2.0)
        f_up, f_down = self.exp_waveforms(tau)
        generic = WaveformChannel(f_up, f_down, horizon=100 * tau)
        closed = ExpChannel(delay_up_inf=30 * PS,
                            delay_down_inf=30 * PS)
        for history in (5 * PS, 20 * PS, 100 * PS, math.inf):
            assert generic.delay(1, history) == pytest.approx(
                closed.delay(1, history), rel=1e-6)
            assert generic.delay(0, history) == pytest.approx(
                closed.delay(0, history), rel=1e-6)

    def test_matches_exp_channel_with_pure_delay(self):
        tau = 30 * PS / math.log(2.0)
        f_up, f_down = self.exp_waveforms(tau)
        generic = WaveformChannel(f_up, f_down, pure_delay=7 * PS,
                                  horizon=100 * tau)
        closed = ExpChannel(delay_up_inf=37 * PS,
                            delay_down_inf=37 * PS, pure_delay=7 * PS)
        for history in (5 * PS, 50 * PS, math.inf):
            assert generic.delay(1, history) == pytest.approx(
                closed.delay(1, history), rel=1e-6)

    def test_unreachable_threshold_raises(self):
        with pytest.raises(ParameterError):
            WaveformChannel(lambda t: 0.1, lambda t: 0.9, horizon=1.0)


class TestSumExpChannel:
    def test_single_tau_equals_exp(self):
        tau = 30 * PS / math.log(2.0)
        sumexp = SumExpChannel([tau])
        exp = ExpChannel(delay_up_inf=30 * PS, delay_down_inf=30 * PS)
        for history in (5 * PS, 50 * PS, math.inf):
            assert sumexp.delay(1, history) == pytest.approx(
                exp.delay(1, history), rel=1e-6)

    def test_weights_normalized(self):
        channel = SumExpChannel([10 * PS, 40 * PS],
                                weights_up=[2.0, 6.0])
        assert sum(channel.weights_up) == pytest.approx(1.0)

    def test_sis_delay_positive(self):
        channel = SumExpChannel([10 * PS, 40 * PS])
        assert channel.delay(1, math.inf) > 0.0

    @given(st.floats(min_value=-4 * PS, max_value=250 * PS))
    def test_involution_property_numeric(self, history):
        channel = SumExpChannel([12 * PS, 35 * PS],
                                weights_up=[1.0, 2.0])
        d_up = channel.delay(1, history)
        if d_up is None:
            return
        back = channel.delay(0, -d_up)
        if back is None:
            return
        # Numeric inversion noise grows as the waveforms saturate.
        assert -back == pytest.approx(history, rel=2e-4, abs=1e-14)

    def test_asymmetric_waveforms(self):
        channel = SumExpChannel([10 * PS], taus_down=[30 * PS])
        assert channel.delay(0, math.inf) > channel.delay(1, math.inf)

    def test_bad_taus(self):
        with pytest.raises(ParameterError):
            SumExpChannel([])
        with pytest.raises(ParameterError):
            SumExpChannel([-1 * PS])

    def test_bad_weights(self):
        with pytest.raises(ParameterError):
            SumExpChannel([10 * PS], weights_up=[1.0, 2.0])
        with pytest.raises(ParameterError):
            SumExpChannel([10 * PS], weights_up=[-1.0])
