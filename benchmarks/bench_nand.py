"""NAND2 duality — the paper's model generalized by CMOS mirroring.

The mirrored hybrid model predicts the NAND2's MIS landscape: a rising
speed-up from the parallel pMOS pair and a falling slow-down/order
dependence from the series nMOS stack — Fig. 2 reflected about Vth.
Verified against the analog NAND2 cell of the same technology card.
"""

from repro.analysis.characterization import nand_mis_delay
from repro.core import HybridNandModel, HybridNorModel, PAPER_TABLE_I
from repro.spice.technology import FINFET15
from repro.units import PS, to_ps


def test_nand_duality(benchmark, write_result):
    deltas = (-400, 0, 400)

    def kernel():
        return {direction: {d: nand_mis_delay(FINFET15, d * PS,
                                              direction)
                            for d in deltas}
                for direction in ("rising", "falling")}

    analog = benchmark.pedantic(kernel, rounds=1, iterations=1)

    nand = HybridNandModel(PAPER_TABLE_I)
    nor = HybridNorModel(PAPER_TABLE_I)
    rising = analog["rising"]
    falling = analog["falling"]
    speedup = 100 * (rising[0] / min(rising[-400], rising[400]) - 1)
    lines = [
        "Analog NAND2 (FINFET15) vs the mirrored hybrid model",
        f"rising  d(-inf)/d(0)/d(+inf): {to_ps(rising[-400]):.2f} / "
        f"{to_ps(rising[0]):.2f} / {to_ps(rising[400]):.2f} ps  "
        f"(MIS speed-up {speedup:+.1f} %, NOR falling mirror)",
        f"falling d(-inf)/d(0)/d(+inf): {to_ps(falling[-400]):.2f} / "
        f"{to_ps(falling[0]):.2f} / {to_ps(falling[400]):.2f} ps  "
        "(slow-down + order dependence, NOR rising mirror)",
        "",
        "model identities (exact by construction, tested):",
        f"  NAND rising(0)  == NOR falling(0)  == "
        f"{to_ps(nand.delay_rising_zero()):.2f} ps",
        f"  NAND falling(0) == NOR rising(0)|VN=GND == "
        f"{to_ps(nand.delay_falling(0.0)):.2f} ps",
    ]
    write_result("nand_duality", "\n".join(lines))

    benchmark.extra_info["rising_mis_pct"] = round(speedup, 1)

    # The analog NAND exhibits the mirrored Charlie landscape.
    assert rising[0] < min(rising[-400], rising[400])   # speed-up
    assert falling[0] > min(falling[-400], falling[400])  # slow-down
    # And the model identities hold.
    assert nand.delay_rising_zero() == nor.delay_falling_zero()
