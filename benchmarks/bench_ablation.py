"""Ablation benches — design choices the paper calls out.

* δ_min choice: the ratio-2 rule (2δ(0) − δ(−∞)) vs other pure delays;
* the V_N(0) = X convention for rising transitions;
* literature curve-fitting baselines vs the hybrid ODE model.
"""

from repro.analysis.experiments import (experiment_ablation_delta_min,
                                        experiment_baseline_fits)
from repro.core.hybrid_model import HybridNorModel
from repro.core.parametrization import infer_delta_min
from repro.units import PS, to_ps


def test_ablation_delta_min_choice(benchmark, write_result,
                                   characterization):
    """The inferred δ_min should be at or near the optimum."""
    result = benchmark.pedantic(
        lambda: experiment_ablation_delta_min(characterization),
        rounds=1, iterations=1)
    write_result("ablation_delta_min", result.text)

    errors = {tag: err for tag, err in result.rows}
    inferred_tag = next(tag for tag in errors if "ratio-2" in tag)
    zero_tag = next(tag for tag in errors if "  0.0 ps" in tag)
    benchmark.extra_info["inferred_error_ps"] = round(
        to_ps(errors[inferred_tag]), 3)
    # The ratio-2 rule beats no pure delay by a wide margin.
    assert errors[inferred_tag] < 0.6 * errors[zero_tag]


def test_ablation_vn_initial_value(benchmark, write_result,
                                   characterization, delta_fit):
    """Paper Section IV/V: X = GND matches the SIS values best."""
    model = HybridNorModel(delta_fit.params)
    analog = characterization.rising

    def kernel():
        return {x: model.rising_curve(analog.deltas, vn_init=x)
                for x in (0.0, 0.4, 0.8)}

    curves = benchmark(kernel)
    errors = {x: curve.mean_abs_difference(analog)
              for x, curve in curves.items()}
    lines = ["Ablation: rising-curve error vs V_N(0) choice"]
    for x, err in errors.items():
        lines.append(f"  X = {x:.1f} V: mean |model - analog| = "
                     f"{to_ps(err):.3f} ps")
    lines.append("(paper: X = GND 'reasonably matches' the SIS values; "
                 "none captures the peak)")
    write_result("ablation_vn_initial", "\n".join(lines))

    benchmark.extra_info.update(
        {f"err_x{int(10 * x)}_ps": round(to_ps(err), 3)
         for x, err in errors.items()})
    assert errors[0.0] <= min(errors[0.4], errors[0.8]) + 0.5 * PS


def test_ablation_baseline_models(benchmark, write_result,
                                  characterization):
    """Curve-fitting baselines interpolate well — that is their whole
    capability; the hybrid model matches them on the curve while also
    providing trajectories, state and extrapolation."""
    result = benchmark.pedantic(
        lambda: experiment_baseline_fits(characterization),
        rounds=1, iterations=1)
    write_result("ablation_baselines", result.text)

    errors = {tag: err for tag, err in result.rows}
    hybrid_err = next(err for tag, err in errors.items()
                      if "hybrid" in tag)
    benchmark.extra_info["hybrid_error_ps"] = round(to_ps(hybrid_err),
                                                    3)
    # All models stay within a few ps of the analog falling curve.
    assert all(err < 4 * PS for err in errors.values())


def test_ablation_delta_min_inference_is_cheap(benchmark,
                                               characterization):
    """The δ_min rule is a two-term formula — effectively free."""
    falling = characterization.targets.falling
    value = benchmark(lambda: infer_delta_min(falling))
    assert value > 0.0
