#!/usr/bin/env python3
"""CI perf-floor guard: smoke benchmarks vs the committed floors.

Runs the ``--smoke`` mode of each speedup benchmark and fails if the
measured speedup drops below **half** the committed full-workload
floor (``_SPEEDUP_FLOOR`` in the script).  Halving absorbs CI-runner
noise — 2-core machines, shared tenancy — while still catching
order-of-magnitude regressions: a kernel change that erases the
batched path's advantage fails loudly, a 20 % wobble does not.

The smoke runs overwrite the committed ``BENCH_*.json`` records (the
scripts share one output path), so the originals are restored
afterwards — the guard must never dirty the working tree it guards.

Usage::

    python benchmarks/check_perf_floor.py
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).parent
ROOT = HERE.parent

#: (benchmark script, record it writes, guarded metric key, committed
#: full-workload floor, unit suffix).  The guard trips below
#: ``0.5 * floor``.
CHECKS = [
    ("bench_multi_input.py", "BENCH_multi_input.json", "speedup",
     10.0, "x"),
    ("bench_sta.py", "BENCH_sta.json", "speedup", 10.0, "x"),
    ("bench_wire.py", "BENCH_wire.json", "speedup", 10.0, "x"),
    ("bench_server.py", "BENCH_server.json", "rps", 400.0, " req/s"),
    ("bench_obs.py", "BENCH_obs.json", "enabled_ratio", 0.8, "x"),
    ("bench_stats.py", "BENCH_stats.json", "speedup", 50.0, "x"),
]


def main() -> int:
    failures = 0
    for script, record, metric, committed_floor, unit in CHECKS:
        guard = 0.5 * committed_floor
        record_path = ROOT / record
        committed = record_path.read_bytes() \
            if record_path.exists() else None
        try:
            result = subprocess.run(
                [sys.executable, str(HERE / script), "--smoke"],
                capture_output=True, text=True)
            print(result.stdout, end="")
            if result.returncode != 0:
                print(result.stderr, end="", file=sys.stderr)
                print(f"FAIL: {script} --smoke exited "
                      f"{result.returncode}", file=sys.stderr)
                failures += 1
                continue
            measured = json.loads(
                record_path.read_text())[metric]
        finally:
            if committed is not None:
                record_path.write_bytes(committed)
        if measured < guard:
            print(f"FAIL: {script} smoke {metric} {measured:.1f}"
                  f"{unit} below {guard:.1f}{unit} (0.5 x committed "
                  f"{committed_floor:.0f}{unit} floor)",
                  file=sys.stderr)
            failures += 1
        else:
            print(f"OK: {script} smoke {metric} {measured:.1f}{unit} "
                  f">= {guard:.1f}{unit} guard")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
