"""Runtime benchmarks: engine sweep throughput + channel overhead.

Two workloads live here:

* **Engine throughput** — a 10k-point falling+rising MIS sweep through
  every registered delay engine (:mod:`repro.engine`).  The measured
  points/second per backend are written to ``BENCH_runtime.json`` at
  the repository root so the perf trajectory can be tracked across
  PRs; the vectorized backend must stay ≥10× faster than the scalar
  reference while agreeing to ≤1e-12 s.

* **Channel overhead** (paper Section VI) — the hybrid channel vs the
  simpler channels on the same random trace.  The paper reports ~6 %
  overhead inside QuestaSim; our native-Python inertial baseline is a
  bare add-a-constant pass, so the fair statement is "same league, not
  orders of magnitude".
"""

import json
import pathlib
import sys

import pytest

from repro.analysis.accuracy import build_model_suite
from repro.analysis.experiments import experiment_runtime
from repro.api import Session, SweepRequest
from repro.spice.technology import FINFET15
from repro.timing.tracegen import WaveformConfig, generate_traces
from repro.units import PS

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from bench_common import environment_metadata  # noqa: E402

_TRANSITIONS = 300
#: Δ grid size of the engine-throughput sweep (per direction).
_SWEEP_POINTS = 10_000
#: Machine-readable throughput record tracked across PRs.
_JSON_PATH = pathlib.Path(__file__).parents[1] / "BENCH_runtime.json"


def test_engine_sweep_throughput(benchmark, write_result):
    """10k-point MIS sweep: reference vs vectorized, JSON record."""
    session = Session()
    result = benchmark.pedantic(
        lambda: session.run(SweepRequest(points=_SWEEP_POINTS,
                                         repeats=3)),
        rounds=1, iterations=1)
    write_result("engines", result.text)

    payload = {
        "workload": "falling+rising MIS sweep",
        "sweep_points": result.points,
        "backends": {
            name: {
                "sweep_seconds": result.seconds[name],
                "points_per_second": result.points_per_second[name],
            }
            for name in sorted(result.seconds)
        },
        "speedup_vectorized_vs_reference": result.speedup,
        "max_abs_difference_seconds": result.max_abs_difference,
        "environment": environment_metadata(),
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")

    benchmark.extra_info["speedup"] = round(result.speedup, 1)
    benchmark.extra_info["vectorized_pps"] = round(
        result.points_per_second["vectorized"])
    # Acceptance: ≥10× on the 10k-point sweep, bit-tight parity.
    assert result.speedup >= 10.0
    assert result.max_abs_difference <= 1e-12


@pytest.fixture(scope="module")
def runtime_setup(request):
    characterization = request.getfixturevalue("characterization")
    toggle_fit = request.getfixturevalue("toggle_fit")
    suite = build_model_suite(characterization.targets_toggle,
                              toggle_fit.params)
    config = WaveformConfig(mu=100 * PS, sigma=50 * PS, mode="local",
                            transitions=_TRANSITIONS)
    traces = generate_traces(config, ["a", "b"], seed=5,
                             t_start=300 * PS)
    return suite, traces["a"], traces["b"]


@pytest.mark.parametrize("model_key", ["inertial", "exp",
                                       "hm_no_dmin", "hm"])
def test_channel_runtime(benchmark, runtime_setup, model_key):
    suite, trace_a, trace_b = runtime_setup
    runner = suite[model_key]
    out = benchmark(lambda: runner(trace_a, trace_b))
    assert out.initial in (0, 1)
    benchmark.extra_info["transitions"] = _TRANSITIONS


def test_runtime_report(benchmark, write_result, characterization,
                        toggle_fit):
    """Aggregate overhead table (the paper's ~6 % claim)."""
    result = benchmark.pedantic(
        lambda: experiment_runtime(FINFET15, transitions=_TRANSITIONS,
                                   repeats=3,
                                   characterization=characterization,
                                   fit=toggle_fit),
        rounds=1, iterations=1)
    write_result("runtime", result.text)
    for key, overhead in result.overhead_vs_inertial.items():
        benchmark.extra_info[f"overhead_{key}_pct"] = round(
            100 * overhead, 1)
    # The hybrid channel must stay within a small constant factor of
    # the simplest channel.  The paper reports +6 % — but there the
    # baseline includes the whole QuestaSim event loop; our inertial
    # baseline is a bare add-a-constant pass, so the fair statement is
    # "same league, not orders of magnitude" (about 20x here, i.e.
    # ~20 us vs ~1 us per transition).
    assert result.seconds["hm"] < 60 * result.seconds["inertial"]
