"""Section VI runtime comparison — hybrid channel vs simpler channels.

The paper reports ~6 % digital-simulation overhead of the hybrid model
relative to inertial delay / Exp-Channel.  pytest-benchmark times each
channel on the same random trace; compare the means in the report.
(The absolute ratio differs from the paper's — their channels ran
inside QuestaSim via FLI; ours are native Python — but the point is the
same: the hybrid channel's cost stays in the same league.)
"""

import pytest

from repro.analysis.accuracy import build_model_suite
from repro.analysis.experiments import experiment_runtime
from repro.spice.technology import FINFET15
from repro.timing.tracegen import WaveformConfig, generate_traces
from repro.units import PS

_TRANSITIONS = 300


@pytest.fixture(scope="module")
def runtime_setup(request):
    characterization = request.getfixturevalue("characterization")
    toggle_fit = request.getfixturevalue("toggle_fit")
    suite = build_model_suite(characterization.targets_toggle,
                              toggle_fit.params)
    config = WaveformConfig(mu=100 * PS, sigma=50 * PS, mode="local",
                            transitions=_TRANSITIONS)
    traces = generate_traces(config, ["a", "b"], seed=5,
                             t_start=300 * PS)
    return suite, traces["a"], traces["b"]


@pytest.mark.parametrize("model_key", ["inertial", "exp",
                                       "hm_no_dmin", "hm"])
def test_channel_runtime(benchmark, runtime_setup, model_key):
    suite, trace_a, trace_b = runtime_setup
    runner = suite[model_key]
    out = benchmark(lambda: runner(trace_a, trace_b))
    assert out.initial in (0, 1)
    benchmark.extra_info["transitions"] = _TRANSITIONS


def test_runtime_report(benchmark, write_result, characterization,
                        toggle_fit):
    """Aggregate overhead table (the paper's ~6 % claim)."""
    result = benchmark.pedantic(
        lambda: experiment_runtime(FINFET15, transitions=_TRANSITIONS,
                                   repeats=3,
                                   characterization=characterization,
                                   fit=toggle_fit),
        rounds=1, iterations=1)
    write_result("runtime", result.text)
    for key, overhead in result.overhead_vs_inertial.items():
        benchmark.extra_info[f"overhead_{key}_pct"] = round(
            100 * overhead, 1)
    # The hybrid channel must stay within a small constant factor of
    # the simplest channel.  The paper reports +6 % — but there the
    # baseline includes the whole QuestaSim event loop; our inertial
    # baseline is a bare add-a-constant pass, so the fair statement is
    # "same league, not orders of magnitude" (about 20x here, i.e.
    # ~20 us vs ~1 us per transition).
    assert result.seconds["hm"] < 60 * result.seconds["inertial"]
