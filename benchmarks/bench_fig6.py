"""Fig. 6 — rising MIS delays for V_N(0) ∈ {GND, VDD/2, VDD}.

Reproduces the paper's negative finding: none of the initial values
matches the analog slow-down peak around Δ = 0, while X = GND matches
the SIS plateaus (and is therefore the choice for Section VI).
"""

import pytest

from repro.analysis.experiments import experiment_fig6
from repro.core.hybrid_model import HybridNorModel
from repro.units import PS, to_ps


def test_fig6_rising_curves(benchmark, write_result, characterization,
                            delta_fit):
    deltas = characterization.rising.deltas
    model = HybridNorModel(delta_fit.params)

    benchmark(lambda: model.rising_curve(deltas, vn_init=0.0))

    result = experiment_fig6(delta_fit.params,
                             characterization=characterization,
                             deltas=deltas)
    write_result("fig6", result.text)

    ground, half, vdd_curve, analog = result.curves
    analog_peak = max(analog.delays)
    ground_peak = max(ground.delays)
    benchmark.extra_info.update({
        "analog_peak_ps": round(to_ps(analog_peak), 2),
        "model_ground_peak_ps": round(to_ps(ground_peak), 2),
    })

    # X = GND matches the SIS plateaus (fit targets) ...
    assert ground.delays[0] == pytest.approx(
        analog.delays[0], abs=1.5 * PS)
    assert ground.delays[-1] == pytest.approx(
        analog.delays[-1], abs=1.5 * PS)
    # ... but cannot reproduce the MIS peak (the paper's Section IV
    # finding): the model curve's maximum stays at the plateau level.
    assert analog_peak > ground_peak + 0.5 * PS
    # For Δ < 0 the X = GND curve is flat (the (1,0) mode is inert).
    flat = [d for delta, d in zip(ground.deltas, ground.delays)
            if delta < 0]
    assert max(flat) - min(flat) < 1e-15
    # The X = VDD curve fails in the other direction: it reproduces the
    # fast case everywhere, underestimating Δ < 0 delays.
    assert vdd_curve.delays[0] < analog.delays[0]
