"""Library-characterization benchmarks: throughput + table accuracy.

The workload is the ROADMAP's batch scenario: a grid of (gate,
parameter-variant) characterization jobs swept through each delay
engine.  Two records are produced:

* ``benchmarks/results/library.txt`` — the rendered accuracy table of
  :func:`repro.analysis.experiments.experiment_library`;
* ``BENCH_library.json`` at the repository root — per-backend wall
  time and cells/second for the same job grid, tracked across PRs
  next to ``BENCH_runtime.json``.

Acceptance (ISSUE 2): every characterized table must reproduce direct
``vectorized`` evaluation to <= 0.1 ps across the characterized Δ
range, and the sharded ``parallel`` backend must beat the scalar
``reference`` backend on the grid.
"""

import json
import pathlib
import sys
import time

from repro.analysis.experiments import experiment_library
from repro.api import Session
from repro.engine import ParallelEngine, get_engine
from repro.library import characterize_library, paper_jobs
from repro.units import PS

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from bench_common import environment_metadata  # noqa: E402

#: ISSUE acceptance bound for table-vs-direct interpolation error.
_ACCURACY_TOL = 0.1 * PS
#: Machine-readable throughput record tracked across PRs.
_JSON_PATH = pathlib.Path(__file__).parents[1] / "BENCH_library.json"


def _time_characterization(engine) -> float:
    jobs = paper_jobs()
    start = time.perf_counter()
    characterize_library(jobs, engine=engine)
    return time.perf_counter() - start


def test_library_accuracy_report(benchmark, write_result):
    """Accuracy of every characterized table vs direct evaluation."""
    session = Session()
    result = benchmark.pedantic(
        lambda: experiment_library(params=session.parameters,
                                   engine=session.engine),
        rounds=1, iterations=1)
    write_result("library", result.text)
    worst = max(accuracy.max_error for accuracy in result.accuracies)
    benchmark.extra_info["worst_error_fs"] = round(worst / 1e-15, 2)
    assert worst <= _ACCURACY_TOL


def test_library_backend_throughput(benchmark, write_result):
    """Per-backend characterization wall time, JSON record."""
    # A genuinely sharding parallel engine: the default engine would
    # fall through to inline evaluation on single-core CI runners.
    sharded = ParallelEngine(processes=2, min_shard_points=512)
    backends = {
        "vectorized": get_engine("vectorized"),
        "parallel": sharded,
        "reference": get_engine("reference"),
    }
    try:
        # Warm per-parameter caches and the worker pool so the record
        # reflects steady-state throughput.
        for backend in backends.values():
            jobs = paper_jobs()
            characterize_library(jobs[:1], engine=backend)

        def run_all() -> dict[str, float]:
            return {name: _time_characterization(backend)
                    for name, backend in backends.items()}

        seconds = benchmark.pedantic(run_all, rounds=1, iterations=1)
    finally:
        sharded.close()

    cells = len(paper_jobs())
    payload = {
        "workload": "gate-library characterization "
                    "(4 cells x 2 directions x default grids)",
        "cells": cells,
        "backends": {
            name: {
                "seconds": elapsed,
                "cells_per_second": cells / elapsed,
            }
            for name, elapsed in sorted(seconds.items())
        },
        "speedup_parallel_vs_reference":
            seconds["reference"] / seconds["parallel"],
        "environment": environment_metadata(),
    }
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    for name, elapsed in seconds.items():
        benchmark.extra_info[f"{name}_seconds"] = round(elapsed, 4)

    # The sharded backend must beat the scalar reference outright.
    assert seconds["parallel"] < seconds["reference"]
