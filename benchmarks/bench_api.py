"""Session-facade benchmarks: cold vs warm dispatch overhead.

The session facade (:mod:`repro.api`) puts one dispatch seam in front
of every workload, so its overhead must stay negligible.  Three
regimes are measured on a small :class:`~repro.api.DelayRequest`:

* **cold** — a fresh :class:`~repro.api.Session` running its first
  request: engine resolution plus the engine's per-parameter-set
  solution-cache construction;
* **warm (cached)** — the same request repeated on the same session:
  a dictionary lookup;
* **warm (uncached)** — the same request through a ``cache=False``
  session: handler dispatch + engine evaluation on warm engine
  caches, compared against calling the engine directly to isolate
  the dispatch overhead.

The record is written to ``BENCH_api.json`` at the repository root,
tracked across PRs next to ``BENCH_runtime.json`` /
``BENCH_sta.json`` / ``BENCH_library.json``.

The module doubles as a CI smoke check::

    python benchmarks/bench_api.py --smoke

runs a reduced repeat count (no pytest needed) and exits non-zero if
the cache stops caching or the dispatch overhead explodes.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.api import DelayRequest, Session

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from bench_common import environment_metadata  # noqa: E402

#: Dispatch must cost microseconds, not milliseconds: the uncached
#: session path may exceed the direct engine call by at most this.
_OVERHEAD_CEILING_S = 2e-3
#: Machine-readable record tracked across PRs.
_JSON_PATH = pathlib.Path(__file__).parents[1] / "BENCH_api.json"

#: Full / smoke warm-repeat counts.
FULL_REPEATS = 2000
SMOKE_REPEATS = 200

#: The probed request: a 16-point falling sweep (small on purpose —
#: the probe measures the seam, not the engine).
_REQUEST = DelayRequest(
    deltas=tuple((float(d),) for d in np.linspace(-40e-12, 40e-12,
                                                  16)))


def measure_dispatch(repeats: int) -> dict:
    """Time the three dispatch regimes; returns the JSON payload."""
    # Cold: fresh session, first request.
    cold_session = Session()
    start = time.perf_counter()
    cold_session.run(_REQUEST)
    cold_s = time.perf_counter() - start

    # Warm, cached: repeats on the same session are dict lookups.
    start = time.perf_counter()
    for _ in range(repeats):
        cold_session.run(_REQUEST)
    cached_s = (time.perf_counter() - start) / repeats

    # Warm, uncached: full handler dispatch every time.
    uncached_session = Session(cache=False)
    uncached_session.run(_REQUEST)  # warm the engine caches
    start = time.perf_counter()
    for _ in range(repeats):
        uncached_session.run(_REQUEST)
    uncached_s = (time.perf_counter() - start) / repeats

    # Baseline: the direct engine call the handler wraps.
    engine = uncached_session.engine
    params = uncached_session.parameters
    deltas = np.asarray([entry[0] for entry in _REQUEST.deltas])
    engine.delays_falling(params, deltas)
    start = time.perf_counter()
    for _ in range(repeats):
        engine.delays_falling(params, deltas)
    direct_s = (time.perf_counter() - start) / repeats

    return {
        "workload": "session dispatch of a 16-point DelayRequest "
                    "(cold resolve vs cached vs uncached vs direct "
                    "engine call)",
        "repeats": repeats,
        "cold_first_request_seconds": cold_s,
        "warm_cached_seconds_per_request": cached_s,
        "warm_uncached_seconds_per_request": uncached_s,
        "direct_engine_seconds_per_call": direct_s,
        "dispatch_overhead_seconds": uncached_s - direct_s,
        "cached_speedup_vs_uncached": uncached_s / cached_s,
        "cache_hits": cold_session.cache_info()["hits"],
        "environment": environment_metadata(),
    }


def test_api_dispatch_record(benchmark, write_result):
    """Cold/warm dispatch record -> BENCH_api.json."""
    payload = benchmark.pedantic(
        lambda: measure_dispatch(FULL_REPEATS), rounds=1,
        iterations=1)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    write_result("api", json.dumps(payload, indent=2,
                                   sort_keys=True))
    benchmark.extra_info["overhead_us"] = round(
        payload["dispatch_overhead_seconds"] * 1e6, 1)
    assert payload["cache_hits"] == payload["repeats"]
    assert (payload["warm_cached_seconds_per_request"]
            < payload["cold_first_request_seconds"])
    assert payload["dispatch_overhead_seconds"] \
        < _OVERHEAD_CEILING_S


def main(argv=None) -> int:
    """Script entry point (CI smoke mode without pytest)."""
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced repeats ({SMOKE_REPEATS}) "
                             "for fast CI checks")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override the warm repeat count")
    args = parser.parse_args(argv)
    repeats = args.repeats or (SMOKE_REPEATS if args.smoke
                               else FULL_REPEATS)
    payload = measure_dispatch(repeats)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    print(f"cold {payload['cold_first_request_seconds'] * 1e3:.2f} "
          f"ms, warm cached "
          f"{payload['warm_cached_seconds_per_request'] * 1e6:.1f} "
          f"us/req, warm uncached "
          f"{payload['warm_uncached_seconds_per_request'] * 1e6:.1f} "
          f"us/req, dispatch overhead "
          f"{payload['dispatch_overhead_seconds'] * 1e6:.1f} us")
    print(f"wrote {_JSON_PATH}")
    if payload["cache_hits"] != repeats:
        print("FAIL: session cache did not serve the repeats",
              file=sys.stderr)
        return 1
    if (payload["warm_cached_seconds_per_request"]
            >= payload["cold_first_request_seconds"]):
        print("FAIL: cached dispatch not faster than cold",
              file=sys.stderr)
        return 1
    if payload["dispatch_overhead_seconds"] >= _OVERHEAD_CEILING_S:
        print(f"FAIL: dispatch overhead "
              f"{payload['dispatch_overhead_seconds'] * 1e6:.1f} us "
              f"above {_OVERHEAD_CEILING_S * 1e6:.0f} us",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
