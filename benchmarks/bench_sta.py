"""STA benchmarks: cross-validation record + corner-sweep speedup.

Two records are produced:

* ``benchmarks/results/sta.txt`` — the rendered
  STA-vs-event-simulation cross-validation table of
  :func:`repro.analysis.experiments.experiment_sta`;
* ``BENCH_sta.json`` at the repository root — wall time of a
  1000-corner vectorized sweep against the scalar per-corner loop on
  the NOR tree circuit, tracked across PRs next to
  ``BENCH_runtime.json`` / ``BENCH_library.json``.

Acceptance (ISSUE 3): STA critical-path delays match full event
simulation within 0.1 ps, and the vectorized 1k-corner sweep runs at
least 10x faster than the scalar loop.

The module doubles as a CI smoke check::

    python benchmarks/bench_sta.py --smoke

runs a reduced sweep (no pytest needed) and exits non-zero if parity
or the speedup machinery is broken.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.api import Session, StaRequest
from repro.sta import (demo_corners, sweep_corners,
                       sweep_corners_scalar)
from repro.units import PS

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from bench_common import repeat_median  # noqa: E402

#: ISSUE acceptance: vectorized vs scalar on the full corner count.
_SPEEDUP_FLOOR = 10.0
#: ISSUE acceptance for STA-vs-simulation agreement.
_AGREEMENT_TOL = 0.1 * PS
#: Machine-readable record tracked across PRs.
_JSON_PATH = pathlib.Path(__file__).parents[1] / "BENCH_sta.json"

#: Full / smoke corner counts.
FULL_CORNERS = 1000
SMOKE_CORNERS = 96


def measure_sweep(corners: int, seed: int = 0) -> dict:
    """Time the vectorized sweep against the scalar per-corner loop.

    Returns the ``BENCH_sta.json`` payload (seconds, speedup, and
    the parity of the two results).
    """
    graph = Session().timing_graph("tree")
    # The shared demo grid: 4 process variants x random arrivals on
    # two of the tree's inputs (repro sta --corners uses the same).
    params, arrivals = demo_corners(corners, ["b", "d"], seed=seed)
    # Warm the engine's per-parameter-set caches: steady-state
    # throughput is the quantity of interest.
    sweep_corners(graph, params=params[:8],
                  arrivals={key: values[:8]
                            for key, values in arrivals.items()})

    start = time.perf_counter()
    fast = sweep_corners(graph, params=params, arrivals=arrivals)
    vectorized_s = time.perf_counter() - start

    start = time.perf_counter()
    slow = sweep_corners_scalar(graph, params=params,
                                arrivals=arrivals)
    scalar_s = time.perf_counter() - start

    parity = 0.0
    for node, values in fast.arrivals.items():
        other = slow.arrivals[node]
        finite = np.isfinite(values) & np.isfinite(other)
        if finite.any():
            parity = max(parity, float(np.max(np.abs(
                values[finite] - other[finite]))))

    return {
        "workload": "MIS-aware STA corner sweep (NOR tree, 4 "
                    "parameter variants x random arrivals)",
        "corners": corners,
        "vectorized_seconds": vectorized_s,
        "scalar_seconds": scalar_s,
        "speedup": scalar_s / vectorized_s,
        "corners_per_second_vectorized": corners / vectorized_s,
        "parity_s": parity,
    }


def test_sta_cross_validation_record(benchmark, write_result):
    """STA vs event simulation on the paper's NOR circuits."""
    session = Session()
    result = benchmark.pedantic(
        lambda: session.run(StaRequest(validate=True)), rounds=1,
        iterations=1)
    write_result("sta", result.text)
    benchmark.extra_info["max_error_fs"] = round(
        result.max_error / 1e-15, 3)
    assert result.max_error <= _AGREEMENT_TOL


def test_sta_corner_sweep_speedup(benchmark, write_result):
    """1000-corner vectorized sweep vs the scalar loop (>= 10x)."""
    payload = benchmark.pedantic(
        lambda: repeat_median(lambda: measure_sweep(FULL_CORNERS),
                              "vectorized_seconds", repeats=3),
        rounds=1, iterations=1)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    benchmark.extra_info["speedup"] = round(payload["speedup"], 1)
    assert payload["parity_s"] <= 1e-15
    assert payload["speedup"] >= _SPEEDUP_FLOOR


def main(argv=None) -> int:
    """Script entry point (CI smoke mode without pytest)."""
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced sweep ({SMOKE_CORNERS} "
                             "corners) for fast CI checks")
    parser.add_argument("--corners", type=int, default=None,
                        help="override the corner count")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed runs; the median (by vectorized "
                             "wall time) is recorded (default 1)")
    args = parser.parse_args(argv)
    corners = args.corners or (SMOKE_CORNERS if args.smoke
                               else FULL_CORNERS)
    payload = repeat_median(lambda: measure_sweep(corners),
                            "vectorized_seconds",
                            repeats=args.repeats)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    print(f"{corners} corners: vectorized "
          f"{payload['vectorized_seconds'] * 1e3:.1f} ms, scalar "
          f"{payload['scalar_seconds'] * 1e3:.1f} ms, speedup "
          f"{payload['speedup']:.1f}x, parity "
          f"{payload['parity_s']:.2e} s")
    print(f"wrote {_JSON_PATH}")
    if payload["parity_s"] > 1e-15:
        print("FAIL: vectorized/scalar parity broken",
              file=sys.stderr)
        return 1
    floor = 2.0 if (args.smoke or corners < FULL_CORNERS) \
        else _SPEEDUP_FLOOR
    if payload["speedup"] < floor:
        print(f"FAIL: speedup {payload['speedup']:.1f}x below "
              f"{floor}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
