"""Fig. 5 — hybrid-model falling MIS delays vs the analog golden curve.

Benchmarks the model's MIS sweep and asserts the paper's "very good
fit" claim for falling output transitions.
"""

import pytest

from repro.analysis.experiments import experiment_fig5
from repro.core.hybrid_model import HybridNorModel
from repro.units import PS, to_ps


def test_fig5_falling_match(benchmark, write_result, characterization,
                            delta_fit):
    deltas = characterization.falling.deltas
    model = HybridNorModel(delta_fit.params)

    curve = benchmark(lambda: model.falling_curve(deltas))

    result = experiment_fig5(delta_fit.params,
                             characterization=characterization,
                             deltas=deltas)
    error = curve.mean_abs_difference(characterization.falling)
    text = (result.text
            + f"\n\nmean |model - analog| = {to_ps(error):.3f} ps"
            + "\n(paper Fig. 5: near-perfect overlay)")
    write_result("fig5", text)

    benchmark.extra_info["mean_error_ps"] = round(to_ps(error), 3)
    benchmark.extra_info["delta_min_ps"] = round(
        to_ps(delta_fit.params.delta_min), 2)

    # The paper's claim: the falling MIS effect is captured well.
    assert error < 2.5 * PS
    model_ch = curve.characteristic()
    analog_ch = characterization.falling.characteristic()
    assert model_ch.zero == pytest.approx(analog_ch.zero,
                                          abs=1.5 * PS)
    assert model_ch.is_speedup
