"""Faithfulness probe — Section VII future work.

Short-pulse filtration behaviour of the hybrid channel: output pulse
widths shrink continuously to zero, the property that separates faithful
(IDM-style) channels from inertial delay.
"""

import math

from repro.analysis.experiments import experiment_faithfulness
from repro.analysis.faithfulness import perturbation_sensitivity
from repro.core.parameters import PAPER_TABLE_I
from repro.timing.channels import HybridNorChannel
from repro.timing.trace import DigitalTrace
from repro.units import PS


def test_short_pulse_filtration(benchmark, write_result):
    result = benchmark.pedantic(
        lambda: experiment_faithfulness(PAPER_TABLE_I),
        rounds=1, iterations=1)
    write_result("faithfulness_spf", result.text)

    widths = [w for _tag, w in result.rows]
    nonzero = [w for w in widths if w > 0.0]
    benchmark.extra_info["smallest_output_pulse_ps"] = round(
        nonzero[-1] / PS, 3)
    # Continuous shrink: strictly decreasing positive widths, with the
    # smallest surviving pulse well below the SIS delay scale.
    assert nonzero == sorted(nonzero, reverse=True)
    assert nonzero[-1] < 20 * PS


def test_perturbation_continuity(benchmark, write_result):
    """Local modulus of continuity of the hybrid channel."""
    channel = HybridNorChannel(PAPER_TABLE_I)
    trace_a = DigitalTrace.from_edges(0, [300 * PS, 800 * PS])
    trace_b = DigitalTrace.from_edges(0, [320 * PS, 900 * PS])

    sensitivity = benchmark(
        lambda: perturbation_sensitivity(channel.simulate, trace_a,
                                         trace_b, epsilon=0.1 * PS))
    write_result("faithfulness_continuity",
                 f"max |dt_out|/|dt_in| = {sensitivity:.3f} "
                 "(finite => locally continuous; inertial delay gives "
                 "inf at its filtering boundary)")
    benchmark.extra_info["sensitivity"] = round(sensitivity, 3)
    assert math.isfinite(sensitivity)
