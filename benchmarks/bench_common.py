"""Shared benchmark-harness helpers: metadata and repeat-median.

Every ``BENCH_*.json`` record carries the environment it was measured
in (python / numpy / cpu count / platform), so numbers tracked across
PRs are comparable — a speedup regression on a 2-core CI runner is
not a regression against an 8-core workstation record.

:func:`repeat_median` adds measurement rigor on top: an optional
discarded warmup run, then ``repeats`` timed runs of which the
*median* (by a designated timing key) is recorded, with the full
sample list kept alongside for spread inspection.
"""

from __future__ import annotations

import os
import platform
import sys
from collections.abc import Callable

import numpy as np

__all__ = ["environment_metadata", "repeat_median"]


def environment_metadata() -> dict:
    """Interpreter / library / host facts recorded in every record."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def repeat_median(measure: Callable[[], dict], time_key: str,
                  repeats: int = 1, warmup: bool = True) -> dict:
    """Measure with warmup + repeats, record the median run.

    Parameters
    ----------
    measure : callable
        Zero-argument function returning one benchmark payload dict.
    time_key : str
        Payload key holding the primary wall time in seconds; the
        run whose value is the sample median is the one recorded.
    repeats : int, optional
        Number of timed runs (default 1).
    warmup : bool, optional
        Run (and discard) one extra call first, so page faults, BLAS
        thread spin-up and allocator growth are not billed to the
        first sample (default True; skipped when ``repeats`` is 1 —
        the measure functions warm their own engine caches).

    Returns
    -------
    dict
        The median run's payload plus ``repeats``, the sorted
        ``<time_key>_samples`` list, and ``environment`` metadata.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup and repeats > 1:
        measure()
    payloads = [measure() for _ in range(repeats)]
    ordered = sorted(payloads, key=lambda p: p[time_key])
    chosen = dict(ordered[(len(ordered) - 1) // 2])
    chosen["repeats"] = repeats
    chosen[f"{time_key}_samples"] = sorted(
        float(p[time_key]) for p in payloads)
    chosen["environment"] = environment_metadata()
    return chosen


def _ensure_importable() -> None:  # pragma: no cover - import shim
    """Allow ``import bench_common`` from sibling scripts when the
    benchmarks directory is not already on ``sys.path``."""
    here = os.path.dirname(os.path.abspath(__file__))
    if here not in sys.path:
        sys.path.insert(0, here)


_ensure_importable()
