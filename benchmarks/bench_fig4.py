"""Fig. 4 — temporal evolution of all four mode systems.

Benchmarks the closed-form trajectory evaluation (the inner loop of
every delay computation) and records the Fig. 4 table.
"""

import numpy as np

from repro.analysis.experiments import experiment_fig4
from repro.core.modes import Mode
from repro.core.parameters import PAPER_TABLE_I
from repro.core.solutions import solve_mode
from repro.units import PS


def test_fig4_trajectories(benchmark, write_result):
    params = PAPER_TABLE_I
    times = np.linspace(0.0, 150 * PS, 64)

    def kernel():
        total = 0.0
        for mode, (vn0, vo0) in (
                (Mode.BOTH_LOW, (0.0, 0.0)),
                (Mode.A_LOW_B_HIGH, (params.vdd, params.vdd)),
                (Mode.A_HIGH_B_LOW, (params.vdd, params.vdd)),
                (Mode.BOTH_HIGH, (params.vdd / 2, params.vdd))):
            solution = solve_mode(mode, params, vn0, vo0)
            total += float(np.sum(solution.states_at(times)))
        return total

    benchmark(kernel)

    result = experiment_fig4(params)
    write_result("fig4", result.text)

    # Paper's observation: the (1,1) output trajectory is much steeper
    # than the single-nMOS cases.
    vo_11 = result.trajectories["VO(1, 1)"]
    vo_01 = result.trajectories["VO(0, 1)"]
    vo_10 = result.trajectories["VO(1, 0)"]
    quarter = len(result.times) // 4
    assert vo_11[quarter] < vo_01[quarter]
    assert vo_11[quarter] < vo_10[quarter]
    # VN is invariant in (1,1).
    vn_11 = result.trajectories["VN(1, 1)"]
    assert np.allclose(vn_11, vn_11[0])
