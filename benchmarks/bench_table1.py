"""Table I — least-squares parametrization from the paper's values.

Benchmarks the full fit (δ_min inference + bounded least squares) and
compares the fitted electrical parameters against the printed Table I.
"""

import pytest

from repro.analysis.experiments import experiment_table1
from repro.analysis.fitting import fit_from_paper_values
from repro.core.parameters import PAPER_TABLE_I
from repro.units import PS, to_ps


def test_table1_fit(benchmark, write_result):
    fit = benchmark(lambda: fit_from_paper_values(co=PAPER_TABLE_I.co))

    result = experiment_table1()
    write_result("table1", result.text)

    benchmark.extra_info.update({
        "delta_min_ps": round(to_ps(fit.params.delta_min), 2),
        "max_target_error_ps": round(to_ps(fit.max_error), 3),
        "r3_ratio_vs_paper": round(fit.params.r3 / PAPER_TABLE_I.r3, 3),
        "r4_ratio_vs_paper": round(fit.params.r4 / PAPER_TABLE_I.r4, 3),
        "cn_ratio_vs_paper": round(fit.params.cn / PAPER_TABLE_I.cn, 3),
    })

    # The ratio-2 rule reproduces the paper's 18 ps exactly.
    assert fit.params.delta_min == pytest.approx(18 * PS)
    # All six characteristic targets are matched closely.
    assert fit.max_error < 0.25 * PS
    # The nMOS-side parameters land on the paper's values; the
    # (R1, R2, C_N) subspace is degenerate (see DESIGN.md) but the
    # total p-path resistance matches too.
    assert fit.params.r3 == pytest.approx(PAPER_TABLE_I.r3, rel=0.10)
    assert fit.params.r4 == pytest.approx(PAPER_TABLE_I.r4, rel=0.10)
    assert fit.params.r1 + fit.params.r2 == pytest.approx(
        PAPER_TABLE_I.r1 + PAPER_TABLE_I.r2, rel=0.05)
    assert fit.params.cn == pytest.approx(PAPER_TABLE_I.cn, rel=0.25)


def test_table1_infeasibility_without_pure_delay(benchmark,
                                                 write_result):
    """The paper's impossibility observation: without δ_min the
    falling characteristic values cannot be fitted."""
    from repro.analysis.fitting import PAPER_FIG2_TARGETS
    from repro.core.parametrization import (
        falling_feasible_without_pure_delay, fit_nor_parameters)

    assert not falling_feasible_without_pure_delay(
        PAPER_FIG2_TARGETS.falling)

    fit = benchmark(lambda: fit_nor_parameters(
        PAPER_FIG2_TARGETS, delta_min=0.0, co=PAPER_TABLE_I.co))

    write_result("table1_no_dmin", "\n".join(
        f"{name}: target {t:.2f} ps, achieved {a:.2f} ps"
        for name, t, a in fit.table()))
    benchmark.extra_info["max_error_ps"] = round(to_ps(fit.max_error),
                                                 2)
    assert fit.max_error > 1.0 * PS
