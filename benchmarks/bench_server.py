"""HTTP service benchmark: sustained req/s and latency under load.

Starts an in-process :class:`repro.server.ReproServer` on a random
free port and hammers ``POST /v1/run`` from concurrent keep-alive
clients (a :class:`~concurrent.futures.ThreadPoolExecutor`, one
``http.client.HTTPConnection`` per worker).  The request mix cycles
through a pool of small distinct :class:`~repro.api.DelayRequest`
envelopes, so after the first pass the session memo serves them —
the measurement targets the serving stack (HTTP parse, dispatch,
envelope encode), not the delay kernel.

Recorded in ``BENCH_server.json`` at the repository root:

* ``rps`` — sustained requests/second across the whole run,
* ``latency_ms`` — per-request p50 / p99 / mean / max,
* ``batch`` — lines/second of an asynchronous batch job driven
  through the upload -> poll -> download lifecycle.

The module doubles as a CI smoke check::

    python benchmarks/bench_server.py --smoke

which runs a reduced request count and exits non-zero on any failed
request; ``benchmarks/check_perf_floor.py`` additionally guards the
measured ``rps`` against the committed floor.
"""

import argparse
import concurrent.futures
import http.client
import json
import pathlib
import socket
import sys
import tempfile
import time

import numpy as np

from repro.api import DelayRequest
from repro.server import ReproServer, percentile

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from bench_common import environment_metadata, repeat_median  # noqa: E402

#: Machine-readable record tracked across PRs.
_JSON_PATH = pathlib.Path(__file__).parents[1] / "BENCH_server.json"

#: Concurrent clients (the acceptance bar is >= 8).
CLIENTS = 8

#: Full / smoke request counts for the /v1/run hammering.
FULL_REQUESTS = 4000
SMOKE_REQUESTS = 800

#: Distinct request envelopes cycled through the run.
_POOL_SIZE = 32

#: Batch-lifecycle workload (JSONL lines).
FULL_BATCH_LINES = 256
SMOKE_BATCH_LINES = 32


def _request_pool() -> "list[bytes]":
    """Distinct small envelopes, one 4-point sweep each."""
    pool = []
    for index in range(_POOL_SIZE):
        deltas = tuple(
            (float(d),) for d in np.linspace(-40e-12, 40e-12, 4)
            + index * 1e-13)
        pool.append(DelayRequest(deltas=deltas).to_json()
                    .encode("utf-8"))
    return pool


def _connect(host: str, port: int) -> http.client.HTTPConnection:
    """A keep-alive client connection with Nagle disabled (the
    header/body write pair must not wait out a delayed ACK)."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    connection.connect()
    connection.sock.setsockopt(socket.IPPROTO_TCP,
                               socket.TCP_NODELAY, 1)
    return connection


def _client_worker(host: str, port: int, bodies: "list[bytes]",
                   indices: range) -> "tuple[list[float], int]":
    """One keep-alive client; returns (latencies, error count)."""
    connection = _connect(host, port)
    latencies, errors = [], 0
    for index in indices:
        body = bodies[index % len(bodies)]
        start = time.perf_counter()
        try:
            connection.request(
                "POST", "/v1/run", body=body,
                headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            payload = response.read()
            if response.status != 200 or not payload:
                errors += 1
        except OSError:
            errors += 1
            connection.close()
            connection = _connect(host, port)
            continue
        latencies.append(time.perf_counter() - start)
    connection.close()
    return latencies, errors


def _run_batch(host: str, port: int, lines: int) -> dict:
    """Drive one upload -> poll -> download lifecycle; timed."""
    deltas = np.linspace(-50e-12, 50e-12, lines)
    upload = "\n".join(
        DelayRequest(deltas=((float(d),),)).to_json()
        for d in deltas) + "\n"
    connection = http.client.HTTPConnection(host, port, timeout=60)
    start = time.perf_counter()
    connection.request("POST", "/v1/batches", body=upload)
    meta = json.loads(connection.getresponse().read())
    job_id = meta["id"]
    while meta["status"] not in ("completed", "completed_with_errors"):
        time.sleep(0.01)
        connection.request("GET", f"/v1/batches/{job_id}")
        meta = json.loads(connection.getresponse().read())
    connection.request("GET", f"/v1/batches/{job_id}/results")
    records = [json.loads(line) for line in
               connection.getresponse().read().decode().splitlines()]
    elapsed = time.perf_counter() - start
    connection.close()
    ok = sum(1 for record in records if record["status"] == "ok")
    return {"lines": lines, "ok": ok,
            "errors": len(records) - ok,
            "wall_seconds": elapsed,
            "lines_per_second": lines / elapsed,
            "status": meta["status"]}


def measure_server(requests: int, batch_lines: int) -> dict:
    """Serve *requests* from :data:`CLIENTS` concurrent clients."""
    with tempfile.TemporaryDirectory() as job_dir, \
            ReproServer(port=0, job_dir=job_dir) as server:
        bodies = _request_pool()
        # Warm pass: resolve the engine, populate the session memo.
        warm, errors = _client_worker(server.host, server.port,
                                      bodies, range(len(bodies)))
        if errors:
            raise RuntimeError(f"{errors} warmup request(s) failed")
        shards = [range(start, requests, CLIENTS)
                  for start in range(CLIENTS)]
        start = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(CLIENTS) as pool:
            outcomes = list(pool.map(
                lambda indices: _client_worker(
                    server.host, server.port, bodies, indices),
                shards))
        wall = time.perf_counter() - start
        batch = _run_batch(server.host, server.port, batch_lines)
        stats = server.stats_payload()
    latencies = [value for outcome in outcomes for value in outcome[0]]
    errors = sum(outcome[1] for outcome in outcomes)
    served = len(latencies)
    ms = [value * 1e3 for value in latencies]
    return {
        "workload": f"POST /v1/run of {_POOL_SIZE} distinct 4-point "
                    f"DelayRequests from {CLIENTS} concurrent "
                    "keep-alive clients (memo-warm session), plus "
                    "one async batch lifecycle",
        "clients": CLIENTS,
        "requests": served,
        "errors": errors,
        "wall_seconds": wall,
        "rps": served / wall,
        "latency_ms": {"p50": percentile(ms, 50.0),
                       "p99": percentile(ms, 99.0),
                       "mean": sum(ms) / len(ms),
                       "max": max(ms)},
        "batch": batch,
        "server_requests_total": stats["requests"]["total"],
    }


def test_server_throughput_record(benchmark, write_result):
    """Sustained req/s + p50/p99 record -> BENCH_server.json."""
    payload = benchmark.pedantic(
        lambda: repeat_median(
            lambda: measure_server(FULL_REQUESTS, FULL_BATCH_LINES),
            "wall_seconds"),
        rounds=1, iterations=1)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    write_result("server", json.dumps(payload, indent=2,
                                      sort_keys=True))
    benchmark.extra_info["rps"] = round(payload["rps"], 1)
    benchmark.extra_info["p99_ms"] = round(
        payload["latency_ms"]["p99"], 2)
    assert payload["errors"] == 0
    assert payload["batch"]["status"] == "completed"


def main(argv=None) -> int:
    """Script entry point (CI smoke mode without pytest)."""
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced load ({SMOKE_REQUESTS} "
                             "requests) for fast CI checks")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed repetitions; the median run is "
                             "recorded")
    args = parser.parse_args(argv)
    requests = SMOKE_REQUESTS if args.smoke else FULL_REQUESTS
    batch_lines = (SMOKE_BATCH_LINES if args.smoke
                   else FULL_BATCH_LINES)
    payload = repeat_median(
        lambda: measure_server(requests, batch_lines),
        "wall_seconds", repeats=args.repeats)
    payload["environment"] = environment_metadata()
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    print(f"{payload['requests']} requests, {payload['clients']} "
          f"clients: {payload['rps']:.0f} req/s, p50 "
          f"{payload['latency_ms']['p50']:.2f} ms, p99 "
          f"{payload['latency_ms']['p99']:.2f} ms; batch "
          f"{payload['batch']['lines_per_second']:.0f} lines/s")
    print(f"wrote {_JSON_PATH}")
    if payload["errors"]:
        print(f"FAIL: {payload['errors']} request(s) failed",
              file=sys.stderr)
        return 1
    if payload["batch"]["status"] != "completed":
        print(f"FAIL: batch finished {payload['batch']['status']}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
