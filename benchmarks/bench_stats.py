"""Statistical-delay benchmarks: MC throughput + surrogate payoff.

Produces ``BENCH_stats.json`` at the repository root with two
sections, tracked across PRs next to the other ``BENCH_*.json``
records:

* **Monte-Carlo throughput** — samples/second of the vectorized
  sampling path (N samples x M Δ-points flattened into one block-
  kernel engine call, :func:`repro.stats.sample_delays`) against the
  honest scalar baseline: one engine Δ-sweep call per sampled
  parameter set (:func:`repro.engine.blocks.block_delays_loop`).
  Acceptance (ISSUE 9): the vectorized path sustains >= 50x the
  scalar-loop samples/second.
* **Surrogate payoff** — the collocation surrogate's model-
  evaluation count vs the reference MC sample count, and its
  relative mean/σ error against a same-seed MC (shared draws, so
  sampling noise cancels and the comparison isolates approximation
  error).  Acceptance: <= 1 % relative moment error at >= 20x fewer
  model evaluations.

The module doubles as a CI smoke check::

    python benchmarks/bench_stats.py --smoke

runs reduced sample counts (no pytest needed) and exits non-zero if
parity, the speedup floor, or the surrogate accuracy is broken.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.parameters import PAPER_TABLE_I
from repro.engine import get_engine
from repro.engine.blocks import block_delays_loop
from repro.stats import (ParameterDistribution, fit_surrogate,
                         monte_carlo, quantize, sample_delays)
from repro.units import PS

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from bench_common import environment_metadata, repeat_median  # noqa: E402

#: ISSUE acceptance: vectorized vs scalar-loop samples/second.
_SPEEDUP_FLOOR = 50.0
#: ISSUE acceptance: surrogate relative moment error vs same-seed MC.
_MOMENT_TOL = 0.01
#: ISSUE acceptance: MC-samples / surrogate-design-points ratio.
_SAMPLE_RATIO_FLOOR = 20.0
#: Machine-readable record tracked across PRs.
_JSON_PATH = pathlib.Path(__file__).parents[1] / "BENCH_stats.json"

#: Full / smoke Monte-Carlo sample counts (throughput section).
FULL_SAMPLES = 4096
SMOKE_SAMPLES = 256
#: Reference MC size of the surrogate-accuracy section.
FULL_MC = 10000
SMOKE_MC = 3000

#: The benchmark distribution: all six R/C parameters at 8 %
#: relative lognormal spread around the paper's Table I fit.
_DISTRIBUTION = ParameterDistribution(
    PAPER_TABLE_I,
    {name: 0.08 for name in ("r1", "r2", "r3", "r4", "cn", "co")})
#: Δ grid spanning both falling branches (negative / zero / positive
#: separation).
_DELTAS = (-20.0 * PS, 0.0, 20.0 * PS)


def measure_throughput(samples: int, seed: int = 7) -> dict:
    """Time vectorized MC sampling against the scalar per-sample loop.

    Both paths evaluate the identical sample block on the identical
    Δ grid; parity of the quantized matrices is part of the payload.
    """
    engine = get_engine()
    deltas = np.asarray(_DELTAS)
    block = _DISTRIBUTION.sample_block(samples, seed)
    grid = np.broadcast_to(deltas, (samples, deltas.shape[0]))
    # Warm the compiled-kernel/eigen caches out of the timed region.
    sample_delays(_DISTRIBUTION, deltas, samples=8, seed=seed)

    start = time.perf_counter()
    fast = sample_delays(_DISTRIBUTION, deltas, samples=samples,
                         seed=seed)
    vectorized_s = time.perf_counter() - start

    start = time.perf_counter()
    slow = quantize(block_delays_loop(engine, "falling", block, grid))
    scalar_s = time.perf_counter() - start

    return {
        "samples": samples,
        "points": len(_DELTAS),
        "vectorized_seconds": vectorized_s,
        "scalar_seconds": scalar_s,
        "samples_per_second_vectorized": samples / vectorized_s,
        "samples_per_second_scalar": samples / scalar_s,
        "speedup": scalar_s / vectorized_s,
        "parity": bool(np.array_equal(fast, slow)),
    }


def measure_surrogate(mc_samples: int, seed: int = 7) -> dict:
    """Fit the collocation surrogate and score it against a
    same-seed reference MC (shared draws: noise cancels)."""
    start = time.perf_counter()
    reference = monte_carlo(_DISTRIBUTION, _DELTAS,
                            samples=mc_samples, seed=seed)
    mc_s = time.perf_counter() - start

    start = time.perf_counter()
    surrogate = fit_surrogate(_DISTRIBUTION, _DELTAS,
                              use_cache=False)
    fit_s = time.perf_counter() - start
    summary = surrogate.summarize(samples=mc_samples, seed=seed)

    mean_err = float(np.max(np.abs(summary.mean - reference.mean)
                            / reference.mean))
    std_err = float(np.max(np.abs(summary.std - reference.std)
                           / reference.std))
    return {
        "mc_samples": mc_samples,
        "design_points": surrogate.design_points,
        "sample_ratio": mc_samples / surrogate.design_points,
        "mc_seconds": mc_s,
        "fit_seconds": fit_s,
        "mean_rel_error": mean_err,
        "std_rel_error": std_err,
    }


def measure(samples: int, mc_samples: int) -> dict:
    """The full ``BENCH_stats.json`` payload."""
    return {
        "workload": "statistical delay: vectorized MC sampling vs "
                    "scalar loop + collocation surrogate vs "
                    "same-seed MC (NOR2 falling, 6-parameter 8% "
                    "lognormal spread, 3 Δ-points)",
        **measure_throughput(samples),
        "surrogate": measure_surrogate(mc_samples),
        "environment": environment_metadata(),
    }


def test_stats_mc_throughput(benchmark):
    """Vectorized MC sampling >= 50x the scalar per-sample loop."""
    payload = benchmark.pedantic(
        lambda: repeat_median(
            lambda: measure_throughput(FULL_SAMPLES),
            "vectorized_seconds", repeats=3),
        rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = round(payload["speedup"], 1)
    assert payload["parity"]
    assert payload["speedup"] >= _SPEEDUP_FLOOR


def test_stats_surrogate_accuracy(benchmark):
    """Surrogate moments within 1 % of a same-seed 10k MC at
    >= 20x fewer model evaluations."""
    payload = benchmark.pedantic(
        lambda: measure_surrogate(FULL_MC), rounds=1, iterations=1)
    benchmark.extra_info["sample_ratio"] = round(
        payload["sample_ratio"], 1)
    assert payload["sample_ratio"] >= _SAMPLE_RATIO_FLOOR
    assert payload["mean_rel_error"] <= _MOMENT_TOL
    assert payload["std_rel_error"] <= _MOMENT_TOL


def main(argv=None) -> int:
    """Script entry point (CI smoke mode without pytest)."""
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced sample counts ({SMOKE_SAMPLES}"
                             f" MC / {SMOKE_MC} reference) for fast "
                             "CI checks")
    parser.add_argument("--samples", type=int, default=None,
                        help="override the throughput sample count")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed runs; the median (by vectorized "
                             "wall time) is recorded (default 1)")
    args = parser.parse_args(argv)
    samples = args.samples or (SMOKE_SAMPLES if args.smoke
                               else FULL_SAMPLES)
    mc_samples = SMOKE_MC if args.smoke else FULL_MC
    payload = repeat_median(
        lambda: measure(samples, mc_samples),
        "vectorized_seconds", repeats=args.repeats)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    surrogate = payload["surrogate"]
    print(f"{samples} samples x {payload['points']} Δ: vectorized "
          f"{payload['samples_per_second_vectorized']:.0f} "
          f"samples/s, scalar "
          f"{payload['samples_per_second_scalar']:.0f} samples/s, "
          f"speedup {payload['speedup']:.1f}x, parity "
          f"{payload['parity']}")
    print(f"surrogate: {surrogate['design_points']} evaluations vs "
          f"{surrogate['mc_samples']} MC samples "
          f"({surrogate['sample_ratio']:.1f}x fewer), mean err "
          f"{surrogate['mean_rel_error'] * 100:.3f}%, std err "
          f"{surrogate['std_rel_error'] * 100:.3f}%")
    print(f"wrote {_JSON_PATH}")
    if not payload["parity"]:
        print("FAIL: vectorized/scalar sample parity broken",
              file=sys.stderr)
        return 1
    floor = 5.0 if (args.smoke or samples < FULL_SAMPLES) \
        else _SPEEDUP_FLOOR
    if payload["speedup"] < floor:
        print(f"FAIL: speedup {payload['speedup']:.1f}x below "
              f"{floor}x", file=sys.stderr)
        return 1
    if surrogate["sample_ratio"] < _SAMPLE_RATIO_FLOOR:
        print(f"FAIL: sample ratio {surrogate['sample_ratio']:.1f}x "
              f"below {_SAMPLE_RATIO_FLOOR}x", file=sys.stderr)
        return 1
    if (surrogate["mean_rel_error"] > _MOMENT_TOL
            or surrogate["std_rel_error"] > _MOMENT_TOL):
        print("FAIL: surrogate moment error above "
              f"{_MOMENT_TOL * 100:.0f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
