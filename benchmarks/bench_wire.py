"""Wire-aware STA benchmarks: corner-sweep speedup through RC arcs.

Produces ``BENCH_wire.json`` at the repository root: wall time of a
1000-corner vectorized sweep against the scalar per-corner loop on
the wired NOR fanout circuit (``tree_wire`` — two gates behind an
RC fanout tree), tracked across PRs next to ``BENCH_sta.json``.

Wire arcs are Δ-independent constants, so the sweep's cost is pure
gate-model evaluation; the vectorized path must keep its >= 10x
advantage with wire arcs interleaved in the graph.  A second record
key times the analytic corner scaling of the reduced-order wire
model (``scaled_delays``) against re-reducing the scaled tree per
corner — the closed-form law that makes wire corners free.

The module doubles as a CI smoke check::

    python benchmarks/bench_wire.py --smoke

runs a reduced sweep (no pytest needed) and exits non-zero if parity
or the speedup machinery is broken.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.api import Session
from repro.sta import demo_corners, sweep_corners, sweep_corners_scalar
from repro.wire import (WireSegment, WireTree, reduce_tree,
                        scaled_delays)

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from bench_common import repeat_median  # noqa: E402

#: ISSUE acceptance: vectorized vs scalar on the full corner count.
_SPEEDUP_FLOOR = 10.0
#: Machine-readable record tracked across PRs.
_JSON_PATH = pathlib.Path(__file__).parents[1] / "BENCH_wire.json"

#: Full / smoke corner counts.
FULL_CORNERS = 1000
SMOKE_CORNERS = 96


def measure_sweep(corners: int, seed: int = 0) -> dict:
    """Time the vectorized wired sweep against the scalar loop.

    Returns the ``BENCH_wire.json`` payload (seconds, speedup, and
    the parity of the two results).
    """
    graph = Session().timing_graph("tree_wire")
    params, arrivals = demo_corners(corners, list(graph.inputs),
                                    seed=seed)
    # Warm the engine's per-parameter-set caches: steady-state
    # throughput is the quantity of interest.
    sweep_corners(graph, params=params[:8],
                  arrivals={key: values[:8]
                            for key, values in arrivals.items()})

    start = time.perf_counter()
    fast = sweep_corners(graph, params=params, arrivals=arrivals)
    vectorized_s = time.perf_counter() - start

    start = time.perf_counter()
    slow = sweep_corners_scalar(graph, params=params,
                                arrivals=arrivals)
    scalar_s = time.perf_counter() - start

    parity = 0.0
    for node, values in fast.arrivals.items():
        other = slow.arrivals[node]
        finite = np.isfinite(values) & np.isfinite(other)
        if finite.any():
            parity = max(parity, float(np.max(np.abs(
                values[finite] - other[finite]))))

    payload = {
        "workload": "wire-aware STA corner sweep (NOR fanout behind "
                    "an RC tree, 4 parameter variants x random "
                    "arrivals)",
        "corners": corners,
        "vectorized_seconds": vectorized_s,
        "scalar_seconds": scalar_s,
        "speedup": scalar_s / vectorized_s,
        "corners_per_second_vectorized": corners / vectorized_s,
        "parity_s": parity,
    }
    payload.update(measure_scaling(corners, seed=seed))
    return payload


def measure_scaling(corners: int, seed: int = 0) -> dict:
    """Closed-form ``scaled_delays`` vs per-corner re-reduction."""
    tree = WireTree.fanout(branches=2, stem=1, segments=2,
                           load=0.2e-15)
    timing = reduce_tree(tree, model="two_pole")
    rng = np.random.default_rng(seed)
    r_scale = rng.uniform(0.8, 1.2, corners)
    c_scale = rng.uniform(0.8, 1.2, corners)

    start = time.perf_counter()
    fast = scaled_delays(timing, r_scale, c_scale)
    analytic_s = time.perf_counter() - start

    start = time.perf_counter()
    rows = []
    for rs, cs in zip(r_scale, c_scale):
        scaled = WireTree(
            segments=tuple(
                WireSegment(s.name, s.parent, s.resistance * rs,
                            s.capacitance * cs, s.load * cs)
                for s in tree.segments),
            sinks=tree.sinks)
        rows.append(reduce_tree(scaled, model="two_pole").delays())
    reduce_s = time.perf_counter() - start

    parity = float(np.max(np.abs(fast - np.asarray(rows))))
    return {
        "scaling_analytic_seconds": analytic_s,
        "scaling_reduce_seconds": reduce_s,
        "scaling_speedup": reduce_s / analytic_s,
        "scaling_parity_s": parity,
    }


def test_wire_corner_sweep_speedup(benchmark):
    """1000-corner wired sweep, vectorized vs scalar (>= 10x)."""
    payload = benchmark.pedantic(
        lambda: repeat_median(lambda: measure_sweep(FULL_CORNERS),
                              "vectorized_seconds", repeats=3),
        rounds=1, iterations=1)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    benchmark.extra_info["speedup"] = round(payload["speedup"], 1)
    assert payload["parity_s"] <= 1e-15
    assert payload["scaling_parity_s"] <= 1e-15
    assert payload["speedup"] >= _SPEEDUP_FLOOR


def main(argv=None) -> int:
    """Script entry point (CI smoke mode without pytest)."""
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced sweep ({SMOKE_CORNERS} "
                             "corners) for fast CI checks")
    parser.add_argument("--corners", type=int, default=None,
                        help="override the corner count")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed runs; the median (by vectorized "
                             "wall time) is recorded (default 1)")
    args = parser.parse_args(argv)
    corners = args.corners or (SMOKE_CORNERS if args.smoke
                               else FULL_CORNERS)
    payload = repeat_median(lambda: measure_sweep(corners),
                            "vectorized_seconds",
                            repeats=args.repeats)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    print(f"{corners} wired corners: vectorized "
          f"{payload['vectorized_seconds'] * 1e3:.1f} ms, scalar "
          f"{payload['scalar_seconds'] * 1e3:.1f} ms, speedup "
          f"{payload['speedup']:.1f}x, parity "
          f"{payload['parity_s']:.2e} s; wire scaling "
          f"{payload['scaling_speedup']:.0f}x")
    print(f"wrote {_JSON_PATH}")
    if payload["parity_s"] > 1e-15:
        print("FAIL: vectorized/scalar parity broken",
              file=sys.stderr)
        return 1
    if payload["scaling_parity_s"] > 1e-15:
        print("FAIL: analytic wire scaling diverges from "
              "re-reduction", file=sys.stderr)
        return 1
    floor = 2.0 if (args.smoke or corners < FULL_CORNERS) \
        else _SPEEDUP_FLOOR
    if payload["speedup"] < floor:
        print(f"FAIL: speedup {payload['speedup']:.1f}x below "
              f"{floor}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
