"""Observability-overhead benchmarks: the cost of the span layer.

The observability layer (:mod:`repro.obs`) instruments every hot
path in the package, so its *disabled* cost must be no-op-level and
its *enabled* cost must stay a small fraction of real work.  Three
quantities are measured:

* **disabled span call** — ``repro.obs.trace.span(...)`` entered and
  exited with tracing off: one activation check returning a shared
  no-op singleton;
* **enabled span call** — the same with an in-memory tracer active:
  id assignment, parentage, ring append;
* **enabled ratio** — a warm uncached 16-point
  :class:`~repro.api.DelayRequest` dispatched untraced vs traced
  (capture + spans + timings attach): untraced time / traced time,
  so 1.0 means tracing is free and the committed floor guards the
  worst acceptable slowdown.

The record is written to ``BENCH_obs.json`` at the repository root
and guarded by ``benchmarks/check_perf_floor.py``.

The module doubles as a CI smoke check::

    python benchmarks/bench_obs.py --smoke
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.api import DelayRequest, Session
from repro.obs import trace

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from bench_common import environment_metadata  # noqa: E402

#: A disabled span call must stay no-op-level (one module check).
_DISABLED_CEILING_S = 5e-6
#: Traced dispatch may cost at most this factor of untraced
#: (ratio = untraced/traced; 0.5 means "at most 2x slower").
_RATIO_FLOOR = 0.5
#: Machine-readable record tracked across PRs.
_JSON_PATH = pathlib.Path(__file__).parents[1] / "BENCH_obs.json"

#: Full / smoke repeat counts.
FULL_REPEATS = 2000
SMOKE_REPEATS = 200

#: Same probe request as ``bench_api.py``: small on purpose, so the
#: observability overhead is visible against the dispatch seam.
_REQUEST = DelayRequest(
    deltas=tuple((float(d),) for d in np.linspace(-40e-12, 40e-12,
                                                  16)))


def _span_call_seconds(calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        with trace.span("bench.probe", n=2):
            pass
    return (time.perf_counter() - start) / calls


def _dispatch_seconds(session: Session, repeats: int) -> float:
    session.run(_REQUEST)  # warm engine + kernel caches
    start = time.perf_counter()
    for _ in range(repeats):
        session.run(_REQUEST)
    return (time.perf_counter() - start) / repeats


def measure_obs(repeats: int) -> dict:
    """Time the disabled/enabled regimes; returns the JSON payload."""
    span_calls = repeats * 25
    trace.configure(None)
    try:
        disabled_s = _span_call_seconds(span_calls)
        untraced_s = _dispatch_seconds(Session(cache=False), repeats)

        tracer = trace.configure(trace.Tracer())
        enabled_s = _span_call_seconds(span_calls)
        traced_s = _dispatch_seconds(Session(cache=False), repeats)
        spans_recorded = len(tracer.records())
    finally:
        trace.unconfigure()

    return {
        "workload": "module-level span calls (tracing off/on) and a "
                    "warm uncached 16-point DelayRequest dispatched "
                    "untraced vs traced",
        "repeats": repeats,
        "disabled_span_seconds_per_call": disabled_s,
        "enabled_span_seconds_per_call": enabled_s,
        "untraced_seconds_per_request": untraced_s,
        "traced_seconds_per_request": traced_s,
        "enabled_ratio": untraced_s / traced_s,
        "spans_recorded": spans_recorded,
        "environment": environment_metadata(),
    }


def test_obs_overhead_record(benchmark, write_result):
    """Disabled/enabled overhead record -> BENCH_obs.json."""
    payload = benchmark.pedantic(
        lambda: measure_obs(FULL_REPEATS), rounds=1, iterations=1)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    write_result("obs", json.dumps(payload, indent=2,
                                   sort_keys=True))
    benchmark.extra_info["disabled_ns"] = round(
        payload["disabled_span_seconds_per_call"] * 1e9, 1)
    assert payload["disabled_span_seconds_per_call"] \
        < _DISABLED_CEILING_S
    assert payload["enabled_ratio"] >= _RATIO_FLOOR
    assert payload["spans_recorded"] > 0


def main(argv=None) -> int:
    """Script entry point (CI smoke mode without pytest)."""
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced repeats ({SMOKE_REPEATS}) "
                             "for fast CI checks")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override the repeat count")
    args = parser.parse_args(argv)
    repeats = args.repeats or (SMOKE_REPEATS if args.smoke
                               else FULL_REPEATS)
    payload = measure_obs(repeats)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    print(f"disabled span "
          f"{payload['disabled_span_seconds_per_call'] * 1e9:.0f} "
          f"ns/call, enabled span "
          f"{payload['enabled_span_seconds_per_call'] * 1e9:.0f} "
          f"ns/call, untraced "
          f"{payload['untraced_seconds_per_request'] * 1e6:.1f} "
          f"us/req, traced "
          f"{payload['traced_seconds_per_request'] * 1e6:.1f} "
          f"us/req (ratio {payload['enabled_ratio']:.2f}x)")
    print(f"wrote {_JSON_PATH}")
    if payload["disabled_span_seconds_per_call"] \
            >= _DISABLED_CEILING_S:
        print(f"FAIL: disabled span call "
              f"{payload['disabled_span_seconds_per_call'] * 1e9:.0f}"
              f" ns above "
              f"{_DISABLED_CEILING_S * 1e9:.0f} ns ceiling",
              file=sys.stderr)
        return 1
    if payload["enabled_ratio"] < _RATIO_FLOOR:
        print(f"FAIL: traced dispatch ratio "
              f"{payload['enabled_ratio']:.2f}x below "
              f"{_RATIO_FLOOR:.2f}x floor", file=sys.stderr)
        return 1
    if payload["spans_recorded"] == 0:
        print("FAIL: traced dispatch recorded no spans",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
