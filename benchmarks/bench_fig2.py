"""Fig. 2 — analog MIS characterization of the NOR gate.

Regenerates the paper's Fig. 2b/2d delay-vs-Δ series on the 15 nm card
(plus the 65 nm cross-check of the paper's footnote 2) and benchmarks
the analog sweep kernel.

Paper values for comparison: falling MIS speed-up −28.01 % / −28.43 %
at Δ = 0; rising slow-down peak +2.08 % / +7.26 %; SIS delays ≈ 38 ps
(falling) and ≈ 53–55 ps (rising).
"""

from repro.analysis.characterization import (characterize_direction,
                                             nor_mis_delay)
from repro.analysis.experiments import experiment_fig2
from repro.spice.technology import BULK65, FINFET15
from repro.units import PS, to_ps


def test_fig2_characterization(benchmark, write_result):
    """Full Fig. 2 reproduction; kernel = one falling Δ sweep."""
    deltas = tuple(float(d) * PS for d in (-60, -30, -12, 0, 12, 30, 60))

    benchmark.pedantic(
        lambda: characterize_direction(FINFET15, "falling", deltas),
        rounds=1, iterations=1)

    result = experiment_fig2(FINFET15)
    write_result("fig2_finfet15", result.text)

    ch = result.characterization
    fall_minus, fall_plus = ch.falling_mis_percent
    rise_minus, rise_plus = ch.rising_peak_percent
    benchmark.extra_info.update({
        "falling_mis_vs_minus_inf_pct": round(fall_minus, 2),
        "falling_mis_vs_plus_inf_pct": round(fall_plus, 2),
        "rising_peak_vs_minus_inf_pct": round(rise_minus, 2),
        "rising_peak_vs_plus_inf_pct": round(rise_plus, 2),
        "paper_falling_mis_pct": (-28.01, -28.43),
        "paper_rising_peak_pct": (2.08, 7.26),
    })

    # Shape assertions matching the paper's claims.
    assert ch.sis_falling.is_speedup
    assert -36.0 < fall_minus < -22.0
    assert rise_plus > 2.0
    assert ch.sis_rising.minus_inf > ch.sis_rising.plus_inf
    assert ch.sis_falling.plus_inf > ch.sis_falling.minus_inf


def test_fig2_crosscheck_65nm(benchmark, write_result):
    """Paper footnote 2: the 65 nm technology confirms the shape."""
    deltas = tuple(float(d) * PS for d in (-200, -60, 0, 60, 200))

    def kernel():
        return characterize_direction(BULK65, "falling", deltas)

    curve = benchmark.pedantic(kernel, rounds=1, iterations=1)
    ch = curve.characteristic()

    rising_zero = nor_mis_delay(BULK65, 0.0, "rising")
    rising_sis = nor_mis_delay(BULK65, 200 * PS, "rising")
    lines = [
        "65 nm cross-check (BULK65, VDD = 1.2 V)",
        f"falling: {ch.describe('d_fall')}",
        f"  MIS speed-up {ch.mis_effect_vs_minus_inf:+.1f} % "
        "(paper 15 nm: -28 %)",
        f"rising: d(0) = {to_ps(rising_zero):.1f} ps vs "
        f"d(+inf) = {to_ps(rising_sis):.1f} ps (slow-down "
        f"{100 * (rising_zero / rising_sis - 1):+.1f} %)",
    ]
    write_result("fig2_bulk65", "\n".join(lines))

    benchmark.extra_info["falling_mis_pct"] = round(
        ch.mis_effect_vs_minus_inf, 2)
    assert ch.is_speedup
    assert rising_zero > rising_sis  # slow-down survives the node change
    assert ch.zero > 40 * PS  # distinctly slower technology
