"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md §4).  The rendered rows are written to
``benchmarks/results/<name>.txt`` so that a benchmark run leaves the
full paper-vs-measured record on disk, and key numbers are attached to
the pytest-benchmark ``extra_info`` of each timing.

Workload sizes follow the paper where that is affordable and are
reduced otherwise; the environment variables

* ``REPRO_BENCH_TRANSITIONS`` (default 60; paper: 500/250)
* ``REPRO_BENCH_REPETITIONS`` (default 2; paper: 20)

scale the Fig. 7 study back up.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Fig. 7 workload scaling (paper: 500/250 transitions, 20 repetitions).
BENCH_TRANSITIONS = int(os.environ.get("REPRO_BENCH_TRANSITIONS", "60"))
BENCH_REPETITIONS = int(os.environ.get("REPRO_BENCH_REPETITIONS", "2"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Callable that stores a rendered experiment next to the bench."""

    def write(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return write


@pytest.fixture(scope="session")
def characterization():
    """Full-fidelity analog characterization of the 15 nm NOR (Fig. 2).

    Shared across benches; the per-figure benchmarks time their own
    kernels, not this fixture.
    """
    from repro.analysis.characterization import characterize_nor
    from repro.spice.technology import FINFET15

    return characterize_nor(FINFET15)


@pytest.fixture(scope="session")
def delta_fit(characterization):
    """Δ-protocol fit (Table I convention)."""
    from repro.analysis.fitting import fit_from_characterization

    return fit_from_characterization(characterization)


@pytest.fixture(scope="session")
def toggle_fit(characterization):
    """Toggle-protocol fit (Fig. 7's 'empirically optimal' route)."""
    from repro.analysis.fitting import fit_from_characterization

    return fit_from_characterization(characterization,
                                     protocol="toggle")
