"""n-input NOR generalization — paper Section VII future work.

Benchmarks the generalized (eigendecomposition-based) model, verifies
the exact n = 2 reduction to the paper's closed-form model, and probes
the 3-input MIS landscape: the falling speed-up deepens with every
additional simultaneously-switching input.
"""

import math

import pytest

from repro.core import HybridNorModel, PAPER_TABLE_I
from repro.core.multi_input import (GeneralizedNorModel,
                                    GeneralizedNorParameters)
from repro.units import PS, to_ps


def test_generalized_model(benchmark, write_result):
    gen3 = GeneralizedNorModel(GeneralizedNorParameters(
        r_pullup=(37e3, 45e3, 45e3),
        r_pulldown=(45e3, 47e3, 49e3),
        c_internal=(60e-18, 60e-18),
        co=617e-18, vdd=0.8, delta_min=18 * PS))

    def kernel():
        total = gen3.delay_falling([0.0, 0.0, 0.0])
        total += gen3.delay_falling([0.0, 600 * PS, 600 * PS])
        total += gen3.delay_rising([0.0, 300 * PS, 600 * PS])
        return total

    benchmark(kernel)

    far = 600 * PS
    one = gen3.delay_falling([0.0, far, far])
    two = gen3.delay_falling([0.0, 0.0, far])
    three = gen3.delay_falling([0.0, 0.0, 0.0])
    rail_first = gen3.delay_rising([0.0, 300 * PS, far])
    rail_last = gen3.delay_rising([far, 300 * PS, 0.0])

    # n = 2 reduction check against the closed-form paper model.
    gen2 = GeneralizedNorModel(
        GeneralizedNorParameters.from_two_input(PAPER_TABLE_I))
    ref2 = HybridNorModel(PAPER_TABLE_I)
    reduction_err = abs(gen2.delay_falling([0.0, 10 * PS])
                        - ref2.delay_falling(10 * PS))

    parallel = 1.0 / (1 / 45e3 + 1 / 47e3 + 1 / 49e3)
    closed_form = math.log(2.0) * 617e-18 * parallel + 18 * PS
    lines = [
        "3-input NOR MIS landscape (generalized hybrid model)",
        f"falling, 1 input switching : {to_ps(one):.2f} ps",
        f"falling, 2 inputs together : {to_ps(two):.2f} ps",
        f"falling, 3 inputs together : {to_ps(three):.2f} ps "
        f"(closed form {to_ps(closed_form):.2f} ps)",
        f"rising, rail-side first    : {to_ps(rail_first):.2f} ps",
        f"rising, rail-side last     : {to_ps(rail_last):.2f} ps",
        f"n=2 reduction error vs closed-form model: "
        f"{reduction_err / PS:.2e} ps",
    ]
    write_result("multi_input", "\n".join(lines))

    benchmark.extra_info.update({
        "fall_1_ps": round(to_ps(one), 2),
        "fall_2_ps": round(to_ps(two), 2),
        "fall_3_ps": round(to_ps(three), 2),
    })
    assert three < two < one
    assert three == pytest.approx(closed_form, rel=1e-6)
    assert rail_first < rail_last
    assert reduction_err < 1e-5 * PS
