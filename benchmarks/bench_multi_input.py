"""n-input NOR benchmarks: Δ-vector batch speedup + MIS landscape.

Two records are produced:

* ``benchmarks/results/multi_input.txt`` — the rendered
  :func:`repro.analysis.experiments.experiment_multi_input` summary
  (n = 2 reduction, MIS landscape, batch parity);
* ``BENCH_multi_input.json`` at the repository root — wall time of a
  dense NOR3 Δ-vector grid through the batched eigen-solver against
  the scalar per-Δ-vector loop, tracked across PRs next to
  ``BENCH_runtime.json`` / ``BENCH_sta.json`` with the same schema
  (workload, per-contender seconds, speedup, parity).

Acceptance (ISSUE 4): batched n-input evaluation runs at least 10x
faster than the scalar per-Δ loop on the NOR3 grid sweep, at parity
``<= 1e-15 s``.

The module doubles as a CI smoke check::

    python benchmarks/bench_multi_input.py --smoke

runs a reduced grid (no pytest needed) and exits non-zero if parity
or the speedup machinery is broken.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.api import MultiInputRequest, Session
from repro.core.multi_input import delta_vector_grid

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from bench_common import repeat_median  # noqa: E402

#: ISSUE acceptance: batched vs scalar on the full grid.
_SPEEDUP_FLOOR = 10.0
#: Batched-vs-scalar agreement bound (both are exact solvers).
_PARITY_TOL = 1e-15
#: Machine-readable record tracked across PRs.
_JSON_PATH = pathlib.Path(__file__).parents[1] / "BENCH_multi_input.json"

#: Full / smoke per-axis grid sizes (the grid is (n−1)-dimensional).
FULL_AXIS_POINTS = 73
SMOKE_AXIS_POINTS = 21
#: Scalar probes: the full scalar grid would dominate the benchmark's
#: runtime, so the loop is timed on a subset and extrapolated per
#: point (each scalar evaluation is independent).
SCALAR_PROBES = 128


def measure_batch(axis_points: int, num_inputs: int = 3) -> dict:
    """Time the batched Δ-vector sweep against the scalar loop.

    Returns the ``BENCH_multi_input.json`` payload (seconds,
    speedup, and the parity of the two solvers on the probed rows).
    """
    session = Session(engine="vectorized")
    params = session.generalized(num_inputs)
    rows = delta_vector_grid(params, axis_points)

    vectorized = session.engine
    reference = Session(engine="reference").engine
    # Warm the per-(params, input-state) eigendecomposition caches:
    # steady-state throughput is the quantity of interest.
    vectorized.delays_falling_n(params, rows[:2])
    reference.delays_falling_n(params, rows[:2])

    start = time.perf_counter()
    batched = vectorized.delays_falling_n(params, rows)
    batched_rise = vectorized.delays_rising_n(params, rows)
    batched_s = time.perf_counter() - start

    probes = min(SCALAR_PROBES, rows.shape[0])
    start = time.perf_counter()
    scalar = reference.delays_falling_n(params, rows[:probes])
    scalar_rise = reference.delays_rising_n(params, rows[:probes])
    scalar_probe_s = time.perf_counter() - start
    scalar_s = scalar_probe_s * (rows.shape[0] / probes)

    parity = max(
        float(np.max(np.abs(batched[:probes] - scalar))),
        float(np.max(np.abs(batched_rise[:probes] - scalar_rise))))

    return {
        "workload": f"NOR{num_inputs} Δ-vector grid sweep (falling "
                    "+ rising, batched eigen-solver vs scalar "
                    "per-Δ-vector loop)",
        "grid_vectors": int(rows.shape[0]),
        "scalar_probes": int(probes),
        "batched_seconds": batched_s,
        "scalar_seconds": scalar_s,
        "speedup": scalar_s / batched_s,
        "vectors_per_second_batched": 2.0 * rows.shape[0] / batched_s,
        "parity_s": parity,
    }


def test_multi_input_record(benchmark, write_result):
    """Rendered n-input generalization record (landscape + parity)."""
    session = Session()
    result = benchmark.pedantic(
        lambda: session.run(MultiInputRequest()), rounds=1,
        iterations=1)
    write_result("multi_input", result.text)
    benchmark.extra_info["reduction_error_s"] = result.reduction_error
    assert result.reduction_error <= 1e-12
    assert result.batch_error <= _PARITY_TOL


def test_multi_input_batch_speedup(benchmark, write_result):
    """Dense NOR3 Δ-grid: batched vs scalar loop (>= 10x)."""
    payload = benchmark.pedantic(
        lambda: repeat_median(
            lambda: measure_batch(FULL_AXIS_POINTS),
            "batched_seconds", repeats=3),
        rounds=1, iterations=1)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    benchmark.extra_info["speedup"] = round(payload["speedup"], 1)
    assert payload["parity_s"] <= _PARITY_TOL
    assert payload["speedup"] >= _SPEEDUP_FLOOR


def main(argv=None) -> int:
    """Script entry point (CI smoke mode without pytest)."""
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced grid ({SMOKE_AXIS_POINTS}^2 "
                             "Δ-vectors) for fast CI checks")
    parser.add_argument("--axis-points", type=int, default=None,
                        help="override the per-axis grid size")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed runs; the median (by batched "
                             "wall time) is recorded (default 1)")
    args = parser.parse_args(argv)
    axis_points = args.axis_points or (
        SMOKE_AXIS_POINTS if args.smoke else FULL_AXIS_POINTS)
    payload = repeat_median(lambda: measure_batch(axis_points),
                            "batched_seconds", repeats=args.repeats)
    _JSON_PATH.write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    print(f"{payload['grid_vectors']} Δ-vectors: batched "
          f"{payload['batched_seconds'] * 1e3:.1f} ms, scalar "
          f"{payload['scalar_seconds'] * 1e3:.1f} ms "
          f"({payload['scalar_probes']} probes extrapolated), "
          f"speedup {payload['speedup']:.1f}x, parity "
          f"{payload['parity_s']:.2e} s")
    print(f"wrote {_JSON_PATH}")
    if payload["parity_s"] > _PARITY_TOL:
        print("FAIL: batched/scalar parity broken", file=sys.stderr)
        return 1
    floor = 2.0 if (args.smoke
                    or axis_points < FULL_AXIS_POINTS) \
        else _SPEEDUP_FLOOR
    if payload["speedup"] < floor:
        print(f"FAIL: speedup {payload['speedup']:.1f}x below "
              f"{floor}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
