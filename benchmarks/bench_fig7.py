"""Fig. 7 — normalized deviation areas of four delay models.

The paper's headline accuracy result: on random traces the hybrid model
with δ_min clearly beats inertial delay and the Exp-Channel for short
pulses (0.52/0.47 normalized) and stays comparable for broad pulses;
the variant without δ_min and the Exp-Channel degrade.

The workload is scaled by REPRO_BENCH_TRANSITIONS/REPRO_BENCH_REPETITIONS
(defaults 60/2; the paper uses 500/20 — set the variables to reproduce
the full-size study).
"""

from conftest import BENCH_REPETITIONS, BENCH_TRANSITIONS

from repro.analysis.experiments import experiment_fig7
from repro.spice.technology import FINFET15


def test_fig7_accuracy_study(benchmark, write_result, characterization,
                             toggle_fit):
    def kernel():
        return experiment_fig7(FINFET15,
                               repetitions=BENCH_REPETITIONS,
                               transitions=BENCH_TRANSITIONS,
                               seed=1,
                               characterization=characterization,
                               fit=toggle_fit)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)

    paper = {
        "100/50 - LOCAL": {"exp": 0.71, "hm_no_dmin": 1.44,
                           "hm": 0.52},
        "200/100 - LOCAL": {"exp": 0.72, "hm_no_dmin": 1.96,
                            "hm": 0.47},
        "2000/1000 - GLOBAL": {"exp": 1.60, "hm_no_dmin": 1.15,
                               "hm": 0.97},
        "5000/5 - GLOBAL": {"exp": 1.65, "hm_no_dmin": 1.01,
                            "hm": 1.01},
    }
    lines = [result.text, "", "paper Fig. 7 values:"]
    for label, values in paper.items():
        lines.append(f"  {label}: inertial 1.00, exp {values['exp']}, "
                     f"HM w/o {values['hm_no_dmin']}, "
                     f"HM w/ {values['hm']}")
    write_result("fig7", "\n".join(lines))

    for accuracy in result.results:
        benchmark.extra_info[accuracy.config.label] = {
            key: round(value, 3)
            for key, value in accuracy.normalized.items()}

    by_label = {acc.config.label: acc.normalized
                for acc in result.results}

    def mean_over_configs(key):
        return sum(norm[key] for norm in by_label.values()) \
            / len(by_label)

    # Headline claims (shape, not absolute numbers; at the reduced
    # default workload individual configs carry sampling noise, so the
    # per-config claims use generous margins and the strict ordering is
    # asserted on the across-config mean):
    # 1. HM with δ_min beats the inertial baseline on short pulses
    #    (paper: 0.52 / 0.47).
    assert by_label["100/50 - LOCAL"]["hm"] < 1.0
    assert by_label["200/100 - LOCAL"]["hm"] < 1.0
    # 2. Without δ_min the hybrid model is worse than with it where the
    #    delay matching matters (paper Fig. 8 / Fig. 7).
    for label in ("2000/1000 - GLOBAL", "5000/5 - GLOBAL"):
        assert by_label[label]["hm_no_dmin"] > by_label[label]["hm"]
    assert mean_over_configs("hm_no_dmin") > mean_over_configs("hm")
    # 3. The Exp-Channel degrades on broad pulses (paper: 1.60/1.65) —
    #    the single-history channel cannot know which input switched.
    assert by_label["5000/5 - GLOBAL"]["exp"] > 1.2
    # 4. HM with δ_min never degrades badly vs inertial on broad pulses
    #    (paper: 0.97/1.01).
    assert by_label["5000/5 - GLOBAL"]["hm"] < 1.3
    # 5. Overall, HM with δ_min is the most accurate model.
    assert mean_over_configs("hm") == min(
        mean_over_configs(key) for key in ("inertial", "exp",
                                           "hm_no_dmin", "hm"))
