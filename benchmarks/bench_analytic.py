"""Eqs. (8)–(12) — analytic characteristic delays vs exact crossings.

Benchmarks the closed-form evaluation speed (the reason the paper
derives these formulas at all: model parametrization needs cheap
characteristic-delay evaluation) and records the accuracy table.
"""

from repro.analysis.experiments import experiment_analytic
from repro.core.analytic import (delta_falling_minus_inf,
                                 delta_falling_plus_inf,
                                 delta_falling_zero, delta_rising)
from repro.core.hybrid_model import HybridNorModel
from repro.core.parameters import PAPER_TABLE_I
from repro.units import PS, to_ps


def test_analytic_formulas(benchmark, write_result):
    params = PAPER_TABLE_I

    def kernel():
        total = delta_falling_zero(params)
        total += delta_falling_minus_inf(params)
        total += delta_falling_plus_inf(params)
        for delta in (-30 * PS, 0.0, 30 * PS):
            total += delta_rising(params, delta, 0.0)
        return total

    benchmark(kernel)

    result = experiment_analytic(params)
    write_result("analytic", result.text)

    worst = max(abs(a - b) for _n, a, b in result.rows)
    benchmark.extra_info["worst_error_fs"] = round(to_ps(worst) * 1e3,
                                                   3)
    assert worst < 0.05 * PS


def test_exact_crossing_solver(benchmark):
    """Reference cost of the exact trajectory-based computation."""
    model = HybridNorModel(PAPER_TABLE_I)

    def kernel():
        total = model.delay_falling(10 * PS)
        total += model.delay_rising(10 * PS, 0.0)
        return total

    benchmark(kernel)


def test_vectorized_curve_evaluation(benchmark):
    """Batched closed-form sweep vs the scalar reference path.

    The analytic formulas exist because parametrization needs cheap
    characteristic-delay evaluation; the vectorized engine extends
    that economy to whole MIS curves.
    """
    import time

    import numpy as np

    from repro.engine import get_engine

    deltas = np.linspace(-80 * PS, 80 * PS, 2048)
    vectorized = get_engine("vectorized")
    reference = get_engine("reference")
    for engine in (vectorized, reference):
        engine.delays_falling(PAPER_TABLE_I, deltas[:2])  # warm caches

    curve = benchmark(
        lambda: vectorized.delays_falling(PAPER_TABLE_I, deltas))
    start = time.perf_counter()
    vectorized.delays_falling(PAPER_TABLE_I, deltas)
    vectorized_seconds = time.perf_counter() - start
    start = time.perf_counter()
    exact = reference.delays_falling(PAPER_TABLE_I, deltas)
    reference_seconds = time.perf_counter() - start

    benchmark.extra_info["reference_seconds"] = round(
        reference_seconds, 4)
    benchmark.extra_info["speedup_vs_reference"] = round(
        reference_seconds / max(vectorized_seconds, 1e-12), 1)
    assert float(np.max(np.abs(curve - exact))) <= 1e-12
