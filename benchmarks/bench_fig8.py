"""Fig. 8 — falling-delay matching with and without the pure delay.

The with-δ_min curve overlays the analog reference; the without-δ_min
fit is structurally unable to match (falling ratio-2 theorem) and
deviates across the whole MIS window.
"""

from repro.analysis.experiments import experiment_fig8
from repro.analysis.fitting import fit_from_characterization
from repro.core.hybrid_model import HybridNorModel
from repro.units import PS, to_ps


def test_fig8_pure_delay_matters(benchmark, write_result,
                                 characterization, delta_fit):
    analog = characterization.falling
    no_dmin_fit = fit_from_characterization(characterization,
                                            delta_min=0.0)

    def kernel():
        with_curve = HybridNorModel(
            delta_fit.params).falling_curve(analog.deltas)
        without_curve = HybridNorModel(
            no_dmin_fit.params).falling_curve(analog.deltas)
        return with_curve, without_curve

    with_curve, without_curve = benchmark(kernel)

    err_with = with_curve.mean_abs_difference(analog)
    err_without = without_curve.mean_abs_difference(analog)

    result = experiment_fig8(delta_fit.params,
                             characterization=characterization,
                             deltas=analog.deltas)
    text = (result.text
            + f"\n\nmean |HM with dmin  - analog| = "
              f"{to_ps(err_with):.3f} ps"
            + f"\nmean |HM w/o dmin  - analog| = "
              f"{to_ps(err_without):.3f} ps"
            + "\n(paper Fig. 8: the without-dmin curve visibly "
              "undershoots across the MIS window)")
    write_result("fig8", text)

    benchmark.extra_info.update({
        "mean_error_with_dmin_ps": round(to_ps(err_with), 3),
        "mean_error_without_dmin_ps": round(to_ps(err_without), 3),
    })

    assert err_with < 2.5 * PS
    assert err_without > 1.5 * err_with
