"""Legacy setup shim.

Allows ``pip install -e . --no-build-isolation`` in offline environments
whose setuptools predates bundled PEP 660 editable-wheel support (no
``wheel`` package available).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
