"""Glitch behaviour of delay models (short-pulse filtration).

The key structural advantage of the hybrid (and involution) channels
over inertial delay is *continuous* glitch handling: as the input pulse
shrinks, the output pulse shrinks continuously to zero instead of being
cut off at a hard threshold.  This example sweeps pulse widths through
a NOR gate under three delay models and prints the output pulse widths
(paper Section VII future-work probe; see also
``repro.analysis.faithfulness``).

Run:  python examples/glitch_explorer.py
"""

from repro import PAPER_TABLE_I
from repro.analysis.faithfulness import short_pulse_filtration
from repro.analysis.reporting import ascii_table
from repro.timing import (DigitalTrace, HybridNorChannel,
                          InertialDelayChannel, ExpChannel,
                          gate_function, zero_time_gate)
from repro.units import PS, to_ps


def single_channel_model(channel):
    """Wrap a single-input channel as a two-input NOR model."""
    nor = gate_function("nor")

    def run(trace_a: DigitalTrace, trace_b: DigitalTrace) -> DigitalTrace:
        return channel.apply(zero_time_gate(nor, [trace_a, trace_b]))

    return run


def main() -> None:
    params = PAPER_TABLE_I
    hybrid = HybridNorChannel(params)
    inertial = InertialDelayChannel(delay_up=54 * PS, delay_down=38 * PS)
    exp = ExpChannel(delay_up_inf=54 * PS, delay_down_inf=38 * PS,
                     pure_delay=18 * PS)

    widths = [w * PS for w in (120, 90, 70, 55, 45, 38, 32, 27, 23, 20,
                               17, 14, 11, 8, 5)]
    models = {
        "hybrid": hybrid.simulate,
        "inertial": single_channel_model(inertial),
        "exp": single_channel_model(exp),
    }
    responses = {name: short_pulse_filtration(model, widths)
                 for name, model in models.items()}

    rows = []
    for i, width in enumerate(widths):
        rows.append([f"{to_ps(width):6.1f}"]
                    + [f"{to_ps(responses[name][i].output_width):6.2f}"
                       for name in models])
    print(ascii_table(["input pulse [ps]"] + [f"{name} out [ps]"
                                              for name in models], rows,
                      title="Output pulse width vs input pulse width "
                            "(NOR gate)"))
    print()
    print("Note the inertial column: constant-width output until the "
          "hard cutoff, then nothing —")
    print("the discontinuity that makes inertial delays unfaithful for "
          "glitch propagation.")
    print("The hybrid channel's output width shrinks continuously to "
          "zero instead.")


if __name__ == "__main__":
    main()
