"""Feedback circuits with the event-driven engine (extension demo).

Builds an SR latch from two cross-coupled *hybrid* NOR channels — a
circuit the trace-transform engine cannot simulate (feedback!) — drives
it with set/reset pulses, and prints the latch behaviour plus a
switching-power report.  A glitchy set pulse demonstrates the hybrid
channel's intrinsic noise immunity: pulses too short to drive the
internal ODE across Vth simply do not flip the latch.

Run:  python examples/sr_latch.py
"""

from repro import PAPER_TABLE_I
from repro.analysis.reporting import ascii_table
from repro.timing import (DigitalTrace, HybridNorChannel, TimingCircuit,
                          power_report, simulate_events)
from repro.units import FF, PS, to_ps


def build_latch() -> TimingCircuit:
    circuit = TimingCircuit(["s", "r"])
    circuit.add_hybrid_nor("n1", "r", "qb", "q",
                           HybridNorChannel(PAPER_TABLE_I))
    circuit.add_hybrid_nor("n2", "s", "q", "qb",
                           HybridNorChannel(PAPER_TABLE_I))
    return circuit


def drive(set_width_ps: float) -> dict[str, DigitalTrace]:
    return {
        "s": DigitalTrace.from_edges(
            0, [500 * PS, (500 + set_width_ps) * PS]),
        "r": DigitalTrace.from_edges(0, [2000 * PS, 2300 * PS]),
    }


def main() -> None:
    circuit = build_latch()

    print("SR latch from two cross-coupled hybrid NOR channels")
    print("(event-driven simulation; set pulse at 500 ps, reset at "
          "2000 ps)\n")
    traces = simulate_events(circuit, drive(300.0), 3500 * PS,
                             initial_values={"q": 0, "qb": 1})
    rows = []
    for name in ("s", "r", "q", "qb"):
        rows.append([name, ", ".join(
            f"{to_ps(t):7.1f}->{v}" for t, v in
            traces[name].transitions) or "(quiet)"])
    print(ascii_table(["signal", "transitions [ps]"], rows))

    report = power_report(traces, {"q": 1.5 * FF, "qb": 1.5 * FF},
                          vdd=PAPER_TABLE_I.vdd, t_start=0.0,
                          t_end=3500 * PS, glitch_width=20 * PS)
    print(f"\nSwitching energy on q/qb: {report.total_energy:.3e} J "
          f"({report.total_transitions} transitions, "
          f"{sum(report.glitches.values())} glitches)")

    print("\nGlitch immunity: a 4 ps set pulse ...")
    glitchy = simulate_events(build_latch(), drive(4.0), 3500 * PS,
                              initial_values={"q": 0, "qb": 1})
    q_flips = len(glitchy["q"])
    print(f"  -> q transitions: {q_flips} (the short pulse never "
          "drives V_O across Vth; the latch holds)")


if __name__ == "__main__":
    main()
