"""Full characterization-and-fit loop on the analog reference.

Reproduces the paper's workflow end to end on this repository's
substrate:

1. sweep the analog NOR gate (15 nm card) over input separations Δ and
   extract the MIS delay curves — Fig. 2;
2. infer the pure delay δ_min from the falling values (ratio-2 rule) and
   least-squares fit the hybrid model — Section V / Table I;
3. compare the fitted model's curves against the analog golden curves —
   Figs. 5 and 8.

Run:  python examples/characterize_and_fit.py
(takes ~20 s: it runs a few dozen analog transient simulations)
"""

from repro.analysis import characterize_nor, fit_from_characterization
from repro.analysis.reporting import ascii_table, format_curves
from repro.core import HybridNorModel, infer_delta_min
from repro.spice import FINFET15
from repro.units import to_ps


def main() -> None:
    tech = FINFET15
    print(f"Characterizing the analog NOR gate ({tech.name}, "
          f"VDD = {tech.vdd} V) ...")
    ch = characterize_nor(tech)

    fall_m, fall_p = ch.falling_mis_percent
    print(f"  falling: {ch.sis_falling.describe('d_fall')}")
    print(f"           MIS speed-up {fall_m:+.1f} % / {fall_p:+.1f} % "
          "(paper: -28.01 % / -28.43 %)")
    print(f"  rising:  {ch.sis_rising.describe('d_rise')}")
    rise_m, rise_p = ch.rising_peak_percent
    print(f"           MIS slow-down peak {rise_m:+.1f} % / "
          f"{rise_p:+.1f} % (paper: +2.08 % / +7.26 %)")
    print()

    delta_min = infer_delta_min(ch.targets.falling)
    print(f"Inferred pure delay delta_min = {to_ps(delta_min):.2f} ps "
          "(2*d(0) - d(-inf); the paper gets 18 ps)")
    fit = fit_from_characterization(ch)
    print(f"Fit max target error: {to_ps(fit.max_error):.3f} ps")
    rows = [(name, f"{t:.2f}", f"{a:.2f}") for name, t, a in fit.table()]
    print(ascii_table(["characteristic", "analog [ps]", "model [ps]"],
                      rows))
    print()

    model = HybridNorModel(fit.params)
    model_curve = model.falling_curve(ch.falling.deltas)
    print(format_curves([model_curve, ch.falling],
                        title="Fig. 5: falling MIS delay — fitted model "
                              "vs analog"))
    print()
    no_dmin = HybridNorModel(
        fit_from_characterization(ch, delta_min=0.0).params)
    print(format_curves([model_curve,
                         no_dmin.falling_curve(ch.falling.deltas),
                         ch.falling],
                        title="Fig. 8: with vs without pure delay"))


if __name__ == "__main__":
    main()
