"""Direct use of the analog substrate: inverters, VTC, waveforms.

Demonstrates the MNA simulator underneath the characterization
pipeline: DC operating points, a DC-swept inverter transfer curve, and
a transient run of a four-stage inverter chain.

Run:  python examples/spice_playground.py
"""

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.spice import (FINFET15, Circuit, Dc, EdgeTrain, MnaSystem,
                         TransientOptions, build_inverter,
                         build_inverter_chain, dc_operating_point,
                         transient_analysis)
from repro.units import PS, to_ps


def voltage_divider() -> None:
    circuit = Circuit("divider")
    circuit.voltage_source("Vin", "in", "0", 1.0)
    circuit.resistor("R1", "in", "mid", 1e3)
    circuit.resistor("R2", "mid", "0", 3e3)
    system = MnaSystem(circuit)
    solution = dc_operating_point(system)
    voltages = system.voltages(solution)
    print(f"DC divider: V(mid) = {voltages['mid']:.3f} V "
          "(expected 0.750 V)\n")


def inverter_vtc() -> None:
    tech = FINFET15
    rows = []
    for vin in np.linspace(0.0, tech.vdd, 9):
        circuit = build_inverter(tech, Dc(float(vin)))
        system = MnaSystem(circuit)
        solution = dc_operating_point(system)
        vout = system.voltages(solution)["o"]
        rows.append([f"{vin:.2f}", f"{vout:.3f}"])
    print(ascii_table(["Vin [V]", "Vout [V]"], rows,
                      title="Inverter DC transfer curve (15 nm card)"))
    print()


def inverter_chain_transient() -> None:
    tech = FINFET15
    wave = EdgeTrain([(200 * PS, 1), (800 * PS, 0)], tech.vdd,
                     tech.input_edge_time)
    circuit = build_inverter_chain(tech, wave, stages=4)
    result = transient_analysis(circuit, 1200 * PS,
                                TransientOptions(v_scale=tech.vdd))
    print("Inverter chain: threshold crossings per stage")
    rows = []
    for stage in range(1, 5):
        node = f"s{stage}"
        crossings = result.crossings(node, tech.vth)
        rows.append([node, ", ".join(f"{to_ps(t):.1f}"
                                     for t in crossings)])
    print(ascii_table(["node", "Vth crossings [ps]"], rows))
    stats = result.statistics
    print(f"\n({stats['steps']:.0f} accepted steps, "
          f"{stats['rejected']:.0f} rejected)")


def main() -> None:
    voltage_divider()
    inverter_vtc()
    inverter_chain_transient()


if __name__ == "__main__":
    main()
