"""Quickstart: the hybrid NOR delay model in five minutes.

Builds the model with the paper's Table I parameters, prints the
characteristic Charlie delays and MIS curves (Figs. 5/6), and runs the
model as a timing channel on a small digital trace.

Run:  python examples/quickstart.py

The narrated version of this walk-through lives in the documentation
site (docs/tutorials/quickstart.md) and is executed by the test-suite
so it cannot rot.
"""

from repro import HybridNorModel, PAPER_TABLE_I
from repro.analysis.reporting import format_curves
from repro.timing import DigitalTrace, HybridNorChannel
from repro.units import PS, to_ps


def main() -> None:
    params = PAPER_TABLE_I
    model = HybridNorModel(params)

    print("Hybrid NOR model with the paper's Table I parameters")
    print(params.describe())
    print()

    falling = model.characteristic_falling()
    rising = model.characteristic_rising(vn_init=0.0)
    print("Characteristic Charlie delays (include delta_min = "
          f"{to_ps(params.delta_min):.0f} ps):")
    print(" ", falling.describe("delta_fall"))
    print(" ", rising.describe("delta_rise"))
    print(f"  falling MIS speed-up: "
          f"{falling.mis_effect_vs_minus_inf:+.1f} % (paper: ~ -28 %)")
    print()

    deltas = [d * PS for d in range(-60, 61, 10)]
    print(format_curves([model.falling_curve(deltas),
                         model.rising_curve(deltas, vn_init=0.0)],
                        title="MIS delay vs input separation"))
    print()

    # The same model as an event-driven timing channel.
    channel = HybridNorChannel(params)
    trace_a = DigitalTrace.from_edges(0, [100 * PS, 400 * PS])
    trace_b = DigitalTrace.from_edges(0, [130 * PS, 450 * PS])
    output = channel.simulate(trace_a, trace_b)
    print("Channel demo — NOR of two pulses:")
    print(f"  input A : {[(round(to_ps(t)), v) for t, v in trace_a.transitions]}")
    print(f"  input B : {[(round(to_ps(t)), v) for t, v in trace_b.transitions]}")
    print(f"  output  : {[(round(to_ps(t), 1), v) for t, v in output.transitions]}")


if __name__ == "__main__":
    main()
