"""Average modeling accuracy on random traces (paper Fig. 7, reduced).

Generates random input traces per the paper's waveform configurations,
simulates them analogically (golden reference) and under four digital
delay models, and prints the normalized deviation areas.

Run:  python examples/timing_accuracy.py
(takes ~1 min with the reduced defaults; raise TRANSITIONS/REPETITIONS
for sharper averages)

The narrated version of this walk-through lives in the documentation
site (docs/tutorials/timing-accuracy.md) and is executed by the
test-suite so it cannot rot.
"""

from repro.analysis.experiments import experiment_fig7
from repro.units import PS

#: Transitions per configuration (paper: 500/250).
TRANSITIONS = 60
#: Random-seed repetitions (paper: 20).
REPETITIONS = 3


def main() -> None:
    print("Running the Fig. 7 accuracy study "
          f"({TRANSITIONS} transitions x {REPETITIONS} repetitions "
          "per configuration) ...\n")
    result = experiment_fig7(transitions=TRANSITIONS,
                             repetitions=REPETITIONS)
    print(result.text)
    print()
    print("Paper's Fig. 7 for comparison (normalized deviation area):")
    print("  config             inertial  exp   HM w/o  HM w/")
    print("  100/50  - LOCAL    1.00      0.71  1.44    0.52")
    print("  200/100 - LOCAL    1.00      0.72  1.96    0.47")
    print("  2000/1000 - GLOBAL 1.00      1.60  1.15    0.97")
    print("  5000/5  - GLOBAL   1.00      1.65  1.01    1.01")


if __name__ == "__main__":
    main()
