#!/usr/bin/env python3
"""Self-contained documentation-site builder for the repro package.

Builds a static HTML site from the Markdown pages in ``docs/`` plus an
auto-generated API reference for every ``repro.*`` package, with **no
dependencies beyond the package's own** (numpy/scipy for importing the
modules).  The container/CI images pin their package set, so the usual
MkDocs/Sphinx toolchains are deliberately not required; the page
sources stay plain Markdown and would drop into either tool unchanged.

Usage::

    python docs/build.py [--output SITE_DIR] [--strict]

``--strict`` turns every warning into a build failure (CI runs this):

* internal links that do not resolve to a generated page,
* Markdown pages missing from the navigation (or vice versa),
* unclosed code fences,
* public API symbols (``__all__``) without a docstring, and
  undocumented public methods in the strict-scope modules
  (``repro``, ``repro.engine``, ``repro.library``).

The API reference is introspected from the installed package: module
docstring, then one section per ``__all__`` symbol with its signature
and docstring (NumPy-style text is rendered preformatted, faithfully).
"""

from __future__ import annotations

import argparse
import html
import inspect
import pathlib
import re
import shutil
import sys

DOCS_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent

sys.path.insert(0, str(REPO_ROOT / "src"))

#: Modules documented in the API reference, in navigation order.
API_MODULES = [
    "repro",
    "repro.api",
    "repro.server",
    "repro.obs",
    "repro.core",
    "repro.engine",
    "repro.library",
    "repro.cache",
    "repro.sta",
    "repro.wire",
    "repro.stats",
    "repro.spice",
    "repro.timing",
    "repro.models",
    "repro.analysis",
    "repro.units",
    "repro.errors",
    "repro.cli",
]

#: Modules whose public *methods* must also carry docstrings.
STRICT_DOCSTRING_MODULES = {"repro", "repro.api", "repro.engine",
                            "repro.library", "repro.obs",
                            "repro.sta", "repro.stats",
                            "repro.wire"}

#: Site navigation: (section, [(source page, title), ...]).
NAV: list[tuple[str, list[tuple[str, str]]]] = [
    ("Overview", [
        ("index.md", "Home"),
        ("architecture.md", "Architecture"),
    ]),
    ("Guides", [
        ("api.md", "Session API"),
        ("server.md", "HTTP service"),
        ("engines.md", "Engine backends"),
        ("observability.md", "Observability"),
        ("performance.md", "Performance"),
        ("library.md", "Library characterization"),
        ("sta.md", "Static timing analysis"),
        ("interconnect.md", "Interconnect"),
        ("statistics.md", "Statistical delay"),
        ("multi_input.md", "n-input gates"),
    ]),
    ("Tutorials", [
        ("tutorials/quickstart.md", "Quickstart"),
        ("tutorials/api.md", "Session API walkthrough"),
        ("tutorials/timing-accuracy.md", "Timing accuracy study"),
        ("tutorials/sta.md", "STA walkthrough"),
        ("tutorials/interconnect.md", "Interconnect walkthrough"),
        ("tutorials/statistics.md", "Statistical delay walkthrough"),
        ("tutorials/multi-input.md", "n-input NOR walkthrough"),
    ]),
    ("API reference", [
        (f"api/{name}.md", name) for name in API_MODULES
    ]),
]

_STYLE = """\
:root { --accent: #1a5fb4; --rule: #d0d7de; --code-bg: #f6f8fa; }
* { box-sizing: border-box; }
body { margin: 0; font: 16px/1.6 system-ui, sans-serif; color: #1f2328; }
a { color: var(--accent); text-decoration: none; }
a:hover { text-decoration: underline; }
.layout { display: flex; min-height: 100vh; }
nav { width: 260px; flex-shrink: 0; border-right: 1px solid var(--rule);
      padding: 1.5rem 1rem; background: #fafbfc; }
nav h1 { font-size: 1rem; margin: 0 0 1rem; }
nav h2 { font-size: .78rem; text-transform: uppercase; color: #57606a;
         margin: 1.2rem 0 .3rem; letter-spacing: .05em; }
nav ul { list-style: none; margin: 0; padding: 0; }
nav li a { display: block; padding: .15rem .4rem; border-radius: 4px;
           font-size: .92rem; }
nav li a.current { background: var(--accent); color: #fff; }
main { flex: 1; max-width: 56rem; padding: 2rem 3rem 4rem; }
main h1, main h2, main h3 { line-height: 1.25; }
main h2 { border-bottom: 1px solid var(--rule); padding-bottom: .25rem; }
pre { background: var(--code-bg); border: 1px solid var(--rule);
      border-radius: 6px; padding: .8rem 1rem; overflow-x: auto;
      font-size: .88rem; line-height: 1.45; }
code { background: var(--code-bg); border-radius: 4px;
       padding: .1rem .3rem; font-size: .9em; }
pre code { background: none; border: none; padding: 0; }
pre.docstring { background: #fffdf5; border-color: #e6dcb8; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid var(--rule); padding: .35rem .7rem;
         text-align: left; }
th { background: var(--code-bg); }
blockquote { border-left: 4px solid var(--rule); margin: 1rem 0;
             padding: .1rem 1rem; color: #57606a; }
.symbol-kind { color: #57606a; font-size: .8rem;
               text-transform: uppercase; letter-spacing: .04em; }
.api-symbol { border-top: 1px solid var(--rule); margin-top: 2rem;
              padding-top: 1rem; }
"""


class Builder:
    """Collects warnings while rendering the site."""

    def __init__(self) -> None:
        self.warnings: list[str] = []

    def warn(self, message: str) -> None:
        self.warnings.append(message)
        print(f"WARNING: {message}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Markdown -> HTML
    # ------------------------------------------------------------------

    _CODE_SPAN = re.compile(r"`([^`]+)`")
    _BOLD = re.compile(r"\*\*(.+?)\*\*")
    _ITALIC = re.compile(r"(?<!\*)\*([^*]+)\*(?!\*)")
    _LINK = re.compile(r"\[([^\]]+)\]\(([^)\s]+)\)")

    def _inline(self, text: str, page: str) -> str:
        """Inline markup: code spans, links, bold, italic."""
        tokens: list[str] = []

        def stash(match: re.Match) -> str:
            tokens.append(f"<code>{html.escape(match.group(1))}</code>")
            return f"\x00{len(tokens) - 1}\x00"

        text = self._CODE_SPAN.sub(stash, text)
        text = html.escape(text, quote=False)

        def link(match: re.Match) -> str:
            label, target = match.group(1), match.group(2)
            if not target.startswith(("http://", "https://", "#")):
                self._links.setdefault(page, []).append(target)
                target = re.sub(r"\.md(#|$)", r".html\1", target)
            return f'<a href="{target}">{label}</a>'

        text = self._LINK.sub(link, text)
        text = self._BOLD.sub(r"<strong>\1</strong>", text)
        text = self._ITALIC.sub(r"<em>\1</em>", text)
        for index, token in enumerate(tokens):
            text = text.replace(f"\x00{index}\x00", token)
        return text

    def markdown_to_html(self, source: str, page: str) -> str:
        """A deliberately small CommonMark subset, enough for these
        pages: headings, fenced code, tables, lists, quotes, rules,
        paragraphs with inline markup."""
        lines = source.split("\n")
        out: list[str] = []
        i = 0
        in_list: str | None = None

        def close_list() -> None:
            nonlocal in_list
            if in_list:
                out.append(f"</{in_list}>")
                in_list = None

        while i < len(lines):
            line = lines[i]
            stripped = line.strip()

            if stripped.startswith("```"):
                close_list()
                language = stripped[3:].strip()
                block: list[str] = []
                i += 1
                while i < len(lines) and not lines[i].strip() \
                        .startswith("```"):
                    block.append(lines[i])
                    i += 1
                if i >= len(lines):
                    self.warn(f"{page}: unclosed code fence")
                i += 1
                css = f' class="language-{language}"' if language else ""
                out.append(f"<pre><code{css}>"
                           f"{html.escape(chr(10).join(block))}"
                           "</code></pre>")
                continue

            heading = re.match(r"(#{1,6})\s+(.*)", stripped)
            if heading:
                close_list()
                level = len(heading.group(1))
                text = self._inline(heading.group(2), page)
                anchor = re.sub(r"[^a-z0-9]+", "-",
                                heading.group(2).lower()).strip("-")
                out.append(f'<h{level} id="{anchor}">{text}'
                           f"</h{level}>")
                i += 1
                continue

            if stripped in ("---", "***") and not in_list:
                out.append("<hr>")
                i += 1
                continue

            if stripped.startswith("|"):
                close_list()
                rows: list[str] = []
                while i < len(lines) and lines[i].strip() \
                        .startswith("|"):
                    rows.append(lines[i].strip())
                    i += 1
                out.append(self._table(rows, page))
                continue

            if stripped.startswith(">"):
                close_list()
                quote: list[str] = []
                while i < len(lines) and lines[i].strip() \
                        .startswith(">"):
                    quote.append(lines[i].strip().lstrip("> "))
                    i += 1
                inner = self._inline(" ".join(quote), page)
                out.append(f"<blockquote><p>{inner}</p></blockquote>")
                continue

            bullet = re.match(r"[-*]\s+(.*)", stripped)
            ordered = re.match(r"\d+\.\s+(.*)", stripped)
            if bullet or ordered:
                kind = "ul" if bullet else "ol"
                if in_list != kind:
                    close_list()
                    out.append(f"<{kind}>")
                    in_list = kind
                text = (bullet or ordered).group(1)
                # Hanging continuation lines belong to the same item.
                while (i + 1 < len(lines)
                       and lines[i + 1].startswith("  ")
                       and lines[i + 1].strip()
                       and not re.match(r"[-*\d]", lines[i + 1].strip())):
                    i += 1
                    text += " " + lines[i].strip()
                out.append(f"<li>{self._inline(text, page)}</li>")
                i += 1
                continue

            if not stripped:
                close_list()
                i += 1
                continue

            paragraph = [stripped]
            while (i + 1 < len(lines) and lines[i + 1].strip()
                   and not lines[i + 1].strip()
                   .startswith(("#", "```", "|", ">", "- ", "* "))
                   and not re.match(r"\d+\.\s", lines[i + 1].strip())):
                i += 1
                paragraph.append(lines[i].strip())
            close_list()
            out.append(f"<p>{self._inline(' '.join(paragraph), page)}"
                       "</p>")
            i += 1

        close_list()
        return "\n".join(out)

    def _table(self, rows: list[str], page: str) -> str:
        def cells(row: str) -> list[str]:
            return [cell.strip() for cell in row.strip("|").split("|")]

        body_rows = [row for row in rows
                     if not re.fullmatch(r"[|\s:-]+", row)]
        if not body_rows:
            return ""
        parts = ["<table>", "<thead><tr>"]
        parts += [f"<th>{self._inline(cell, page)}</th>"
                  for cell in cells(body_rows[0])]
        parts.append("</tr></thead><tbody>")
        for row in body_rows[1:]:
            parts.append("<tr>" + "".join(
                f"<td>{self._inline(cell, page)}</td>"
                for cell in cells(row)) + "</tr>")
        parts.append("</tbody></table>")
        return "".join(parts)

    # ------------------------------------------------------------------
    # API reference generation
    # ------------------------------------------------------------------

    def _docstring_block(self, obj, owner: str,
                         required: bool) -> str:
        doc = inspect.getdoc(obj)
        if not doc:
            if required:
                self.warn(f"missing docstring: {owner}")
            return "<p><em>No docstring.</em></p>"
        return (f'<pre class="docstring">{html.escape(doc)}</pre>')

    @staticmethod
    def _signature(obj) -> str:
        try:
            return str(inspect.signature(obj))
        except (TypeError, ValueError):
            return "(...)"

    def api_page(self, module_name: str) -> str:
        import importlib

        module = importlib.import_module(module_name)
        strict_scope = module_name in STRICT_DOCSTRING_MODULES
        parts = [f"<h1><code>{module_name}</code></h1>",
                 self._docstring_block(module, module_name, True)]
        exported = list(getattr(module, "__all__", []))
        if not exported:
            self.warn(f"{module_name}: no __all__; API page empty")
        for name in exported:
            if name.startswith("__"):
                continue
            try:
                obj = getattr(module, name)
            except AttributeError:
                self.warn(f"{module_name}.__all__ lists missing "
                          f"symbol {name!r}")
                continue
            qualified = f"{module_name}.{name}"
            if inspect.isclass(obj):
                kind = "class"
            elif inspect.isfunction(obj) or inspect.isbuiltin(obj):
                kind = "function"
            elif inspect.ismodule(obj):
                kind = "module"
            else:
                kind = "data"
            parts.append('<div class="api-symbol">')
            parts.append(f'<span class="symbol-kind">{kind}</span>')
            title = html.escape(name)
            if kind in ("class", "function"):
                title += html.escape(self._signature(obj))
            parts.append(f'<h2 id="{name}"><code>{title}</code></h2>')
            if kind == "data":
                parts.append(
                    f"<p>value: <code>"
                    f"{html.escape(repr(obj)[:120])}</code></p>")
            else:
                parts.append(self._docstring_block(obj, qualified,
                                                   True))
            if inspect.isclass(obj):
                parts.append(self._class_members(obj, qualified,
                                                 strict_scope))
            parts.append("</div>")
        return "\n".join(parts)

    def _class_members(self, cls, qualified: str,
                       strict_scope: bool) -> str:
        parts: list[str] = []
        for name, member in sorted(vars(cls).items()):
            if name.startswith("_"):
                continue
            if isinstance(member, property):
                member_kind, target = "property", member.fget
                signature = ""
            elif inspect.isfunction(member):
                member_kind, target = "method", member
                signature = html.escape(self._signature(member))
            elif isinstance(member, (classmethod, staticmethod)):
                member_kind = "classmethod"
                target = member.__func__
                signature = html.escape(self._signature(target))
            else:
                continue
            parts.append(
                f'<h3 id="{qualified.rsplit(".", 1)[-1]}.{name}">'
                f'<code>{name}{signature}</code> '
                f'<span class="symbol-kind">{member_kind}</span></h3>')
            parts.append(self._docstring_block(
                target, f"{qualified}.{name}", strict_scope))
        return "\n".join(parts)

    # ------------------------------------------------------------------
    # site assembly
    # ------------------------------------------------------------------

    def build(self, output: pathlib.Path) -> None:
        self._links: dict[str, list[str]] = {}
        output.mkdir(parents=True, exist_ok=True)
        (output / "style.css").write_text(_STYLE)

        pages = [(source, title)
                 for _section, entries in NAV
                 for source, title in entries]

        # Source pages present on disk but absent from NAV rot silently.
        on_disk = {str(p.relative_to(DOCS_DIR))
                   for p in DOCS_DIR.rglob("*.md")}
        in_nav = {source for source, _ in pages
                  if not source.startswith("api/")}
        for orphan in sorted(on_disk - in_nav):
            self.warn(f"{orphan}: Markdown page not referenced in the "
                      "navigation")
        for missing in sorted(in_nav - on_disk):
            self.warn(f"{missing}: page in navigation but missing "
                      "from docs/")

        for source, title in pages:
            if source.startswith("api/"):
                module_name = source[len("api/"):-len(".md")]
                content = self.api_page(module_name)
            else:
                path = DOCS_DIR / source
                if not path.exists():
                    continue  # already warned above
                content = self.markdown_to_html(path.read_text(),
                                                source)
            destination = output / source.replace(".md", ".html")
            destination.parent.mkdir(parents=True, exist_ok=True)
            destination.write_text(self._template(source, title,
                                                  content))

        self._check_links(output, pages)

    def _template(self, source: str, title: str, content: str) -> str:
        depth = source.count("/")
        prefix = "../" * depth
        sections = []
        for section, entries in NAV:
            items = []
            for page_source, page_title in entries:
                href = prefix + page_source.replace(".md", ".html")
                current = ' class="current"' if page_source == source \
                    else ""
                items.append(f'<li><a href="{href}"{current}>'
                             f"{html.escape(page_title)}</a></li>")
            sections.append(f"<h2>{html.escape(section)}</h2>"
                            f"<ul>{''.join(items)}</ul>")
        navigation = "\n".join(sections)
        return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)} — repro documentation</title>
<link rel="stylesheet" href="{prefix}style.css">
</head>
<body>
<div class="layout">
<nav>
<h1><a href="{prefix}index.html">repro</a></h1>
{navigation}
</nav>
<main>
{content}
</main>
</div>
</body>
</html>
"""

    def _check_links(self, output: pathlib.Path,
                     pages: list[tuple[str, str]]) -> None:
        """Every internal Markdown link must land on a built page."""
        for page, targets in self._links.items():
            base = pathlib.Path(page).parent
            for target in targets:
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue
                resolved = (output / base / file_part.replace(
                    ".md", ".html")).resolve()
                if not resolved.exists():
                    self.warn(f"{page}: broken internal link "
                              f"-> {target}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--output", default=str(REPO_ROOT / "site"),
                        help="output directory (default: ./site)")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as errors (CI mode)")
    parser.add_argument("--clean", action="store_true",
                        help="delete the output directory first")
    args = parser.parse_args(argv)

    output = pathlib.Path(args.output)
    if args.clean and output.exists():
        shutil.rmtree(output)

    builder = Builder()
    builder.build(output)

    generated = len(list(output.rglob("*.html")))
    print(f"built {generated} pages into {output}")
    if builder.warnings:
        print(f"{len(builder.warnings)} warning(s)", file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
